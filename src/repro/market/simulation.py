"""The market simulation: one run = one infrastructure mode.

Modes (§3.3's comparison, plus the paper's proposed integration):

* ``"trading"`` — ODP-trader-only.  A family's first provider must drive
  service type standardisation; offers become importable only after the
  type exists; client applications must be developed per type before any
  request can be served; the trader then selects best-fit (cheapest).
* ``"mediation"`` — browser-only.  Providers author a SID and register at
  a browser; generic clients need no development and can use a service
  immediately; the human user picks from the browse list (first
  registered), so selection quality is weaker.
* ``"integrated"`` — the COSM proposal: services are browsable
  immediately *and* become tradable once their type standardises, at
  which point selection switches to the trader's best-fit.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.market.agents import ClientDemand, ProviderSpec, demand_requests
from repro.market.costs import CostModel
from repro.market.metrics import MarketOutcome, ProviderOutcome

MODES = ("trading", "mediation", "integrated")


class MarketSimulation:
    """Deterministic discrete-event run of one open service market."""

    def __init__(
        self,
        mode: str,
        providers: Iterable[ProviderSpec],
        demands: Iterable[ClientDemand],
        costs: Optional[CostModel] = None,
        horizon: float = 365.0,
        seed: int = 1994,
    ) -> None:
        if mode not in MODES:
            raise ConfigurationError(f"unknown market mode {mode!r}; pick from {MODES}")
        self.mode = mode
        self.providers = sorted(providers, key=lambda p: (p.enter_time, p.name))
        self.demands = list(demands)
        self.costs = costs or CostModel()
        self.horizon = horizon
        self.seed = seed

    # -- derived schedule ---------------------------------------------------------

    def type_ready_times(self) -> Dict[str, float]:
        """When each family's service type exists (trading/integrated)."""
        ready: Dict[str, float] = {}
        for provider in self.providers:
            if provider.family not in ready:
                ready[provider.family] = (
                    provider.enter_time
                    + self.costs.type_standardisation_delay
                    + self.costs.type_registration_delay
                )
        return ready

    def _provider_plan(self) -> List[ProviderOutcome]:
        """Availability time and transition effort per provider."""
        costs = self.costs
        type_ready = self.type_ready_times()
        seen_families: set = set()
        outcomes: List[ProviderOutcome] = []
        for provider in self.providers:
            first_in_family = provider.family not in seen_families
            seen_families.add(provider.family)
            if self.mode == "trading":
                available = max(
                    provider.enter_time + costs.offer_registration_delay,
                    type_ready[provider.family] + costs.offer_registration_delay,
                )
                effort = costs.trading_provider_effort(type_exists=not first_in_family)
            elif self.mode == "mediation":
                available = provider.enter_time + costs.mediation_provider_delay()
                effort = costs.mediation_provider_effort()
            else:  # integrated: browsable early, tradable later
                available = provider.enter_time + costs.mediation_provider_delay()
                effort = costs.mediation_provider_effort()
                if type_ready[provider.family] <= self.horizon:
                    # the maturation step still happens, once, within the run
                    if first_in_family:
                        effort += (
                            costs.type_standardisation_effort
                            + costs.type_registration_effort
                        )
                    effort += costs.offer_registration_effort
            outcomes.append(
                ProviderOutcome(
                    name=provider.name,
                    family=provider.family,
                    enter_time=provider.enter_time,
                    available_time=available,
                    transition_effort=effort,
                )
            )
        return outcomes

    # -- the run ----------------------------------------------------------------------

    def run(self) -> MarketOutcome:
        rng = random.Random(self.seed)
        outcome = MarketOutcome(mode=self.mode, horizon=self.horizon)
        outcome.providers = self._provider_plan()
        outcome.provider_effort = sum(p.transition_effort for p in outcome.providers)
        by_family: Dict[str, List[Tuple[ProviderSpec, ProviderOutcome]]] = {}
        for spec, planned in zip(self.providers, outcome.providers):
            by_family.setdefault(spec.family, []).append((spec, planned))
        type_ready = self.type_ready_times()
        client_ready: Dict[str, float] = {}
        developed: set = set()
        if self.mode == "trading":
            for family, ready in type_ready.items():
                client_ready[family] = ready + self.costs.client_development_delay

        last_choice: Dict[str, str] = {}
        for demand in self.demands:
            requests = demand_requests(demand, self.horizon, rng)
            outcome.requests_total += len(requests)
            candidates = by_family.get(demand.family, [])
            for t in requests:
                served = self._serve_request(
                    outcome, demand.family, t, candidates, type_ready,
                    client_ready, developed, last_choice, rng,
                )
                if served:
                    outcome.requests_served += 1
                else:
                    outcome.requests_unserved += 1
        return outcome

    def _serve_request(
        self,
        outcome: MarketOutcome,
        family: str,
        t: float,
        candidates: List[Tuple[ProviderSpec, ProviderOutcome]],
        type_ready: Dict[str, float],
        client_ready: Dict[str, float],
        developed: set,
        last_choice: Dict[str, str],
        rng: random.Random,
    ) -> bool:
        costs = self.costs
        available = [
            (spec, planned) for spec, planned in candidates
            if planned.available_time <= t
        ]
        if self.mode == "trading":
            # the client application must exist first
            if t < client_ready.get(family, float("inf")):
                return False
            if family not in developed:
                developed.add(family)
                outcome.client_effort += costs.client_development_effort
        if not available:
            return False

        traded = self.mode == "trading" or (
            self.mode == "integrated" and t >= type_ready.get(family, float("inf"))
        )
        if traded:
            # the trader's best-fit: cheapest offer (min ChargePerDay style)
            spec, planned = min(available, key=lambda item: (item[0].charge, item[0].name))
        else:
            # Browsing: the human picks from the browse list.  Entries are
            # ordered by registration time and earlier positions attract
            # more attention (weight 1/(position+1)) — the first mover
            # keeps most, not all, of the demand ("being the first pays
            # most", §2.2).
            listed = sorted(
                available, key=lambda item: (item[1].available_time, item[0].name)
            )
            weights = [1.0 / (position + 1) for position in range(len(listed))]
            spec, planned = rng.choices(listed, weights=weights, k=1)[0]
            outcome.client_effort += costs.browsing_effort

        if last_choice.get(family) not in (None, spec.name):
            outcome.client_effort += (
                costs.client_switch_effort
                if traded
                else costs.generic_client_adaptation_effort
            )
        last_choice[family] = spec.name
        planned.revenue += spec.charge
        planned.requests_served += 1
        outcome.client_spend += spec.charge
        return True


def run_all_modes(
    providers: Iterable[ProviderSpec],
    demands: Iterable[ClientDemand],
    costs: Optional[CostModel] = None,
    horizon: float = 365.0,
    seed: int = 1994,
) -> Dict[str, MarketOutcome]:
    """Run the same market under every infrastructure mode."""
    providers = list(providers)
    demands = list(demands)
    return {
        mode: MarketSimulation(mode, providers, demands, costs, horizon, seed).run()
        for mode in MODES
    }
