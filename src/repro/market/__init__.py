"""COSM market model: quantifying the paper's transition-cost argument.

The paper argues (§2.2, §2.3, §3.3) — without numbers — that

1. trading-only infrastructure delays innovative services by the full
   standardisation → type-registration → client-development pipeline,
2. mediation makes them available at SID-authoring + browser-registration
   cost, so "being the first pays most" actually pays,
3. once types standardise, the trader's attribute-based best-fit
   selection serves clients better than browsing.

This package turns those arguments into a deterministic discrete-event
market simulation: providers enter with services over time, clients issue
requests, and the infrastructure mode decides when services become
reachable and how one is selected.  The benchmarks sweep the knobs the
paper's prose varies (standardisation delay, provider count, maturation
stage) and report the orderings.
"""

from repro.market.agents import ClientDemand, ProviderSpec
from repro.market.costs import CostModel
from repro.market.metrics import MarketOutcome, ProviderOutcome, compare_modes
from repro.market.simulation import MODES, MarketSimulation, run_all_modes

__all__ = [
    "ClientDemand",
    "CostModel",
    "MODES",
    "MarketOutcome",
    "MarketSimulation",
    "ProviderOutcome",
    "ProviderSpec",
    "compare_modes",
    "run_all_modes",
]
