"""Outcome records and mode-comparison helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ProviderOutcome:
    """What one provider experienced under one infrastructure mode."""

    name: str
    family: str
    enter_time: float
    available_time: float  # when clients could first reach it
    transition_effort: float  # money-ish cost to become available
    revenue: float = 0.0
    requests_served: int = 0

    @property
    def time_to_market(self) -> float:
        return self.available_time - self.enter_time


@dataclass
class MarketOutcome:
    """Aggregate result of one simulation run."""

    mode: str
    horizon: float
    providers: List[ProviderOutcome] = field(default_factory=list)
    requests_total: int = 0
    requests_served: int = 0
    requests_unserved: int = 0
    client_effort: float = 0.0  # client-side adaptation + browsing cost
    client_spend: float = 0.0  # charges paid to providers
    provider_effort: float = 0.0

    @property
    def total_transition_effort(self) -> float:
        return self.client_effort + self.provider_effort

    @property
    def service_level(self) -> float:
        if self.requests_total == 0:
            return 1.0
        return self.requests_served / self.requests_total

    def provider(self, name: str) -> ProviderOutcome:
        for outcome in self.providers:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def mean_time_to_market(self) -> float:
        if not self.providers:
            return 0.0
        return sum(p.time_to_market for p in self.providers) / len(self.providers)

    def first_mover_revenue_share(self, family: str) -> float:
        """Revenue share of the family's earliest entrant ("being the
        first pays most" — §2.2)."""
        family_providers = [p for p in self.providers if p.family == family]
        if not family_providers:
            return 0.0
        total = sum(p.revenue for p in family_providers)
        if total == 0:
            return 0.0
        first = min(family_providers, key=lambda p: p.enter_time)
        return first.revenue / total

    def mean_price_paid(self) -> float:
        if self.requests_served == 0:
            return 0.0
        return self.client_spend / self.requests_served


def compare_modes(outcomes: Dict[str, MarketOutcome]) -> List[str]:
    """Human-readable comparison rows across infrastructure modes."""
    rows = []
    header = (
        f"{'mode':<14} {'mean TTM':>9} {'served':>7} {'level':>6} "
        f"{'prov effort':>11} {'client effort':>13} {'mean price':>10}"
    )
    rows.append(header)
    for mode, outcome in outcomes.items():
        rows.append(
            f"{mode:<14} {outcome.mean_time_to_market():>9.1f} "
            f"{outcome.requests_served:>7} {outcome.service_level:>6.2f} "
            f"{outcome.provider_effort:>11.1f} {outcome.client_effort:>13.1f} "
            f"{outcome.mean_price_paid():>10.3f}"
        )
    return rows
