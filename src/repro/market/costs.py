"""Transition cost model (§2.3).

Two kinds of cost, per §2.2's registration/establishment phases:

* **delays** (virtual days) — how long until the corresponding phase
  completes and the service moves closer to de-facto availability,
* **efforts** (money-ish units) — what the phase costs whoever performs
  it (provider, standardisation body, or client developer).

Defaults encode the orderings the paper asserts: global service type
standardisation dominates everything else by orders of magnitude, while
SID authoring + browser registration are days, not months.  Benchmarks
sweep these, so nothing depends on the absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Knobs of the §2.2/§2.3 cost phases."""

    # -- trading path ---------------------------------------------------------
    # "service type standardisation (by global agreement)"
    type_standardisation_delay: float = 180.0
    type_standardisation_effort: float = 100.0
    # "service type registration at a trader's type manager"
    type_registration_delay: float = 5.0
    type_registration_effort: float = 5.0
    # "availability of registered services to potential importers"
    offer_registration_delay: float = 1.0
    offer_registration_effort: float = 1.0
    # "development of client applications to achieve the ability to
    # cooperate with remote servers" — once per service type
    client_development_delay: float = 30.0
    client_development_effort: float = 50.0
    # switching to another provider of the *same* type: cheap but nonzero
    client_switch_effort: float = 1.0

    # -- mediation path ---------------------------------------------------------
    # writing the SID (the only provider-side programming effort, §3.3)
    sid_authoring_delay: float = 2.0
    sid_authoring_effort: float = 3.0
    # registering the SID at a well-known browser
    browser_registration_delay: float = 0.1
    browser_registration_effort: float = 0.5
    # generic clients need no adaptation (§3.3: "no adaptation effort
    # required for generic clients")
    generic_client_adaptation_effort: float = 0.0
    # a human browsing and selecting costs a little time per request
    browsing_effort: float = 0.05

    def scaled(self, **overrides: float) -> "CostModel":
        """A copy with some knobs replaced (for sweeps)."""
        return replace(self, **overrides)

    # -- derived aggregates ------------------------------------------------------

    def trading_provider_delay(self, type_exists: bool) -> float:
        """Days from entry until a trading-only offer is importable."""
        if type_exists:
            return self.offer_registration_delay
        return (
            self.type_standardisation_delay
            + self.type_registration_delay
            + self.offer_registration_delay
        )

    def trading_provider_effort(self, type_exists: bool) -> float:
        if type_exists:
            return self.offer_registration_effort
        return (
            self.type_standardisation_effort
            + self.type_registration_effort
            + self.offer_registration_effort
        )

    def mediation_provider_delay(self) -> float:
        """Days from entry until a SID is browsable."""
        return self.sid_authoring_delay + self.browser_registration_delay

    def mediation_provider_effort(self) -> float:
        return self.sid_authoring_effort + self.browser_registration_effort
