"""Market actors: providers entering with services, clients with demand."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ProviderSpec:
    """A provider entering the market.

    ``family`` identifies the *functionality* (e.g. "car-rental"): the
    first provider of a family under trading-only rules must standardise
    the service type; followers reuse it.  ``quality`` orders offers when
    the trader's best-fit selection applies; ``charge`` is the price per
    served request (revenue to the provider).
    """

    name: str
    family: str
    enter_time: float
    charge: float = 1.0
    quality: float = 1.0


@dataclass(frozen=True)
class ClientDemand:
    """Aggregate client demand for one family."""

    family: str
    rate_per_day: float = 1.0
    start_time: float = 0.0


def demand_requests(
    demand: ClientDemand,
    horizon: float,
    rng: random.Random,
) -> List[float]:
    """Poisson request arrival times in ``[start_time, horizon)``."""
    times: List[float] = []
    if demand.rate_per_day <= 0:
        return times
    t = demand.start_time
    while True:
        t += rng.expovariate(demand.rate_per_day)
        if t >= horizon:
            return times
        times.append(t)


def staggered_providers(
    family: str,
    count: int,
    first_entry: float = 0.0,
    spacing: float = 30.0,
    base_charge: float = 1.0,
    rng: Optional[random.Random] = None,
) -> List[ProviderSpec]:
    """A family of competing providers entering one after another.

    Later entrants imitate with slightly lower prices/higher quality —
    the §2.2 "follow-up competitors imitate the innovator" dynamic.
    """
    rng = rng or random.Random(42)
    providers = []
    for index in range(count):
        providers.append(
            ProviderSpec(
                name=f"{family}-{index + 1}",
                family=family,
                enter_time=first_entry + index * spacing,
                charge=round(base_charge * (1.0 - 0.05 * index), 4),
                quality=round(1.0 + 0.1 * index + rng.random() * 0.01, 4),
            )
        )
    return providers
