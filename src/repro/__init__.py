"""COSM — Common Open Service Market support infrastructure.

A full reproduction of *"Service Trading and Mediation in Distributed
Computing Systems"* (M. Merz, K. Müller, W. Lamersdorf; ICDCS 1994):

* :mod:`repro.net` — deterministic simulated network (the workstation
  cluster substitute),
* :mod:`repro.rpc` — from-scratch RPC stack: XDR-style marshalling,
  portmapper, at-most-once semantics, multicast, transactional RPC,
* :mod:`repro.sidl` — the Service Interface Description Language:
  parser, structural type system with record subtyping, FSM protocol
  specs, communicable first-class SIDs,
* :mod:`repro.naming` — name server, group manager, service references,
  binder,
* :mod:`repro.trader` — the ODP trader: service types, offers,
  constraints, preferences, federation,
* :mod:`repro.core` — the paper's contribution: service runtime, browser,
  generic client, mediator, trading/mediation integration,
* :mod:`repro.uims` — generated user interfaces (Fig. 7),
* :mod:`repro.market` — the transition-cost market model (§2.2/2.3/3.3),
* :mod:`repro.services` — example application services (car rental,
  image conversion, stock quotes, directory).

Quickstart::

    from repro.net import SimNetwork
    from repro.rpc import RpcClient, RpcServer
    from repro.rpc.transport import SimTransport
    from repro.core import BrowserService, GenericClient
    from repro.services import start_car_rental

    net = SimNetwork()
    rental = start_car_rental(RpcServer(SimTransport(net, "host-a")))
    browser = BrowserService(RpcServer(SimTransport(net, "host-b")))
    browser.register_local(rental)

    client = GenericClient(RpcClient(SimTransport(net, "host-c")))
    binding = client.bind(rental.ref)          # SID transfer happens here
    binding.invoke("SelectCar", {"selection": {
        "CarModel": "AUDI", "BookingDate": "1994-06-21", "Days": 3}})
"""

from repro.context import (
    CallContext,
    DeadlineLedger,
    RetryPolicy,
    SpanRecord,
    current_context,
    use_context,
)
from repro.errors import (
    BindingError,
    CallTimeout,
    CommunicationError,
    ConfigurationError,
    CosmError,
    LookupFailure,
    ProtocolError,
)

__version__ = "1.0.0"

__all__ = [
    "BindingError",
    "CallContext",
    "DeadlineLedger",
    "CallTimeout",
    "CommunicationError",
    "ConfigurationError",
    "CosmError",
    "LookupFailure",
    "ProtocolError",
    "RetryPolicy",
    "SpanRecord",
    "current_context",
    "use_context",
    "__version__",
]
