"""The §2.3 value-adding scenario: image archive + format converter.

"If there is a demand for a graphics image server in format X, but a
suitable image server only supplies format Y, it may be profitable to
provide a value-adding service by converting Y to X."  The archive serves
images in format Y; the converter *binds to the archive like any client*
(via a service reference it is configured with) and re-exports the images
in format X — a service composed out of another service.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.service_runtime import ServiceRuntime
from repro.naming.binder import Binder
from repro.naming.refs import ServiceRef
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description

IMAGE_ARCHIVE_SIDL = """
module ImageArchive {
  typedef Format_t enum { XBM, GIF, PPM };
  typedef Image_t struct {
    string name;
    Format_t format;
    octets data;
  };
  typedef NameList_t sequence<string>;
  interface COSM_Operations {
    NameList_t ListImages();
    Image_t Fetch(in string name);
  };
  module COSM_TraderExport {
    const string TOD = "ImageArchive";
    const string Format = "PPM";
    const long ImageCount = 3;
  };
  module COSM_Annotations {
    annotation Fetch "Fetch one image by name (format PPM).";
  };
};
"""

IMAGE_CONVERTER_SIDL = """
module ImageConversion {
  typedef Format_t enum { XBM, GIF, PPM };
  typedef Image_t struct {
    string name;
    Format_t format;
    octets data;
  };
  typedef NameList_t sequence<string>;
  interface COSM_Operations {
    NameList_t ListImages();
    Image_t FetchConverted(in string name, in Format_t target);
    service_reference Upstream();
  };
  module COSM_TraderExport {
    const string TOD = "ImageConversion";
    const string Format = "GIF";
    const float ChargePerImage = 0.5;
  };
  module COSM_Annotations {
    annotation FetchConverted "Fetch an image converted to the target format.";
    annotation Upstream "The archive this converter adds value to.";
  };
};
"""


class ImageArchiveImpl:
    """Serves a small synthetic image collection, all in one format."""

    def __init__(self, fmt: str = "PPM", images: Optional[Dict[str, bytes]] = None) -> None:
        self.format = fmt
        self.images = dict(
            images
            if images is not None
            else {
                "alster": b"P3 2 2 255 0 0 0 255 255 255 0 0 0 255 255 255",
                "hafen": b"P3 1 1 255 10 20 30",
                "michel": b"P3 1 2 255 1 2 3 4 5 6",
            }
        )
        self.fetches = 0

    def ListImages(self) -> List[str]:
        return sorted(self.images)

    def Fetch(self, name: str) -> Dict[str, Any]:
        if name not in self.images:
            raise KeyError(f"no image named {name!r}")
        self.fetches += 1
        return {"name": name, "format": self.format, "data": self.images[name]}


def convert_image(data: bytes, source: str, target: str) -> bytes:
    """A stand-in conversion that is observable and reversible enough to
    test: the payload is tagged with the conversion applied."""
    if source == target:
        return data
    return b"[" + source.encode() + b"->" + target.encode() + b"]" + data


class ImageConverterImpl:
    """The value-adding service: a client of the archive, a server to us."""

    def __init__(self, client: RpcClient, upstream: ServiceRef) -> None:
        self._upstream_ref = upstream
        self._binder = Binder(client)
        self._binding = None
        self.conversions = 0

    def _archive(self):
        if self._binding is None:
            self._binding = self._binder.bind(self._upstream_ref)
        return self._binding

    def ListImages(self) -> List[str]:
        return self._archive().invoke("ListImages")

    def FetchConverted(self, name: str, target: str) -> Dict[str, Any]:
        image = self._archive().invoke("Fetch", {"name": name})
        converted = convert_image(image["data"], image["format"], target)
        self.conversions += 1
        return {"name": name, "format": target, "data": converted}

    def Upstream(self) -> Dict[str, Any]:
        """Expose the upstream reference — a Fig. 4 cascade hop."""
        return self._upstream_ref.to_wire()


def start_image_archive(server: RpcServer, **runtime_options: Any) -> ServiceRuntime:
    sid = load_service_description(IMAGE_ARCHIVE_SIDL)
    return ServiceRuntime(server, sid, ImageArchiveImpl(), **runtime_options)


def start_image_converter(
    server: RpcServer,
    client: RpcClient,
    upstream: ServiceRef,
    **runtime_options: Any,
) -> ServiceRuntime:
    sid = load_service_description(IMAGE_CONVERTER_SIDL)
    implementation = ImageConverterImpl(client, upstream)
    return ServiceRuntime(server, sid, implementation, **runtime_options)
