"""A hotel booking service with reservation semantics.

Built for the activity-management extension: hosted on a
:class:`~repro.activity.participant.TransactionalServiceRuntime`, its
rooms are *reserved* at prepare time and only consumed at commit, so a
trip activity can book a hotel and a flight atomically.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.activity.participant import TransactionalServiceRuntime
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description

HOTEL_SIDL = """
module HotelBooking {
  typedef RoomClass_t enum { SINGLE, DOUBLE, SUITE };
  typedef Stay_t struct {
    RoomClass_t room;
    string arrival;
    long nights;
  };
  typedef Booking_t struct {
    long confirmation;
    float total;
  };
  interface COSM_Operations {
    float Quote(in Stay_t stay);
    Booking_t BookRoom(in Stay_t stay);
    boolean CancelRoom(in long confirmation);
  };
  module COSM_TraderExport {
    const long ServiceID = 4720;
    const string TOD = "HotelBooking";
    const float RatePerNight = 120.0;
    const string City = "Hamburg";
  };
  module COSM_Annotations {
    annotation BookRoom "Book a room; participates in activities.";
  };
};
"""


class HotelImpl:
    """Room inventory with two-phase reservations."""

    _confirmations = itertools.count(5000)

    def __init__(
        self,
        rate_per_night: float = 120.0,
        rooms: Optional[Dict[str, int]] = None,
    ) -> None:
        self.rate_per_night = rate_per_night
        self.rooms = dict(rooms if rooms is not None else {"SINGLE": 5, "DOUBLE": 3, "SUITE": 1})
        self._held: Dict[str, int] = {}
        self.bookings: Dict[int, Dict[str, Any]] = {}

    # -- ordinary operations -------------------------------------------------

    def Quote(self, stay: Dict[str, Any]) -> float:
        return self.rate_per_night * max(1, stay["nights"])

    def BookRoom(self, stay: Dict[str, Any]) -> Dict[str, Any]:
        room = stay["room"]
        held = self._held.get(room, 0)
        if held > 0:
            # consuming a reservation made at prepare time
            self._held[room] = held - 1
        elif self.rooms.get(room, 0) > 0:
            self.rooms[room] -= 1
        else:
            raise ValueError(f"no {room} room left")
        confirmation = next(self._confirmations)
        self.bookings[confirmation] = dict(stay)
        return {"confirmation": confirmation, "total": self.Quote(stay)}

    def CancelRoom(self, confirmation: int) -> bool:
        stay = self.bookings.pop(confirmation, None)
        if stay is None:
            return False
        self.rooms[stay["room"]] = self.rooms.get(stay["room"], 0) + 1
        return True

    # -- reservation protocol (activity participation) --------------------------

    def reserve(self, operation: str, arguments: Dict[str, Any]) -> bool:
        """Hold a room for a staged BookRoom; other operations need none."""
        if operation != "BookRoom":
            return True
        room = arguments["stay"]["room"]
        if self.rooms.get(room, 0) <= 0:
            return False
        self.rooms[room] -= 1
        self._held[room] = self._held.get(room, 0) + 1
        return True

    def release(self, operation: str, arguments: Dict[str, Any]) -> None:
        if operation != "BookRoom":
            return
        room = arguments["stay"]["room"]
        if self._held.get(room, 0) > 0:
            self._held[room] -= 1
            self.rooms[room] = self.rooms.get(room, 0) + 1


def start_hotel(
    server: RpcServer,
    implementation: Optional[HotelImpl] = None,
    **runtime_options: Any,
) -> TransactionalServiceRuntime:
    sid = load_service_description(HOTEL_SIDL)
    return TransactionalServiceRuntime(
        server, sid, implementation or HotelImpl(), **runtime_options
    )
