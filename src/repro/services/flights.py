"""A flight booking service with seat reservations.

The second leg of the transactional trip example: seats are held at
prepare time and consumed at commit, so an activity can pair a flight
with a hotel room atomically.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.activity.participant import TransactionalServiceRuntime
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description

FLIGHTS_SIDL = """
module FlightBooking {
  typedef Leg_t struct {
    string origin;
    string destination;
    string date;
  };
  typedef Ticket_t struct {
    long confirmation;
    string flight_no;
    float fare;
  };
  interface COSM_Operations {
    long SeatsLeft(in Leg_t leg);
    Ticket_t BookSeat(in Leg_t leg);
  };
  module COSM_TraderExport {
    const long ServiceID = 4730;
    const string TOD = "FlightBooking";
    const float BaseFare = 199.0;
  };
  module COSM_Annotations {
    annotation BookSeat "Book one seat; participates in activities.";
  };
};
"""


class FlightsImpl:
    """Per-route seat inventory with two-phase reservations."""

    _confirmations = itertools.count(9000)

    def __init__(self, base_fare: float = 199.0, seats_per_route: int = 4) -> None:
        self.base_fare = base_fare
        self.seats_per_route = seats_per_route
        self.seats: Dict[str, int] = {}
        self._held: Dict[str, int] = {}
        self.tickets: Dict[int, Dict[str, Any]] = {}

    @staticmethod
    def _route(leg: Dict[str, Any]) -> str:
        return f"{leg['origin']}->{leg['destination']}@{leg['date']}"

    def _available(self, route: str) -> int:
        return self.seats.setdefault(route, self.seats_per_route)

    def SeatsLeft(self, leg: Dict[str, Any]) -> int:
        return self._available(self._route(leg))

    def BookSeat(self, leg: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(leg)
        if self._held.get(route, 0) > 0:
            self._held[route] -= 1
        elif self._available(route) > 0:
            self.seats[route] -= 1
        else:
            raise ValueError(f"flight {route} is full")
        confirmation = next(self._confirmations)
        self.tickets[confirmation] = dict(leg)
        return {
            "confirmation": confirmation,
            "flight_no": f"CM{confirmation % 1000:03d}",
            "fare": self.base_fare,
        }

    def reserve(self, operation: str, arguments: Dict[str, Any]) -> bool:
        if operation != "BookSeat":
            return True
        route = self._route(arguments["leg"])
        if self._available(route) <= 0:
            return False
        self.seats[route] -= 1
        self._held[route] = self._held.get(route, 0) + 1
        return True

    def release(self, operation: str, arguments: Dict[str, Any]) -> None:
        if operation != "BookSeat":
            return
        route = self._route(arguments["leg"])
        if self._held.get(route, 0) > 0:
            self._held[route] -= 1
            self.seats[route] = self.seats.get(route, 0) + 1


def start_flights(
    server: RpcServer,
    implementation: Optional[FlightsImpl] = None,
    **runtime_options: Any,
) -> TransactionalServiceRuntime:
    sid = load_service_description(FLIGHTS_SIDL)
    return TransactionalServiceRuntime(
        server, sid, implementation or FlightsImpl(), **runtime_options
    )
