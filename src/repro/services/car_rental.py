"""The car rental service — the paper's running example.

Two SIDL sources are provided:

* :data:`PAPER_LISTING_SIDL` — the §4.1 listing as printed, completed
  only where the paper itself elides ("...") or references types it never
  declares (``SelectCarReturn_t`` etc.); used by the listing benchmarks,
* :data:`CAR_RENTAL_SIDL` — the canonical full description used by the
  examples and tests, with the §3.1 FSM (INIT/SELECTED) and §2.1
  attributes (CarModel, AverageMilage, ChargePerDay, ChargeCurrency).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.core.service_runtime import ServiceRuntime
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description
from repro.sidl.sid import ServiceDescription

PAPER_LISTING_SIDL = """
module CarRentalService {
  // the base part:
  typedef CarModel_t enum { AUDI, FIAT-Uno, VW-Golf };
  typedef SelectCar_t struct {
    enum CarModel;
    string BookingDate;
  };
  // Completions for types the paper's listing leaves undeclared:
  typedef SelectCarReturn_t struct { boolean available; float charge; };
  typedef BookCarReturn_t struct { long confirmation; };
  interface COSM_Operations {
    SelectCarReturn_t SelectCar ( [in] SelectCar_t selection );
    BookCarReturn_t BookCar ( );
  };
  // the extension:
  module COSM_TraderExport {
    const long ServiceID = 4711;
    const string TOD = "CarRentalService";
    const CarModel_t Model = FIAT-Uno;
    const float ChargePerDay = 80;
    const ChargeCurrency_t ChargeCurrency = USD;
  };
};
"""

CAR_RENTAL_SIDL = """
module CarRentalService {
  typedef CarModel_t enum { AUDI, FIAT-Uno, VW-Golf };
  typedef ChargeCurrency_t enum { USD, DEM, FF, SFR, GBP };
  typedef SelectCar_t struct {
    CarModel_t CarModel;
    string BookingDate;
    long Days;
  };
  typedef SelectCarReturn_t struct {
    boolean available;
    float charge;
    ChargeCurrency_t currency;
  };
  typedef BookCarReturn_t struct {
    long confirmation;
    string pickup_station;
  };
  interface COSM_Operations {
    SelectCarReturn_t SelectCar(in SelectCar_t selection);
    BookCarReturn_t BookCar();
  };
  module COSM_TraderExport {
    const long ServiceID = 4711;
    const string TOD = "CarRentalService";
    const CarModel_t CarModel = FIAT-Uno;
    const long AverageMilage = 12000;
    const float ChargePerDay = 80.0;
    const ChargeCurrency_t ChargeCurrency = USD;
  };
  module COSM_FSM {
    state INIT, SELECTED;
    initial INIT;
    transition INIT -> SELECTED on SelectCar;
    transition SELECTED -> SELECTED on SelectCar;
    transition SELECTED -> INIT on BookCar;
  };
  module COSM_Annotations {
    annotation SelectCar "Check availability and price of a car model.";
    annotation BookCar "Book the car selected before.";
    annotation CarRentalService "Rents cars at Hamburg airport.";
  };
};
"""


def make_car_rental_sid(
    model: str = "FIAT-Uno",
    charge_per_day: float = 80.0,
    currency: str = "USD",
    average_milage: int = 12000,
    service_id: Optional[int] = None,
    name: str = "CarRentalService",
) -> ServiceDescription:
    """A parameterised car-rental SID, for populating whole markets."""
    sid = load_service_description(CAR_RENTAL_SIDL)
    sid.name = name
    export = dict(sid.trader_export or {})
    export.update(
        CarModel=model,
        ChargePerDay=float(charge_per_day),
        ChargeCurrency=currency,
        AverageMilage=average_milage,
    )
    if service_id is not None:
        export["ServiceID"] = service_id
    sid.trader_export = export
    return sid


class CarRentalImpl:
    """Server behaviour: quote on SelectCar, confirm on BookCar."""

    _confirmations = itertools.count(1000)

    def __init__(
        self,
        charge_per_day: float = 80.0,
        currency: str = "USD",
        available_models: Optional[Dict[str, int]] = None,
        pickup_station: str = "Hamburg Airport",
    ) -> None:
        self.charge_per_day = charge_per_day
        self.currency = currency
        self.fleet = dict(
            available_models if available_models is not None
            else {"AUDI": 3, "FIAT-Uno": 5, "VW-Golf": 2}
        )
        self.pickup_station = pickup_station
        self.last_selection: Optional[Dict[str, Any]] = None
        self.bookings = 0

    def SelectCar(self, selection: Dict[str, Any]) -> Dict[str, Any]:
        model = selection["CarModel"]
        days = max(1, selection.get("Days", 1))
        available = self.fleet.get(model, 0) > 0
        self.last_selection = dict(selection) if available else None
        return {
            "available": available,
            "charge": self.charge_per_day * days if available else 0.0,
            "currency": self.currency,
        }

    def BookCar(self) -> Dict[str, Any]:
        if self.last_selection is None:
            # The FSM normally prevents this; unchecked runtimes surface it
            # as a remote fault instead of corrupting state.
            raise ValueError("no car selected")
        model = self.last_selection["CarModel"]
        self.fleet[model] = max(0, self.fleet.get(model, 0) - 1)
        self.last_selection = None
        self.bookings += 1
        return {
            "confirmation": next(self._confirmations),
            "pickup_station": self.pickup_station,
        }


def start_car_rental(
    server: RpcServer,
    sid: Optional[ServiceDescription] = None,
    implementation: Optional[CarRentalImpl] = None,
    **runtime_options: Any,
) -> ServiceRuntime:
    """Host a car rental service on an RPC server."""
    sid = sid or load_service_description(CAR_RENTAL_SIDL)
    implementation = implementation or CarRentalImpl(
        charge_per_day=(sid.trader_export or {}).get("ChargePerDay", 80.0),
        currency=(sid.trader_export or {}).get("ChargeCurrency", "USD"),
    )
    return ServiceRuntime(server, sid, implementation, **runtime_options)
