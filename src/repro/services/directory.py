"""A directory service whose results are service references.

Demonstrates SERVICEREFERENCE as a first-class parameter/return type
(§3.2): looking up a category returns references, each of which the
generic client renders as a bind button — the engine behind arbitrarily
deep Fig. 4 cascades (a directory can even list other directories).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.service_runtime import ServiceRuntime
from repro.naming.refs import ServiceRef
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description

DIRECTORY_SIDL = """
module ServiceDirectory {
  typedef Listing_t struct {
    string category;
    string description;
    service_reference ref;
  };
  typedef ListingList_t sequence<Listing_t>;
  typedef CategoryList_t sequence<string>;
  interface COSM_Operations {
    CategoryList_t Categories();
    ListingList_t Lookup(in string category);
    boolean Advertise(in string category, in string description, in service_reference ref);
  };
  module COSM_Annotations {
    annotation Lookup "Services advertised under a category; bind any result.";
    annotation Advertise "Add a service reference under a category.";
  };
};
"""


class DirectoryImpl:
    """In-memory category → listings map."""

    def __init__(self) -> None:
        self._listings: Dict[str, List[Dict[str, Any]]] = {}

    def Categories(self) -> List[str]:
        return sorted(self._listings)

    def Lookup(self, category: str) -> List[Dict[str, Any]]:
        return [dict(item) for item in self._listings.get(category, [])]

    def Advertise(self, category: str, description: str, ref: Any) -> bool:
        wire = ref.to_wire() if isinstance(ref, ServiceRef) else dict(ref)
        self._listings.setdefault(category, []).append(
            {"category": category, "description": description, "ref": wire}
        )
        return True


def start_directory(server: RpcServer, **runtime_options: Any) -> ServiceRuntime:
    sid = load_service_description(DIRECTORY_SIDL)
    return ServiceRuntime(server, sid, DirectoryImpl(), **runtime_options)
