"""Example application services, each a SIDL description + implementation.

* :mod:`repro.services.car_rental` — the paper's running example (§2.1,
  §3.1, §4.1), FSM-restricted (INIT/SELECTED), trader-exportable,
* :mod:`repro.services.image_conversion` — the §2.3 value-adding service:
  converts image format Y to X by *invoking another service*,
* :mod:`repro.services.stock_quotes` — an innovative service without any
  standardised type (browsable only),
* :mod:`repro.services.directory` — a directory whose results are
  SERVICEREFERENCE values, driving Fig. 4 cascades.
"""

from repro.services.car_rental import (
    CAR_RENTAL_SIDL,
    PAPER_LISTING_SIDL,
    CarRentalImpl,
    make_car_rental_sid,
    start_car_rental,
)
from repro.services.directory import DIRECTORY_SIDL, DirectoryImpl, start_directory
from repro.services.flights import FLIGHTS_SIDL, FlightsImpl, start_flights
from repro.services.hotel import HOTEL_SIDL, HotelImpl, start_hotel
from repro.services.image_conversion import (
    IMAGE_ARCHIVE_SIDL,
    IMAGE_CONVERTER_SIDL,
    ImageArchiveImpl,
    ImageConverterImpl,
    start_image_archive,
    start_image_converter,
)
from repro.services.stock_quotes import STOCK_QUOTES_SIDL, StockQuotesImpl, start_stock_quotes

__all__ = [
    "CAR_RENTAL_SIDL",
    "CarRentalImpl",
    "DIRECTORY_SIDL",
    "DirectoryImpl",
    "FLIGHTS_SIDL",
    "FlightsImpl",
    "HOTEL_SIDL",
    "HotelImpl",
    "IMAGE_ARCHIVE_SIDL",
    "IMAGE_CONVERTER_SIDL",
    "ImageArchiveImpl",
    "ImageConverterImpl",
    "PAPER_LISTING_SIDL",
    "STOCK_QUOTES_SIDL",
    "StockQuotesImpl",
    "make_car_rental_sid",
    "start_car_rental",
    "start_directory",
    "start_flights",
    "start_hotel",
    "start_image_archive",
    "start_image_converter",
    "start_stock_quotes",
]
