"""An innovative service with no standardised type (browsable only).

Stands for §2.2's "being the first pays most" provider: nobody has agreed
a StockQuotes service type, there is nothing to register at a trader —
the SID has *no* ``COSM_TraderExport`` — yet any generic client can use it
the moment it registers at a browser.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.core.service_runtime import ServiceRuntime
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description

STOCK_QUOTES_SIDL = """
module StockQuotes {
  typedef Quote_t struct {
    string symbol;
    float bid;
    float ask;
    long volume;
  };
  typedef SymbolList_t sequence<string>;
  typedef QuoteList_t sequence<Quote_t>;
  interface COSM_Operations {
    SymbolList_t ListSymbols();
    Quote_t GetQuote(in string symbol);
    QuoteList_t GetQuotes(in SymbolList_t symbols);
  };
  module COSM_Annotations {
    annotation GetQuote "Current bid/ask for one symbol.";
    annotation StockQuotes "Innovative quote feed; no standard type yet.";
  };
};
"""


class StockQuotesImpl:
    """Deterministic synthetic quotes (seeded)."""

    def __init__(self, seed: int = 7) -> None:
        rng = random.Random(seed)
        self._quotes: Dict[str, Dict[str, Any]] = {}
        for symbol in ("DAI", "SIE", "VOW", "BAS", "ALV"):
            base = round(rng.uniform(20.0, 400.0), 2)
            self._quotes[symbol] = {
                "symbol": symbol,
                "bid": base,
                "ask": round(base * 1.01, 2),
                "volume": rng.randrange(1_000, 100_000),
            }
        self.requests = 0

    def ListSymbols(self) -> List[str]:
        return sorted(self._quotes)

    def GetQuote(self, symbol: str) -> Dict[str, Any]:
        self.requests += 1
        if symbol not in self._quotes:
            raise KeyError(f"unknown symbol {symbol!r}")
        return dict(self._quotes[symbol])

    def GetQuotes(self, symbols: List[str]) -> List[Dict[str, Any]]:
        return [self.GetQuote(symbol) for symbol in symbols]


def start_stock_quotes(server: RpcServer, **runtime_options: Any) -> ServiceRuntime:
    sid = load_service_description(STOCK_QUOTES_SIDL)
    return ServiceRuntime(server, sid, StockQuotesImpl(), **runtime_options)
