"""Service references — SIDL's SERVICEREFERENCE base type (§3.2).

A :class:`ServiceRef` globally identifies one service instance: where it
listens (address), which RPC program serves it, and a stable service id.
References are first-class values: they marshal through the tagged codec
(as marker dicts), travel as parameters and return values, and the generic
client turns any reference it receives into a "bind" UI control — that is
what makes binding *cascades* (Fig. 4) possible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ProtocolError
from repro.net.endpoints import Address
from repro.sidl.types import SERVICE_REF_WIRE_MARKER

_instance_counter = itertools.count(1)


@dataclass(frozen=True)
class ServiceRef:
    """Identifies one service instance in the open network."""

    service_id: str
    name: str
    host: str
    port: int
    prog: int
    vers: int = 1

    @property
    def address(self) -> Address:
        return Address(self.host, self.port)

    @classmethod
    def create(cls, name: str, address: Address, prog: int, vers: int = 1) -> "ServiceRef":
        """Mint a fresh, globally unique reference for a new instance."""
        service_id = f"cosm:{name}:{address.host}:{address.port}:{next(_instance_counter)}"
        return cls(service_id, name, address.host, address.port, prog, vers)

    # -- wire form ----------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "__cosm__": SERVICE_REF_WIRE_MARKER,
            "service_id": self.service_id,
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "prog": self.prog,
            "vers": self.vers,
        }

    @classmethod
    def from_wire(cls, data: Any) -> "ServiceRef":
        if isinstance(data, ServiceRef):
            return data
        if (
            not isinstance(data, dict)
            or data.get("__cosm__") != SERVICE_REF_WIRE_MARKER
        ):
            raise ProtocolError(f"not a service reference: {data!r}")
        return cls(
            service_id=data["service_id"],
            name=data["name"],
            host=data["host"],
            port=data["port"],
            prog=data["prog"],
            vers=data.get("vers", 1),
        )

    @staticmethod
    def is_wire_ref(value: Any) -> bool:
        """True when ``value`` is the wire form of a service reference."""
        return (
            isinstance(value, dict)
            and value.get("__cosm__") == SERVICE_REF_WIRE_MARKER
        )


def find_refs(value: Any) -> list:
    """Collect every service reference nested inside a decoded value.

    The generic client calls this on operation results so each returned
    reference becomes a "bind" control in the generated UI (Fig. 4).
    """
    found = []
    _collect(value, found)
    return found


def _collect(value: Any, found: list) -> None:
    if ServiceRef.is_wire_ref(value):
        found.append(ServiceRef.from_wire(value))
        return
    if isinstance(value, dict):
        for item in value.values():
            _collect(item, found)
    elif isinstance(value, (list, tuple)):
        for item in value:
            _collect(item, found)
