"""The Binder (Fig. 6): binding establishment between clients and services.

Every COSM application service speaks one uniform RPC program shape (its
``prog`` comes from the service reference):

========  =============  ====================================================
proc #    name           semantics
========  =============  ====================================================
1         GET_SID        returns the service's SID (SID transfer, Fig. 3)
2         BIND           opens a session; returns a session id (fresh FSM)
3         UNBIND         closes a session
4         INVOKE         ``{session, operation, arguments}`` → result value
========  =============  ====================================================

This uniformity — any service, same four procedures, everything else
described by the SID — is what lets one generic client drive arbitrary
services.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.context import CallContext
from repro.errors import BindingError
from repro.naming.refs import ServiceRef
from repro.rpc.client import RpcClient
from repro.rpc.errors import RpcError
from repro.sidl.sid import ServiceDescription
from repro.telemetry.metrics import METRICS

PROC_GET_SID = 1
PROC_BIND = 2
PROC_UNBIND = 3
PROC_INVOKE = 4


class Binding:
    """A live session with one service instance."""

    def __init__(
        self,
        client: RpcClient,
        ref: ServiceRef,
        session_id: str,
        sid: Optional[ServiceDescription] = None,
        ctx: Optional[CallContext] = None,
    ) -> None:
        self._client = client
        self.ref = ref
        self.session_id = session_id
        self.sid = sid
        self.ctx = ctx  # default context for calls made through this binding
        self.bound = True
        self.invocations = 0

    def fetch_sid(self, ctx: Optional[CallContext] = None) -> ServiceDescription:
        """Transfer the service's SID (memoised)."""
        if self.sid is None:
            wire = self._client.call(
                self.ref.address, self.ref.prog, self.ref.vers, PROC_GET_SID,
                context=ctx if ctx is not None else self.ctx,
            )
            self.sid = ServiceDescription.from_wire(wire)
        return self.sid

    def invoke(
        self,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        ctx: Optional[CallContext] = None,
    ) -> Any:
        """Raw dynamic invocation (no client-side checking — see the
        generic client for the guarded path)."""
        if not self.bound:
            raise BindingError(f"binding to {self.ref.name} already closed")
        self.invocations += 1
        return self._client.call(
            self.ref.address,
            self.ref.prog,
            self.ref.vers,
            PROC_INVOKE,
            {
                "session": self.session_id,
                "operation": operation,
                "arguments": arguments or {},
            },
            context=ctx if ctx is not None else self.ctx,
        )

    def unbind(self) -> None:
        if not self.bound:
            return
        self.bound = False
        try:
            self._client.call(
                self.ref.address,
                self.ref.prog,
                self.ref.vers,
                PROC_UNBIND,
                {"session": self.session_id},
                # Deliberately NOT bound by self.ctx: teardown should
                # still reach the server after the request budget is
                # spent, else sessions leak exactly when cascades expire.
            )
        except RpcError:
            # The server may already be gone; the local handle is closed
            # either way.
            pass

    def __enter__(self) -> "Binding":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unbind()


class Binder:
    """Creates bindings from service references."""

    def __init__(self, client: RpcClient) -> None:
        self._client = client
        self.bindings_established = 0

    def bind(
        self,
        ref: ServiceRef,
        fetch_sid: bool = False,
        ctx: Optional[CallContext] = None,
    ) -> Binding:
        """Open a session with the referenced service.

        ``fetch_sid=True`` transfers the SID during binding (what the
        generic client does: Fig. 3's "SID Transfer" then "Gui
        Generation").  A ``ctx`` scopes the whole binding: establishment,
        SID transfer, and every later invocation share its budget.
        """
        ref = ServiceRef.from_wire(ref) if not isinstance(ref, ServiceRef) else ref
        try:
            if ctx is not None:
                with ctx.span("binder", f"bind {ref.name}", self._client.transport.now):
                    session_id = self._client.call(
                        ref.address, ref.prog, ref.vers, PROC_BIND, {}, context=ctx
                    )
            else:
                session_id = self._client.call(
                    ref.address, ref.prog, ref.vers, PROC_BIND, {}
                )
        except RpcError as exc:
            METRICS.inc("binder.bind_failures", (ref.name,))
            raise BindingError(
                f"cannot bind to {ref.name} at {ref.address}: {exc}"
            ) from exc
        binding = Binding(self._client, ref, session_id, ctx=ctx)
        self.bindings_established += 1
        METRICS.inc("binder.bindings", (ref.name,))
        if fetch_sid:
            binding.fetch_sid()
        return binding
