"""The Interface Manager (Fig. 6): a networked interface repository.

Exposes :class:`~repro.sidl.repository.InterfaceRepository` over RPC so
any node can store, fetch, and query SIDs — including the structural
query "find every stored description usable where this base is expected"
(§3.1's subtype-polymorphic SIDs, as a service).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcProgram, RpcServer
from repro.sidl.repository import InterfaceRepository
from repro.sidl.sid import ServiceDescription

IFMGR_PROGRAM = 100700

_PROC_STORE = 1
_PROC_FETCH = 2
_PROC_REMOVE = 3
_PROC_LIST = 4
_PROC_FIND_BY_NAME = 5
_PROC_FIND_CONFORMING = 6


class InterfaceManagerService:
    """Hosts an interface repository behind RPC."""

    def __init__(self, server: RpcServer, repository: Optional[InterfaceRepository] = None) -> None:
        self.repository = repository or InterfaceRepository()
        program = RpcProgram(IFMGR_PROGRAM, 1, "interface-manager")
        program.register(_PROC_STORE, self._store, "store")
        program.register(_PROC_FETCH, self._fetch, "fetch")
        program.register(_PROC_REMOVE, self._remove, "remove")
        program.register(_PROC_LIST, self._list, "list")
        program.register(_PROC_FIND_BY_NAME, self._find_by_name, "find_by_name")
        program.register(_PROC_FIND_CONFORMING, self._find_conforming, "find_conforming")
        server.serve(program)
        self.address = server.address

    def _store(self, args) -> str:
        sid = ServiceDescription.from_wire(args["sid"])
        return self.repository.store(sid, args.get("id"))

    def _fetch(self, args) -> Dict[str, Any]:
        return self.repository.fetch(args["id"]).to_wire()

    def _remove(self, args) -> bool:
        return self.repository.remove(args["id"])

    def _list(self, args) -> List[str]:
        return self.repository.ids()

    def _find_by_name(self, args) -> List[Dict[str, Any]]:
        return [sid.to_wire() for sid in self.repository.find_by_name(args["name"])]

    def _find_conforming(self, args) -> List[Dict[str, Any]]:
        base = ServiceDescription.from_wire(args["base"])
        return [sid.to_wire() for sid in self.repository.find_conforming(base)]


class InterfaceManagerClient:
    """Client stub for a remote interface manager."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self._address = address

    def store(self, sid: ServiceDescription, repository_id: Optional[str] = None) -> str:
        return self._call(_PROC_STORE, {"sid": sid.to_wire(), "id": repository_id})

    def fetch(self, repository_id: str) -> ServiceDescription:
        return ServiceDescription.from_wire(self._call(_PROC_FETCH, {"id": repository_id}))

    def remove(self, repository_id: str) -> bool:
        return self._call(_PROC_REMOVE, {"id": repository_id})

    def list(self) -> List[str]:
        return self._call(_PROC_LIST, {})

    def find_by_name(self, name: str) -> List[ServiceDescription]:
        return [
            ServiceDescription.from_wire(item)
            for item in self._call(_PROC_FIND_BY_NAME, {"name": name})
        ]

    def find_conforming(self, base: ServiceDescription) -> List[ServiceDescription]:
        return [
            ServiceDescription.from_wire(item)
            for item in self._call(_PROC_FIND_CONFORMING, {"base": base.to_wire()})
        ]

    def _call(self, proc: int, args) -> Any:
        return self._client.call(self._address, IFMGR_PROGRAM, 1, proc, args)
