"""Group manager (Fig. 6): named groups of service addresses.

Groups back the extended multicast functions of the communication level:
a caller resolves a group to its member addresses and hands them to
:class:`repro.rpc.multicast.MulticastCaller`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import LookupFailure
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.multicast import MulticastCaller, MulticastResult
from repro.rpc.server import RpcProgram, RpcServer

GROUP_PROGRAM = 100400

_PROC_CREATE = 1
_PROC_JOIN = 2
_PROC_LEAVE = 3
_PROC_MEMBERS = 4
_PROC_LIST = 5
_PROC_DELETE = 6


class GroupManagerService:
    """Networked registry of groups."""

    def __init__(self, server: RpcServer) -> None:
        self._groups: Dict[str, Set[Address]] = {}
        program = RpcProgram(GROUP_PROGRAM, 1, "groups")
        program.register(_PROC_CREATE, self._create, "create")
        program.register(_PROC_JOIN, self._join, "join")
        program.register(_PROC_LEAVE, self._leave, "leave")
        program.register(_PROC_MEMBERS, self._members, "members")
        program.register(_PROC_LIST, self._list, "list")
        program.register(_PROC_DELETE, self._delete, "delete")
        server.serve(program)
        self.address = server.address

    def _create(self, args) -> bool:
        group = args["group"]
        if group in self._groups:
            return False
        self._groups[group] = set()
        return True

    def _group(self, name: str) -> Set[Address]:
        if name not in self._groups:
            raise LookupFailure(f"no such group: {name!r}")
        return self._groups[name]

    def _join(self, args) -> bool:
        members = self._group(args["group"])
        address = Address(args["host"], args["port"])
        if address in members:
            return False
        members.add(address)
        return True

    def _leave(self, args) -> bool:
        members = self._group(args["group"])
        address = Address(args["host"], args["port"])
        if address not in members:
            return False
        members.remove(address)
        return True

    def _members(self, args) -> List[Address]:
        return sorted(self._group(args["group"]))

    def _list(self, args) -> List[str]:
        return sorted(self._groups)

    def _delete(self, args) -> bool:
        return self._groups.pop(args["group"], None) is not None


class GroupClient:
    """Client-side stub plus group-call convenience."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self._address = address
        self._caller = MulticastCaller(client)

    def create(self, group: str) -> bool:
        return self._call(_PROC_CREATE, {"group": group})

    def join(self, group: str, member: Address) -> bool:
        return self._call(
            _PROC_JOIN, {"group": group, "host": member.host, "port": member.port}
        )

    def leave(self, group: str, member: Address) -> bool:
        return self._call(
            _PROC_LEAVE, {"group": group, "host": member.host, "port": member.port}
        )

    def members(self, group: str) -> List[Address]:
        raw = self._call(_PROC_MEMBERS, {"group": group})
        return [Address(*item) if not isinstance(item, Address) else item for item in raw]

    def list(self) -> List[str]:
        return self._call(_PROC_LIST, {})

    def delete(self, group: str) -> bool:
        return self._call(_PROC_DELETE, {"group": group})

    def group_call(
        self,
        group: str,
        prog: int,
        vers: int,
        proc: int,
        args=None,
        timeout: float = 1.0,
        quorum=None,
    ) -> MulticastResult:
        """Multicast an RPC to every current member of ``group``."""
        members = self.members(group)
        return self._caller.call(members, prog, vers, proc, args, timeout, quorum)

    def _call(self, proc: int, args) -> object:
        return self._client.call(self._address, GROUP_PROGRAM, 1, proc, args)
