"""Broadcast service discovery — bootstrapping into an unknown network.

The paper assumes clients reach a "well-known" Browser; on a real 1994
LAN that knowledge came from broadcast.  This module implements it over
the simulated network's broadcast primitive: every host that wants to be
discoverable runs a :class:`DiscoveryResponder` on the well-known
discovery port; a joining client broadcasts one DISCOVER call and
collects the responders' advertised service references (browsers,
traders, name servers) until its deadline.

Broadcast exists only on the simulated (LAN-like) transport — exactly the
real-world situation, where WAN bootstrap needs configured addresses.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Union

from repro.context import CallContext
from repro.errors import LookupFailure
from repro.naming.refs import ServiceRef
from repro.net.sim import SimNetwork
from repro.rpc.client import RpcClient
from repro.rpc.message import ReplyStatus, RpcCall
from repro.rpc.server import RpcProgram, RpcServer
from repro.rpc.transport import SimTransport
from repro.rpc.xdr import decode_value

DISCOVERY_PORT = 532
DISCOVERY_PROGRAM = 100100

_PROC_DISCOVER = 1


class DiscoveryResponder:
    """Answers broadcast DISCOVER calls with this host's advertised refs.

    One responder per host, bound to the well-known discovery port.
    Advertisements are tagged with a *role* ("browser", "trader",
    "nameserver", ...), so clients can ask for a specific kind.
    """

    def __init__(self, network: SimNetwork, host: str) -> None:
        self._advertised: List[Dict[str, object]] = []
        transport = SimTransport(network, host, DISCOVERY_PORT)
        self.server = RpcServer(transport)
        program = RpcProgram(DISCOVERY_PROGRAM, 1, "discovery")
        program.register(_PROC_DISCOVER, self._discover, "discover")
        self.server.serve(program)
        self.address = transport.local_address

    def advertise(self, role: str, ref: Union[ServiceRef, Dict[str, object]]) -> None:
        ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else dict(ref)
        self._advertised.append({"role": role, "ref": ref_wire})

    def withdraw(self, ref: Union[ServiceRef, Dict[str, object]]) -> bool:
        ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else dict(ref)
        before = len(self._advertised)
        self._advertised = [
            item for item in self._advertised if item["ref"] != ref_wire
        ]
        return len(self._advertised) != before

    def _discover(self, args) -> List[Dict[str, object]]:
        role = (args or {}).get("role", "")
        if not role:
            return list(self._advertised)
        return [item for item in self._advertised if item["role"] == role]


class BroadcastDiscoverer:
    """Client side: one broadcast, many replies, gathered by deadline."""

    _xids = itertools.count(0x7D000000)

    def __init__(self, network: SimNetwork, client: RpcClient) -> None:
        self._network = network
        self._client = client
        if not isinstance(client.transport, SimTransport):
            raise LookupFailure(
                "broadcast discovery needs the simulated (LAN) transport"
            )

    def discover(
        self,
        role: str = "",
        timeout: float = 0.05,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, object]]:
        """Broadcast a DISCOVER; returns ``{"role", "ref"}`` dicts.

        Waits the *full* timeout — unlike unicast there is no way to know
        how many answers are coming — unless a ``ctx`` with less budget
        remaining bounds the gather window.
        """
        from repro.rpc.xdr import encode_value

        wait = timeout
        if ctx is not None:
            wait = min(wait, ctx.remaining(self._client.transport.now()))
            if wait <= 0:
                return []
        xid = next(self._xids)
        call = RpcCall(
            xid, DISCOVERY_PROGRAM, 1, _PROC_DISCOVER, encode_value({"role": role}),
            deadline=ctx.deadline if ctx is not None else None,
            trace_id=ctx.trace_id if ctx is not None else "",
        )
        source = self._client.transport.local_address
        sent = self._network.broadcast(source, DISCOVERY_PORT, call.encode())
        if sent == 0:
            return []
        gathered: List[Dict[str, object]] = []

        # Replies share one xid; the dispatcher keeps only the latest per
        # xid, so drain the pending slot as answers arrive.
        def drain() -> bool:
            reply = self._client._pending.pop(xid, None)
            if reply is not None and reply.status is ReplyStatus.SUCCESS:
                gathered.extend(decode_value(reply.body))
            return False  # never "done": collect until the deadline

        if ctx is not None:
            with ctx.span("discovery", f"broadcast {role or '*'}",
                          self._client.transport.now):
                self._client.transport.wait(drain, wait)
        else:
            self._client.transport.wait(drain, wait)
        drain()
        # Stragglers answering after the window are duplicates, not news.
        self._client.retire_xid(xid)
        return gathered

    def find_refs(
        self,
        role: str,
        timeout: float = 0.05,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceRef]:
        """Discover and decode just the references for one role."""
        return [
            ServiceRef.from_wire(item["ref"])
            for item in self.discover(role, timeout, ctx=ctx)
        ]

    def find_first(
        self,
        role: str,
        timeout: float = 0.05,
        ctx: Optional[CallContext] = None,
    ) -> ServiceRef:
        refs = self.find_refs(role, timeout, ctx=ctx)
        if not refs:
            raise LookupFailure(f"no {role!r} responded to broadcast discovery")
        return refs[0]
