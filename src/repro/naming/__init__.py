"""Service Support Level (Fig. 6): naming, groups, service refs, binder.

* :mod:`repro.naming.refs` — SERVICEREFERENCE values: globally identifying,
  first-class, transferable service references (§3.2),
* :mod:`repro.naming.nameserver` — hierarchical name server (service +
  client),
* :mod:`repro.naming.groups` — group manager for multicast groups,
* :mod:`repro.naming.binder` — binding establishment between a client and
  a COSM service runtime; produces :class:`Binding` handles.
"""

from repro.naming.binder import Binder, Binding
from repro.naming.groups import GroupManagerService, GroupClient, GROUP_PROGRAM
from repro.naming.interface_manager import (
    IFMGR_PROGRAM,
    InterfaceManagerClient,
    InterfaceManagerService,
)
from repro.naming.nameserver import (
    NAMESERVER_PROGRAM,
    NameRegistry,
    NameServerClient,
    NameServerService,
)
from repro.naming.refs import ServiceRef

__all__ = [
    "Binder",
    "Binding",
    "GROUP_PROGRAM",
    "GroupClient",
    "GroupManagerService",
    "IFMGR_PROGRAM",
    "InterfaceManagerClient",
    "InterfaceManagerService",
    "NAMESERVER_PROGRAM",
    "NameRegistry",
    "NameServerClient",
    "NameServerService",
    "ServiceRef",
]
