"""Hierarchical name server (Fig. 6, Service Support Level).

Names are slash-separated paths (``"services/rental/hamburg"``).  Bound
values are arbitrary marshallable values — in COSM practice, service
reference wire dicts.  Both the in-process registry and the networked
service/client pair are provided.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LookupFailure
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcProgram, RpcServer

NAMESERVER_PROGRAM = 100300

_PROC_BIND = 1
_PROC_REBIND = 2
_PROC_RESOLVE = 3
_PROC_UNBIND = 4
_PROC_LIST = 5


def _split(path: str) -> Tuple[str, ...]:
    parts = tuple(part for part in path.split("/") if part)
    if not parts:
        raise LookupFailure("empty name")
    return parts


class NameRegistry:
    """The in-process data structure: a tree of contexts with leaf values."""

    def __init__(self) -> None:
        self._root: Dict[str, Any] = {}

    def bind(self, path: str, value: Any, replace: bool = False) -> None:
        """Bind ``path`` to ``value``; intermediate contexts are created."""
        parts = _split(path)
        node = self._root
        for part in parts[:-1]:
            child = node.get(part)
            if child is None:
                child = {}
                node[part] = child
            if not isinstance(child, dict):
                raise LookupFailure(f"{part!r} in {path!r} is a leaf, not a context")
            node = child
        leaf = parts[-1]
        if leaf in node and not replace:
            raise LookupFailure(f"name already bound: {path!r}")
        if isinstance(node.get(leaf), dict):
            raise LookupFailure(f"{path!r} is a context; cannot bind a value over it")
        node[leaf] = ("leaf", value)

    def resolve(self, path: str) -> Any:
        node = self._descend(path)
        if isinstance(node, tuple) and node and node[0] == "leaf":
            return node[1]
        raise LookupFailure(f"{path!r} names a context, not a value")

    def unbind(self, path: str) -> bool:
        parts = _split(path)
        node = self._root
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                return False
            node = child
        return node.pop(parts[-1], None) is not None

    def list(self, context: str = "") -> List[str]:
        """Immediate children of a context; leaves sort before contexts."""
        node = self._root if not context else self._descend(context)
        if not isinstance(node, dict):
            raise LookupFailure(f"{context!r} is not a context")
        leaves = sorted(k for k, v in node.items() if not isinstance(v, dict))
        contexts = sorted(f"{k}/" for k, v in node.items() if isinstance(v, dict))
        return leaves + contexts

    def _descend(self, path: str) -> Any:
        node: Any = self._root
        for part in _split(path):
            if not isinstance(node, dict) or part not in node:
                raise LookupFailure(f"name not found: {path!r}")
            node = node[part]
        return node


class NameServerService:
    """Networked wrapper exposing a :class:`NameRegistry` over RPC."""

    def __init__(self, server: RpcServer, registry: Optional[NameRegistry] = None) -> None:
        self.registry = registry or NameRegistry()
        program = RpcProgram(NAMESERVER_PROGRAM, 1, "nameserver")
        program.register(_PROC_BIND, self._bind, "bind")
        program.register(_PROC_REBIND, self._rebind, "rebind")
        program.register(_PROC_RESOLVE, self._resolve, "resolve")
        program.register(_PROC_UNBIND, self._unbind, "unbind")
        program.register(_PROC_LIST, self._list, "list")
        server.serve(program)
        self.address = server.address

    def _bind(self, args) -> bool:
        self.registry.bind(args["name"], args["value"])
        return True

    def _rebind(self, args) -> bool:
        self.registry.bind(args["name"], args["value"], replace=True)
        return True

    def _resolve(self, args) -> Any:
        return self.registry.resolve(args["name"])

    def _unbind(self, args) -> bool:
        return self.registry.unbind(args["name"])

    def _list(self, args) -> List[str]:
        return self.registry.list(args.get("context", ""))


class NameServerClient:
    """Client-side stub for a remote name server."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self._address = address

    def bind(self, name: str, value: Any) -> bool:
        return self._client.call(
            self._address, NAMESERVER_PROGRAM, 1, _PROC_BIND,
            {"name": name, "value": value},
        )

    def rebind(self, name: str, value: Any) -> bool:
        return self._client.call(
            self._address, NAMESERVER_PROGRAM, 1, _PROC_REBIND,
            {"name": name, "value": value},
        )

    def resolve(self, name: str) -> Any:
        return self._client.call(
            self._address, NAMESERVER_PROGRAM, 1, _PROC_RESOLVE, {"name": name}
        )

    def unbind(self, name: str) -> bool:
        return self._client.call(
            self._address, NAMESERVER_PROGRAM, 1, _PROC_UNBIND, {"name": name}
        )

    def list(self, context: str = "") -> List[str]:
        return self._client.call(
            self._address, NAMESERVER_PROGRAM, 1, _PROC_LIST, {"context": context}
        )
