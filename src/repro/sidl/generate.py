"""Regenerate SIDL source from a semantic :class:`ServiceDescription`.

The inverse of the builder.  Used when a mediated SID must be exported as
text (e.g. written to an interface repository file, or shown to the human
user in the browser).  Generated source always parses back to an equal
SID, which the test suite checks property-style.

Constructed types (enums, structs, unions) that appear in signatures
without being in the SID's named-type table — legal in the semantic model
— are *hoisted*: they get a synthetic unique name and a definition emitted
before first use, because SIDL's concrete syntax (like CORBA IDL's) only
references constructed types by name.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.sidl.types import (
    EnumType,
    SequenceType,
    SidlType,
    StringType,
    StructType,
    UnionType,
)

_CONSTRUCTED = (EnumType, StructType, UnionType)


def sid_to_sidl(sid) -> str:
    """Render a :class:`~repro.sidl.sid.ServiceDescription` as SIDL text."""
    table, by_id = _build_type_table(sid)
    lines: List[str] = [f"module {sid.name} {{"]
    emitted: set = set()
    for type_name, sidl_type in table:
        _emit_definition(type_name, sidl_type, by_id, emitted, lines)
    for const_name, value in sid.constants.items():
        lines.append(f"  const {_const_type(value)} {const_name} = {_literal(value)};")
    lines.extend(_interface_lines(sid.interface, by_id))
    if sid.fsm is not None:
        lines.append("  module COSM_FSM {")
        lines.append(f"    state {', '.join(sid.fsm.states)};")
        lines.append(f"    initial {sid.fsm.initial};")
        for transition in sid.fsm.transitions:
            lines.append(
                f"    transition {transition.source} -> {transition.target} "
                f"on {transition.operation};"
            )
        lines.append("  };")
    if sid.trader_export is not None:
        lines.append("  module COSM_TraderExport {")
        for key, value in sid.trader_export.items():
            lines.append(f"    const {_const_type(value)} {key} = {_literal(value)};")
        lines.append("  };")
    if sid.annotations:
        lines.append("  module COSM_Annotations {")
        for subject, text in sid.annotations.items():
            lines.append(f"    annotation {subject} {_quote(text)};")
        lines.append("  };")
    if sid.ui_hints:
        lines.append("  module COSM_UIHints {")
        for key, value in sid.ui_hints.items():
            lines.append(f"    const {_const_type(value)} {key} = {_literal(value)};")
        lines.append("  };")
    for __, raw_source in sid.unknown_modules:
        for raw_line in raw_source.rstrip("\n").splitlines():
            lines.append(f"  {raw_line}")
    lines.append("};")
    return "\n".join(lines) + "\n"


# -- type table construction -------------------------------------------------


def _build_type_table(sid) -> Tuple[List[Tuple[str, SidlType]], Dict[int, str]]:
    """All constructed types the source must define, in discovery order.

    Returns the (name, type) list plus an identity → name map used when
    emitting references.  Anonymous constructed types reachable from the
    declared table or the interface are hoisted under fresh names.
    """
    table: List[Tuple[str, SidlType]] = []
    by_id: Dict[int, str] = {}
    used_names: set = set()

    def fresh_name(base: str) -> str:
        candidate = base or "Anon_t"
        suffix = 1
        while candidate in used_names:
            suffix += 1
            candidate = f"{base}_{suffix}"
        used_names.add(candidate)
        return candidate

    def hoist(sidl_type: SidlType) -> None:
        if id(sidl_type) in by_id:
            return
        if isinstance(sidl_type, SequenceType):
            hoist(sidl_type.element)
            return
        if not isinstance(sidl_type, _CONSTRUCTED):
            return
        # children first, so the recorded order is already emittable
        if isinstance(sidl_type, StructType):
            for __, field_type in sidl_type.fields:
                hoist(field_type)
        elif isinstance(sidl_type, UnionType):
            hoist(sidl_type.discriminator)
            for __, __arm, arm_type in sidl_type.cases:
                hoist(arm_type)
        name = fresh_name(getattr(sidl_type, "name", "") or "Anon_t")
        by_id[id(sidl_type)] = name
        table.append((name, sidl_type))

    # Declared types keep their declared names (registered before walking
    # so self-references resolve); their children may still need hoisting.
    for declared_name, declared in sid.types.items():
        if isinstance(declared, _CONSTRUCTED) and id(declared) not in by_id:
            used_names.add(declared_name)
            by_id[id(declared)] = declared_name
    for declared_name, declared in sid.types.items():
        if isinstance(declared, StructType):
            for __, field_type in declared.fields:
                hoist(field_type)
        elif isinstance(declared, UnionType):
            hoist(declared.discriminator)
            for __, __a, arm_type in declared.cases:
                hoist(arm_type)
        elif isinstance(declared, SequenceType):
            hoist(declared.element)
        if isinstance(declared, _CONSTRUCTED):
            table.append((declared_name, declared))
        else:
            # aliases (sequence/string/primitive typedefs) keep their name
            used_names.add(declared_name)
            table.append((declared_name, declared))
    for operation in sid.interface.operations.values():
        for __, __direction, param_type in operation.params:
            hoist(param_type)
        hoist(operation.result)
    return table, by_id


def _emit_definition(
    name: str,
    sidl_type: SidlType,
    by_id: Dict[int, str],
    emitted: set,
    lines: List[str],
) -> None:
    if name in emitted:
        return
    emitted.add(name)
    if isinstance(sidl_type, EnumType):
        lines.append(f"  enum {name} {{ {', '.join(sidl_type.labels)} }};")
        return
    if isinstance(sidl_type, StructType):
        lines.append(f"  struct {name} {{")
        for field_name, field_type in sidl_type.fields:
            lines.append(f"    {_type_ref(field_type, by_id)} {field_name};")
        lines.append("  };")
        return
    if isinstance(sidl_type, UnionType):
        disc = _type_ref(sidl_type.discriminator, by_id)
        lines.append(f"  union {name} switch ({disc}) {{")
        for label, arm_name, arm_type in sidl_type.cases:
            case = "default" if label is None else f"case {label}"
            lines.append(f"    {case}: {_type_ref(arm_type, by_id)} {arm_name};")
        lines.append("  };")
        return
    # alias of a primitive/sequence/bounded string
    lines.append(f"  typedef {_type_ref(sidl_type, by_id, alias_of=name)} {name};")


def _interface_lines(interface, by_id: Dict[int, str]) -> List[str]:
    lines = [f"  interface {interface.name} {{"]
    for operation in interface.operations.values():
        params = ", ".join(
            f"{direction} {_type_ref(param_type, by_id)} {param_name}"
            for param_name, direction, param_type in operation.params
        )
        prefix = "oneway " if operation.oneway else ""
        lines.append(
            f"    {prefix}{_type_ref(operation.result, by_id)} "
            f"{operation.name}({params});"
        )
    lines.append("  };")
    return lines


def _type_ref(sidl_type: SidlType, by_id: Dict[int, str], alias_of: str = "") -> str:
    name = by_id.get(id(sidl_type))
    if name is not None and name != alias_of:
        return name
    if isinstance(sidl_type, SequenceType):
        inner = _type_ref(sidl_type.element, by_id)
        if sidl_type.bound is not None:
            return f"sequence<{inner}, {sidl_type.bound}>"
        return f"sequence<{inner}>"
    if isinstance(sidl_type, StringType) and sidl_type.bound is not None:
        return f"string<{sidl_type.bound}>"
    return getattr(sidl_type, "name", "any")


def _const_type(value: Any) -> str:
    if value is True or value is False:
        return "boolean"
    if isinstance(value, int):
        return "long"
    if isinstance(value, float):
        return "float"
    return "string"


def _literal(value: Any) -> str:
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return _quote(value)
    if isinstance(value, float) and value == int(value):
        return f"{value:.1f}"
    return str(value)


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
