"""Static wire layouts derived from SIDL signatures.

The tagged codec (:mod:`repro.rpc.xdr`) is what makes *dynamic*
marshalling possible — values carry their own structure — but for a
signature the SID already fixes, carrying that structure on every call
is pure overhead.  This module maps SIDL types to a tiny **layout spec**
language the compiled codec (:mod:`repro.rpc.codec`) turns into
precomputed ``struct`` formats.

A spec is a nested tuple, hashable and stably ``repr``-able (the codec
fingerprints specs by their canonical repr):

===============  =======================================================
spec             meaning
===============  =======================================================
``("void",)``    exactly ``None``, zero bytes on the wire
``("i64",)``     a Python ``int`` as a big-endian signed 64-bit hyper
``("f64",)``     a Python ``float`` as an IEEE double
``("bool",)``    ``True``/``False`` as a u32
``("enum", labels)``  a label string as its u32 index into ``labels``
``("string",)``  UTF-8, u32 length prefix, zero-padded to 4
``("bytes",)``   opaque, u32 length prefix, zero-padded to 4
``("struct", ((name, spec), ...))``  a dict with exactly these keys
``("optional", spec)``  ``None`` or a value: u32 presence flag + value
``("seq", spec)``  list of values: u32 count + elements
===============  =======================================================

Types without a static layout (``any``, unions, service references,
SIDs) have none — :func:`layout_for` raises :class:`SidlLayoutError`
and the caller keeps the tagged path for that signature.
"""

from __future__ import annotations

from typing import Tuple

from repro.sidl.errors import SidlError
from repro.sidl.types import (
    BooleanType,
    EnumType,
    FloatType,
    IntegerType,
    OctetsType,
    OperationType,
    SequenceType,
    SidlType,
    StringType,
    StructType,
    VoidType,
)

Spec = tuple


class SidlLayoutError(SidlError):
    """The type has no static wire layout (needs dynamic marshalling)."""


# -- spec constructors (for hand-written signatures) ----------------------

def void() -> Spec:
    return ("void",)


def i64() -> Spec:
    return ("i64",)


def f64() -> Spec:
    return ("f64",)


def boolean() -> Spec:
    return ("bool",)


def enum(*labels: str) -> Spec:
    return ("enum", tuple(labels))


def string() -> Spec:
    return ("string",)


def octets() -> Spec:
    return ("bytes",)


def struct(**fields: Spec) -> Spec:
    return ("struct", tuple(fields.items()))


def optional(element: Spec) -> Spec:
    return ("optional", element)


def seq(element: Spec) -> Spec:
    return ("seq", element)


# -- SIDL type -> spec ----------------------------------------------------

def layout_for(sidl_type: SidlType) -> Spec:
    """The static layout spec of ``sidl_type``.

    Raises :class:`SidlLayoutError` for types whose values need the
    self-describing tagged encoding (``any``, unions, service
    references, SID values).
    """
    if isinstance(sidl_type, VoidType):
        return ("void",)
    if isinstance(sidl_type, BooleanType):
        return ("bool",)
    if isinstance(sidl_type, IntegerType):
        return ("i64",)
    if isinstance(sidl_type, FloatType):
        return ("f64",)
    if isinstance(sidl_type, EnumType):
        return ("enum", tuple(sidl_type.labels))
    if isinstance(sidl_type, StringType):
        return ("string",)
    if isinstance(sidl_type, OctetsType):
        return ("bytes",)
    if isinstance(sidl_type, StructType):
        return (
            "struct",
            tuple(
                (field_name, layout_for(field_type))
                for field_name, field_type in sidl_type.fields
            ),
        )
    if isinstance(sidl_type, SequenceType):
        return ("seq", layout_for(sidl_type.element))
    raise SidlLayoutError(
        f"{sidl_type.describe()} has no static layout; use dynamic marshalling"
    )


def operation_layouts(operation: OperationType) -> Tuple[Spec, Spec]:
    """``(args_spec, result_spec)`` for one SIDL operation.

    Arguments travel as a record of the operation's in-params in
    declaration order; the result is the operation's result type.
    Raises :class:`SidlLayoutError` when any participating type is
    dynamic.
    """
    args = (
        "struct",
        tuple(
            (param_name, layout_for(param_type))
            for param_name, param_type in operation.in_params()
        ),
    )
    return args, layout_for(operation.result)
