"""Wire representation of SIDL types.

SIDs are communicable first-class values (§3.1), so every type object must
survive a trip through the tagged XDR codec.  Named types declared by the
SID are serialised once in a definitions table; all other references are
inlined.  Decoding resolves names lazily with memoisation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sidl.errors import SidlSemanticError
from repro.sidl.types import (
    AnyType,
    BooleanType,
    EnumType,
    FloatType,
    IntegerType,
    InterfaceType,
    OctetsType,
    OperationType,
    PRIMITIVES,
    SequenceType,
    ServiceReferenceType,
    SidValueType,
    SidlType,
    StringType,
    StructType,
    UnionType,
    VoidType,
)


def type_to_wire(sidl_type: SidlType, named: Dict[str, SidlType]) -> Any:
    """Encode a type; named types already in ``named`` become references."""
    name = getattr(sidl_type, "name", None)
    if name in named and named[name] is sidl_type:
        return {"kind": "ref", "name": name}
    if isinstance(sidl_type, (VoidType, BooleanType, OctetsType, AnyType,
                              ServiceReferenceType, SidValueType)):
        return {"kind": "primitive", "name": sidl_type.name}
    if isinstance(sidl_type, IntegerType):
        return {"kind": "primitive", "name": sidl_type.name}
    if isinstance(sidl_type, FloatType):
        return {"kind": "primitive", "name": sidl_type.name}
    if isinstance(sidl_type, StringType):
        return {"kind": "string", "bound": sidl_type.bound}
    if isinstance(sidl_type, EnumType):
        return {
            "kind": "enum",
            "name": sidl_type.name,
            "labels": list(sidl_type.labels),
        }
    if isinstance(sidl_type, StructType):
        return {
            "kind": "struct",
            "name": sidl_type.name,
            "fields": [
                [field_name, type_to_wire(field_type, named)]
                for field_name, field_type in sidl_type.fields
            ],
        }
    if isinstance(sidl_type, SequenceType):
        return {
            "kind": "sequence",
            "element": type_to_wire(sidl_type.element, named),
            "bound": sidl_type.bound,
        }
    if isinstance(sidl_type, UnionType):
        return {
            "kind": "union",
            "name": sidl_type.name,
            "discriminator": type_to_wire(sidl_type.discriminator, named),
            "cases": [
                [label, arm_name, type_to_wire(arm_type, named)]
                for label, arm_name, arm_type in sidl_type.cases
            ],
        }
    raise SidlSemanticError(f"cannot serialise type {sidl_type!r}")


def type_from_wire(
    data: Any,
    definitions: Optional[Dict[str, Any]] = None,
    memo: Optional[Dict[str, SidlType]] = None,
) -> SidlType:
    """Decode a type; ``definitions`` maps names to their wire forms."""
    definitions = definitions or {}
    memo = memo if memo is not None else {}
    return _decode(data, definitions, memo)


def _decode(data: Any, definitions: Dict[str, Any], memo: Dict[str, SidlType]) -> SidlType:
    kind = data.get("kind")
    if kind == "ref":
        name = data["name"]
        if name in memo:
            return memo[name]
        if name not in definitions:
            raise SidlSemanticError(f"reference to unknown type {name!r}")
        decoded = _decode(definitions[name], definitions, memo)
        memo[name] = decoded
        return decoded
    if kind == "primitive":
        name = data["name"]
        if name not in PRIMITIVES:
            raise SidlSemanticError(f"unknown primitive {name!r}")
        return PRIMITIVES[name]
    if kind == "string":
        bound = data.get("bound")
        return StringType(bound) if bound else PRIMITIVES["string"]
    if kind == "enum":
        return EnumType(data["name"], data["labels"])
    if kind == "struct":
        fields = [
            (field_name, _decode(field_data, definitions, memo))
            for field_name, field_data in data["fields"]
        ]
        return StructType(data["name"], fields)
    if kind == "sequence":
        element = _decode(data["element"], definitions, memo)
        return SequenceType(element, data.get("bound"))
    if kind == "union":
        discriminator = _decode(data["discriminator"], definitions, memo)
        cases = [
            (label, arm_name, _decode(arm_data, definitions, memo))
            for label, arm_name, arm_data in data["cases"]
        ]
        return UnionType(data["name"], discriminator, cases)
    raise SidlSemanticError(f"unknown wire type kind {kind!r}")


def interface_to_wire(interface: InterfaceType, named: Dict[str, SidlType]) -> Any:
    return {
        "name": interface.name,
        "operations": [
            {
                "name": operation.name,
                "result": type_to_wire(operation.result, named),
                "params": [
                    [param_name, direction, type_to_wire(param_type, named)]
                    for param_name, direction, param_type in operation.params
                ],
                "oneway": operation.oneway,
            }
            for operation in interface.operations.values()
        ],
    }


def interface_from_wire(
    data: Any,
    definitions: Dict[str, Any],
    memo: Dict[str, SidlType],
) -> InterfaceType:
    operations = []
    for op_data in data["operations"]:
        params = [
            (param_name, direction, _decode(param_data, definitions, memo))
            for param_name, direction, param_data in op_data["params"]
        ]
        operations.append(
            OperationType(
                op_data["name"],
                params,
                _decode(op_data["result"], definitions, memo),
                op_data.get("oneway", False),
            )
        )
    return InterfaceType(data["name"], operations)
