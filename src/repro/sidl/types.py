"""The SIDL type system.

Types are *structural*, in the spirit of the record calculi the paper
cites (Quest, Tycoon TL): names are carried for diagnostics and UI labels
but conformance is decided by shape (see :mod:`repro.sidl.subtyping`).

Every type can

* ``check(value)`` — validate/canonicalise a Python value against the
  type (raising :class:`SidlTypeError`), which is what the generic
  client's *dynamic marshalling* runs before a value crosses the wire, and
* ``default()`` — produce the neutral value used to pre-populate the
  generated UI forms of Fig. 7.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sidl.errors import SidlTypeError

SID_WIRE_MARKER = "sid"
SERVICE_REF_WIRE_MARKER = "service_reference"
_MARKER_KEY = "__cosm__"


class SidlType:
    """Base class of all SIDL types."""

    name: str = "?"

    def check(self, value: Any) -> Any:
        raise NotImplementedError

    def default(self) -> Any:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form used in diagnostics and generated UIs."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class VoidType(SidlType):
    name = "void"

    def check(self, value: Any) -> Any:
        if value is not None:
            raise SidlTypeError(f"void cannot hold {value!r}")
        return None

    def default(self) -> Any:
        return None


class BooleanType(SidlType):
    name = "boolean"

    def check(self, value: Any) -> Any:
        if not isinstance(value, bool):
            raise SidlTypeError(f"expected boolean, got {value!r}")
        return value

    def default(self) -> Any:
        return False


class IntegerType(SidlType):
    """Fixed-width signed integer (short/long/long long/octet)."""

    def __init__(self, name: str, bits: int, signed: bool = True) -> None:
        self.name = name
        self.bits = bits
        if signed:
            self.minimum = -(2 ** (bits - 1))
            self.maximum = 2 ** (bits - 1) - 1
        else:
            self.minimum = 0
            self.maximum = 2**bits - 1

    def check(self, value: Any) -> Any:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SidlTypeError(f"expected {self.name}, got {value!r}")
        if not self.minimum <= value <= self.maximum:
            raise SidlTypeError(
                f"{value} out of range for {self.name} "
                f"[{self.minimum}, {self.maximum}]"
            )
        return value

    def default(self) -> Any:
        return 0


class FloatType(SidlType):
    def __init__(self, name: str) -> None:
        self.name = name

    def check(self, value: Any) -> Any:
        if isinstance(value, bool):
            raise SidlTypeError(f"expected {self.name}, got {value!r}")
        if isinstance(value, int):
            return float(value)
        if not isinstance(value, float):
            raise SidlTypeError(f"expected {self.name}, got {value!r}")
        return value

    def default(self) -> Any:
        return 0.0


class StringType(SidlType):
    def __init__(self, bound: Optional[int] = None) -> None:
        self.bound = bound
        self.name = f"string<{bound}>" if bound else "string"

    def check(self, value: Any) -> Any:
        if not isinstance(value, str):
            raise SidlTypeError(f"expected string, got {value!r}")
        if self.bound is not None and len(value) > self.bound:
            raise SidlTypeError(
                f"string of length {len(value)} exceeds bound {self.bound}"
            )
        return value

    def default(self) -> Any:
        return ""


class OctetsType(SidlType):
    """A byte string (sequence<octet> collapsed to bytes)."""

    name = "octets"

    def check(self, value: Any) -> Any:
        if not isinstance(value, (bytes, bytearray)):
            raise SidlTypeError(f"expected bytes, got {value!r}")
        return bytes(value)

    def default(self) -> Any:
        return b""


class EnumType(SidlType):
    def __init__(self, name: str, labels: Sequence[str]) -> None:
        if not labels:
            raise SidlTypeError(f"enum {name} needs at least one label")
        if len(set(labels)) != len(labels):
            raise SidlTypeError(f"enum {name} has duplicate labels")
        self.name = name
        self.labels = tuple(labels)

    def check(self, value: Any) -> Any:
        if not isinstance(value, str) or value not in self.labels:
            raise SidlTypeError(
                f"{value!r} is not a label of enum {self.name} {self.labels}"
            )
        return value

    def default(self) -> Any:
        return self.labels[0]

    def describe(self) -> str:
        return f"enum {self.name} {{ {', '.join(self.labels)} }}"


class StructType(SidlType):
    """A record type; values are string-keyed dicts.

    ``check`` validates the declared fields and *preserves* unknown keys:
    extended subtype values stay intact while travelling through
    components that only know the base type (§3.1).
    """

    def __init__(self, name: str, fields: Sequence[Tuple[str, SidlType]]) -> None:
        names = [field_name for field_name, __ in fields]
        if len(set(names)) != len(names):
            raise SidlTypeError(f"struct {name} has duplicate fields")
        self.name = name
        self.fields = tuple(fields)
        self._by_name = dict(self.fields)

    def field_type(self, field_name: str) -> Optional[SidlType]:
        return self._by_name.get(field_name)

    def check(self, value: Any) -> Any:
        if not isinstance(value, dict):
            raise SidlTypeError(f"expected struct {self.name} dict, got {value!r}")
        checked: Dict[str, Any] = {}
        for field_name, field_type in self.fields:
            if field_name not in value:
                raise SidlTypeError(
                    f"struct {self.name} missing field {field_name!r}"
                )
            try:
                checked[field_name] = field_type.check(value[field_name])
            except SidlTypeError as exc:
                raise SidlTypeError(f"{self.name}.{field_name}: {exc}") from exc
        for key, extra in value.items():
            if key not in checked:
                checked[key] = extra
        return checked

    def default(self) -> Any:
        return {field_name: field_type.default() for field_name, field_type in self.fields}

    def describe(self) -> str:
        inner = "; ".join(f"{t.name} {n}" for n, t in self.fields)
        return f"struct {self.name} {{ {inner} }}"


class SequenceType(SidlType):
    def __init__(self, element: SidlType, bound: Optional[int] = None) -> None:
        self.element = element
        self.bound = bound
        suffix = f", {bound}" if bound else ""
        self.name = f"sequence<{element.name}{suffix}>"

    def check(self, value: Any) -> Any:
        if not isinstance(value, (list, tuple)):
            raise SidlTypeError(f"expected sequence, got {value!r}")
        if self.bound is not None and len(value) > self.bound:
            raise SidlTypeError(
                f"sequence of length {len(value)} exceeds bound {self.bound}"
            )
        return [self.element.check(item) for item in value]

    def default(self) -> Any:
        return []


class UnionType(SidlType):
    """Discriminated union; values are ``{"tag": label, "value": x}``."""

    def __init__(
        self,
        name: str,
        discriminator: EnumType,
        cases: Sequence[Tuple[Optional[str], str, SidlType]],
    ) -> None:
        self.name = name
        self.discriminator = discriminator
        self.cases = tuple(cases)
        self._arms: Dict[Optional[str], Tuple[str, SidlType]] = {}
        for label, arm_name, arm_type in cases:
            if label in self._arms:
                raise SidlTypeError(f"union {name}: duplicate case {label!r}")
            if label is not None:
                discriminator.check(label)
            self._arms[label] = (arm_name, arm_type)

    def arm_for(self, label: str) -> Tuple[str, SidlType]:
        if label in self._arms:
            return self._arms[label]
        if None in self._arms:  # default arm
            return self._arms[None]
        raise SidlTypeError(f"union {self.name} has no arm for {label!r}")

    def check(self, value: Any) -> Any:
        if not isinstance(value, dict) or "tag" not in value:
            raise SidlTypeError(
                f"expected union {self.name} value {{'tag','value'}}, got {value!r}"
            )
        label = self.discriminator.check(value["tag"])
        __, arm_type = self.arm_for(label)
        return {"tag": label, "value": arm_type.check(value.get("value"))}

    def default(self) -> Any:
        label = self.discriminator.default()
        __, arm_type = self.arm_for(label)
        return {"tag": label, "value": arm_type.default()}


class AnyType(SidlType):
    """Accepts any marshallable value (CORBA ``any``)."""

    name = "any"

    def check(self, value: Any) -> Any:
        return value

    def default(self) -> Any:
        return None


class ServiceReferenceType(SidlType):
    """The paper's SERVICEREFERENCE base type (§3.2).

    Values are first-class and transferable: either a live object with a
    ``to_wire()`` method (:class:`repro.naming.refs.ServiceRef`) or its
    wire-dict form carrying the ``__cosm__`` marker.
    """

    name = "service_reference"

    def check(self, value: Any) -> Any:
        if hasattr(value, "to_wire") and callable(value.to_wire):
            return value.to_wire()
        if isinstance(value, dict) and value.get(_MARKER_KEY) == SERVICE_REF_WIRE_MARKER:
            return value
        raise SidlTypeError(f"expected a service reference, got {value!r}")

    def default(self) -> Any:
        return None


class SidValueType(SidlType):
    """SIDs themselves as communicable values (§3.1)."""

    name = "sid"

    def check(self, value: Any) -> Any:
        if hasattr(value, "to_wire") and callable(value.to_wire):
            return value.to_wire()
        if isinstance(value, dict) and value.get(_MARKER_KEY) == SID_WIRE_MARKER:
            return value
        raise SidlTypeError(f"expected a SID, got {value!r}")

    def default(self) -> Any:
        return None


class OperationType:
    """Signature of one service operation."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, str, SidlType]],
        result: SidlType,
        oneway: bool = False,
    ) -> None:
        self.name = name
        self.params = tuple(params)  # (param name, direction, type)
        self.result = result
        self.oneway = oneway

    def in_params(self) -> List[Tuple[str, SidlType]]:
        return [(n, t) for n, d, t in self.params if d in ("in", "inout")]

    def out_params(self) -> List[Tuple[str, SidlType]]:
        return [(n, t) for n, d, t in self.params if d in ("out", "inout")]

    def check_arguments(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        """Validate a name->value argument dict against the in-params."""
        if not isinstance(arguments, dict):
            raise SidlTypeError(
                f"{self.name}: arguments must be a dict, got {arguments!r}"
            )
        checked: Dict[str, Any] = {}
        for param_name, param_type in self.in_params():
            if param_name not in arguments:
                raise SidlTypeError(f"{self.name}: missing argument {param_name!r}")
            try:
                checked[param_name] = param_type.check(arguments[param_name])
            except SidlTypeError as exc:
                raise SidlTypeError(f"{self.name}({param_name}): {exc}") from exc
        unknown = set(arguments) - {n for n, __ in self.in_params()}
        if unknown:
            raise SidlTypeError(
                f"{self.name}: unknown argument(s) {sorted(unknown)}"
            )
        return checked

    def describe(self) -> str:
        params = ", ".join(f"{d} {t.name} {n}" for n, d, t in self.params)
        prefix = "oneway " if self.oneway else ""
        return f"{prefix}{self.result.name} {self.name}({params})"


class InterfaceType:
    """The operational signature of a service."""

    def __init__(self, name: str, operations: Sequence[OperationType]) -> None:
        self.name = name
        self.operations: Dict[str, OperationType] = {}
        for operation in operations:
            if operation.name in self.operations:
                raise SidlTypeError(
                    f"interface {name}: duplicate operation {operation.name}"
                )
            self.operations[operation.name] = operation

    def operation(self, name: str) -> OperationType:
        if name not in self.operations:
            raise SidlTypeError(f"interface {self.name} has no operation {name!r}")
        return self.operations[name]

    def operation_names(self) -> List[str]:
        return list(self.operations)

    def describe(self) -> str:
        ops = "; ".join(op.describe() for op in self.operations.values())
        return f"interface {self.name} {{ {ops} }}"


# Primitive singletons
VOID = VoidType()
BOOLEAN = BooleanType()
OCTET = IntegerType("octet", 8, signed=False)
SHORT = IntegerType("short", 16)
LONG = IntegerType("long", 32)
LONG_LONG = IntegerType("long long", 64)
FLOAT = FloatType("float")
DOUBLE = FloatType("double")
STRING = StringType()
OCTETS = OctetsType()
ANY = AnyType()
SERVICE_REFERENCE = ServiceReferenceType()
SID_VALUE = SidValueType()

PRIMITIVES: Dict[str, SidlType] = {
    "void": VOID,
    "boolean": BOOLEAN,
    "octet": OCTET,
    "short": SHORT,
    "long": LONG,
    "long long": LONG_LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "string": STRING,
    "octets": OCTETS,
    "any": ANY,
    "service_reference": SERVICE_REFERENCE,
    "sid": SID_VALUE,
}
