"""AST node classes produced by the SIDL parser.

Type *references* in the AST are textual (:class:`TypeRef`); resolution to
:mod:`repro.sidl.types` objects happens in the builder so that parsing
never needs a symbol table and unknown modules can be skipped cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


@dataclass(frozen=True)
class TypeRef:
    """A syntactic reference to a type.

    ``name`` is a primitive keyword ("long", "string", ...), a declared
    type name, or the pseudo-names "sequence" (with ``element`` set),
    "service_reference", "sid", and "any".
    """

    name: str
    element: Optional["TypeRef"] = None  # for sequence<element>
    bound: Optional[int] = None  # for bounded sequences/strings

    def __str__(self) -> str:
        if self.name == "sequence" and self.element is not None:
            if self.bound is not None:
                return f"sequence<{self.element}, {self.bound}>"
            return f"sequence<{self.element}>"
        if self.name == "string" and self.bound is not None:
            return f"string<{self.bound}>"
        return self.name


@dataclass
class ParamDecl:
    """One operation parameter: direction is in/out/inout."""

    direction: str
    type_ref: TypeRef
    name: str


@dataclass
class OperationDecl:
    """``ResultType Name(params)`` inside an interface."""

    name: str
    result: TypeRef
    params: List[ParamDecl] = field(default_factory=list)
    oneway: bool = False


@dataclass
class AttributeDecl:
    """``(readonly)? attribute <type> <name>;`` inside an interface."""

    name: str
    type_ref: TypeRef
    readonly: bool = False


@dataclass
class InterfaceDecl:
    name: str
    operations: List[OperationDecl] = field(default_factory=list)
    attributes: List[AttributeDecl] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)


@dataclass
class EnumDecl:
    name: str
    labels: List[str] = field(default_factory=list)


@dataclass
class StructDecl:
    name: str
    fields: List[Tuple[str, TypeRef]] = field(default_factory=list)


@dataclass
class UnionDecl:
    """``union Name switch (discriminator) { case label: type name; ... }``"""

    name: str
    discriminator: TypeRef = None
    cases: List[Tuple[Any, str, TypeRef]] = field(default_factory=list)
    # cases: (case label value, arm name, arm type); label None = default


@dataclass
class TypedefDecl:
    """``typedef <type> <name>;`` — also accepts the paper's reversed order."""

    name: str
    type_ref: TypeRef = None
    inline: Any = None  # EnumDecl/StructDecl/UnionDecl defined in the typedef


@dataclass
class ConstDecl:
    name: str
    type_ref: TypeRef
    value: Any


@dataclass
class FsmTransitionDecl:
    source: str
    operation: str
    target: str


@dataclass
class FsmDecl:
    """Parsed COSM_FSM module body."""

    states: List[str] = field(default_factory=list)
    initial: Optional[str] = None
    transitions: List[FsmTransitionDecl] = field(default_factory=list)


@dataclass
class AnnotationDecl:
    """``annotation <subject> "text";`` — natural-language SID element."""

    subject: str
    text: str


@dataclass
class SkippedDecl:
    """A declaration the parser did not understand and skipped (lenient mode).

    Carries the raw source slice so the SID can be re-transmitted without
    losing extensions meant for more capable components (§4.1).
    """

    raw_text: str
    line: int


@dataclass
class ModuleDecl:
    """A module: the unit of SID structure and of COSM embeddings."""

    name: str
    body: List[Any] = field(default_factory=list)

    def submodules(self) -> List["ModuleDecl"]:
        return [decl for decl in self.body if isinstance(decl, ModuleDecl)]

    def find_module(self, name: str) -> Optional["ModuleDecl"]:
        for decl in self.submodules():
            if decl.name == name:
                return decl
        return None

    def declarations(self, kind) -> List[Any]:
        return [decl for decl in self.body if isinstance(decl, kind)]


Declaration = Union[
    ModuleDecl,
    InterfaceDecl,
    EnumDecl,
    StructDecl,
    UnionDecl,
    TypedefDecl,
    ConstDecl,
    FsmDecl,
    AnnotationDecl,
    SkippedDecl,
]
