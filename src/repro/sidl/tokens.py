"""Token definitions for the SIDL lexer."""

from __future__ import annotations

from typing import NamedTuple

# Token kinds
IDENT = "IDENT"
KEYWORD = "KEYWORD"
INT = "INT"
FLOAT = "FLOAT"
STRING = "STRING"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        # CORBA IDL core
        "module",
        "interface",
        "typedef",
        "struct",
        "union",
        "switch",
        "case",
        "default",
        "enum",
        "sequence",
        "const",
        "void",
        "boolean",
        "octet",
        "short",
        "long",
        "float",
        "double",
        "string",
        "in",
        "out",
        "inout",
        "oneway",
        "readonly",
        "attribute",
        "TRUE",
        "FALSE",
        # COSM/SIDL extensions
        "state",
        "initial",
        "transition",
        "on",
        "annotation",
        "service_reference",
        "sid",
        "any",
    }
)

PUNCTUATION = (
    "::",
    "->",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "<",
    ">",
    ";",
    ",",
    ":",
    "=",
    "*",
)


class Token(NamedTuple):
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def is_punct(self, value: str) -> bool:
        return self.kind == PUNCT and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind == KEYWORD and self.value == value

    def describe(self) -> str:
        if self.kind == EOF:
            return "end of input"
        return f"{self.kind.lower()} {self.value!r}"
