"""Structural subtyping for SIDL types (§3.1).

The paper grounds SID extensibility in record-calculus subtyping (Quest,
Tycoon TL): a subtype record contains *at least* the elements of its base
and remains usable wherever the base is expected.  This module implements
the relation for every SIDL type constructor:

* records (structs): width + depth subtyping, covariant fields,
* enums/unions: treated as variants — a subtype has a *subset* of labels
  (its values are always understood by base-type consumers),
* sequences: covariant elements, bounds may only tighten,
* integers/floats: safe widening (``short <: long <: long long``,
  ``float <: double``, integers widen into floats),
* operations: contravariant in-parameters (matched by name), covariant
  results,
* interfaces: width subtyping over operations.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.sidl.types import (
    AnyType,
    BooleanType,
    EnumType,
    FloatType,
    IntegerType,
    InterfaceType,
    OctetsType,
    OperationType,
    SequenceType,
    ServiceReferenceType,
    SidValueType,
    SidlType,
    StringType,
    StructType,
    UnionType,
    VoidType,
)

_Pair = Tuple[int, int]


def is_subtype(sub: SidlType, sup: SidlType) -> bool:
    """True when every value of ``sub`` is a valid value of ``sup``."""
    return _is_subtype(sub, sup, set())


def _is_subtype(sub: SidlType, sup: SidlType, seen: Set[_Pair]) -> bool:
    if sub is sup:
        return True
    pair = (id(sub), id(sup))
    if pair in seen:
        return True  # coinductive: assume holds inside the cycle
    seen.add(pair)

    if isinstance(sup, AnyType):
        return True
    if isinstance(sub, AnyType):
        return False

    if isinstance(sub, VoidType):
        return isinstance(sup, VoidType)
    if isinstance(sub, BooleanType):
        return isinstance(sup, BooleanType)

    if isinstance(sub, IntegerType):
        if isinstance(sup, IntegerType):
            return sup.minimum <= sub.minimum and sub.maximum <= sup.maximum
        return isinstance(sup, FloatType)
    if isinstance(sub, FloatType):
        if not isinstance(sup, FloatType):
            return False
        return not (sub.name == "double" and sup.name == "float")

    if isinstance(sub, StringType):
        if not isinstance(sup, StringType):
            return False
        if sup.bound is None:
            return True
        return sub.bound is not None and sub.bound <= sup.bound

    if isinstance(sub, OctetsType):
        return isinstance(sup, OctetsType)

    if isinstance(sub, EnumType):
        if not isinstance(sup, EnumType):
            return False
        return set(sub.labels) <= set(sup.labels)

    if isinstance(sub, StructType):
        if not isinstance(sup, StructType):
            return False
        for field_name, sup_field in sup.fields:
            sub_field = sub.field_type(field_name)
            if sub_field is None or not _is_subtype(sub_field, sup_field, seen):
                return False
        return True

    if isinstance(sub, SequenceType):
        if not isinstance(sup, SequenceType):
            return False
        if not _is_subtype(sub.element, sup.element, seen):
            return False
        if sup.bound is None:
            return True
        return sub.bound is not None and sub.bound <= sup.bound

    if isinstance(sub, UnionType):
        if not isinstance(sup, UnionType):
            return False
        if not _is_subtype(sub.discriminator, sup.discriminator, seen):
            return False
        for label, __, arm_type in sub.cases:
            try:
                __, sup_arm = sup.arm_for(label) if label is not None else sup._arms[None]
            except Exception:  # noqa: BLE001 - missing arm means not a subtype
                return False
            if not _is_subtype(arm_type, sup_arm, seen):
                return False
        return True

    if isinstance(sub, ServiceReferenceType):
        return isinstance(sup, ServiceReferenceType)
    if isinstance(sub, SidValueType):
        return isinstance(sup, SidValueType)

    return False


def operation_conforms(sub: OperationType, sup: OperationType) -> bool:
    """True when ``sub`` can serve every call valid for ``sup``.

    In-parameters are matched by name and are contravariant; the result is
    covariant.  ``sub`` may not *require* parameters that ``sup`` does not
    declare (a base-type caller would never supply them).
    """
    if sub.oneway != sup.oneway:
        return False
    sup_params = dict(sup.in_params())
    sub_params = dict(sub.in_params())
    for name, sub_type in sub_params.items():
        if name not in sup_params:
            return False
        if not is_subtype(sup_params[name], sub_type):
            return False
    if set(sup_params) != set(sub_params):
        return False
    return is_subtype(sub.result, sup.result)


def interface_conforms(sub: InterfaceType, sup: InterfaceType) -> bool:
    """Width subtyping over operations: ``sub`` offers at least ``sup``'s."""
    for name, sup_operation in sup.operations.items():
        sub_operation = sub.operations.get(name)
        if sub_operation is None:
            return False
        if not operation_conforms(sub_operation, sup_operation):
            return False
    return True


def conforms(sub, sup) -> bool:
    """Dispatching front door: types, operations, or interfaces."""
    if isinstance(sub, InterfaceType) and isinstance(sup, InterfaceType):
        return interface_conforms(sub, sup)
    if isinstance(sub, OperationType) and isinstance(sup, OperationType):
        return operation_conforms(sub, sup)
    if isinstance(sub, SidlType) and isinstance(sup, SidlType):
        return is_subtype(sub, sup)
    raise TypeError(f"cannot compare {type(sub).__name__} with {type(sup).__name__}")
