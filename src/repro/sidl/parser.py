"""Recursive-descent parser for SIDL.

Accepts standard CORBA-IDL declaration order *and* the paper's variants
(``typedef CarModel_t enum {...};``, bracketed parameter directions
``([in] SelectCar_t selection)``, identifiers such as ``FIAT-Uno``).

**Lenient mode** (default) implements §4.1's forward-compatibility rule:
a declaration the parser cannot understand is *skipped* up to its
terminating ``;`` (brace-balanced) and preserved as a
:class:`~repro.sidl.ast_nodes.SkippedDecl`, so older components keep
working when SIDs grow new descriptional elements.  ``lenient=False``
turns every unknown construct into a :class:`SidlParseError` (the ablation
baseline).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sidl.ast_nodes import (
    AnnotationDecl,
    AttributeDecl,
    ConstDecl,
    EnumDecl,
    FsmDecl,
    FsmTransitionDecl,
    InterfaceDecl,
    ModuleDecl,
    OperationDecl,
    ParamDecl,
    SkippedDecl,
    StructDecl,
    TypeRef,
    TypedefDecl,
    UnionDecl,
)
from repro.sidl.errors import SidlParseError
from repro.sidl.lexer import tokenize
from repro.sidl.tokens import EOF, FLOAT, IDENT, INT, KEYWORD, STRING, Token

_PRIMITIVE_TYPE_KEYWORDS = frozenset(
    {"void", "boolean", "octet", "short", "long", "float", "double", "string", "any"}
)
_CONSTRUCTOR_KEYWORDS = frozenset({"enum", "struct", "union"})
_TYPE_START_KEYWORDS = _PRIMITIVE_TYPE_KEYWORDS | frozenset(
    {"sequence", "service_reference", "sid"}
)


def parse(source: str, lenient: bool = True) -> List[Any]:
    """Parse SIDL source into a list of top-level declarations."""
    return _Parser(tokenize(source), source, lenient).parse_file()


class _Parser:
    def __init__(self, tokens: List[Token], source: str, lenient: bool) -> None:
        self._tokens = tokens
        self._source = source
        self._lenient = lenient
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> SidlParseError:
        token = token or self._peek()
        return SidlParseError(f"{message}, found {token.describe()}", token.line, token.column)

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if not token.is_punct(value):
            raise self._error(f"expected {value!r}")
        return self._next()

    def _expect_keyword(self, value: str) -> Token:
        token = self._peek()
        if not token.is_keyword(value):
            raise self._error(f"expected keyword {value!r}")
        return self._next()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != IDENT:
            raise self._error("expected identifier")
        return self._next().value

    def _accept_punct(self, value: str) -> bool:
        if self._peek().is_punct(value):
            self._next()
            return True
        return False

    def _accept_keyword(self, value: str) -> bool:
        if self._peek().is_keyword(value):
            self._next()
            return True
        return False

    # -- entry points --------------------------------------------------------

    def parse_file(self) -> List[Any]:
        declarations: List[Any] = []
        while self._peek().kind != EOF:
            declarations.append(self._parse_declaration())
        return declarations

    # -- declarations ----------------------------------------------------

    def _parse_declaration(self) -> Any:
        start = self._pos
        try:
            return self._parse_declaration_strict()
        except SidlParseError:
            if not self._lenient:
                raise
            return self._skip_declaration(start)

    def _parse_declaration_strict(self) -> Any:
        token = self._peek()
        if token.is_keyword("module"):
            return self._parse_module()
        if token.is_keyword("interface"):
            return self._parse_interface()
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_keyword("enum"):
            return self._parse_enum()
        if token.is_keyword("struct"):
            return self._parse_struct()
        if token.is_keyword("union"):
            return self._parse_union()
        if token.is_keyword("const"):
            return self._parse_const()
        if token.is_keyword("state"):
            return self._parse_fsm_states()
        if token.is_keyword("initial"):
            return self._parse_fsm_initial()
        if token.is_keyword("transition"):
            return self._parse_fsm_transition()
        if token.is_keyword("annotation"):
            return self._parse_annotation()
        raise self._error("expected a declaration")

    def _skip_declaration(self, start: int) -> SkippedDecl:
        """Skip a brace-balanced declaration through its ';' (§4.1)."""
        self._pos = start
        first = self._peek()
        depth = 0
        pieces: List[str] = []
        while True:
            token = self._next()
            if token.kind == EOF:
                break
            pieces.append(_token_text(token))
            if token.is_punct("{") or token.is_punct("(") or token.is_punct("["):
                depth += 1
            elif token.is_punct("}") or token.is_punct(")") or token.is_punct("]"):
                depth -= 1
            if token.is_punct(";") and depth <= 0:
                break
        return SkippedDecl(raw_text=" ".join(pieces), line=first.line)

    def _parse_module(self) -> ModuleDecl:
        self._expect_keyword("module")
        name = self._expect_ident()
        self._expect_punct("{")
        body: List[Any] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated module body")
            body.append(self._parse_declaration())
        self._expect_punct("}")
        self._accept_punct(";")
        return ModuleDecl(name=name, body=_fold_fsm(body))

    def _parse_interface(self) -> InterfaceDecl:
        self._expect_keyword("interface")
        name = self._expect_ident()
        bases: List[str] = []
        if self._accept_punct(":"):
            bases.append(self._parse_scoped_name())
            while self._accept_punct(","):
                bases.append(self._parse_scoped_name())
        self._expect_punct("{")
        interface = InterfaceDecl(name=name, bases=bases)
        while not self._peek().is_punct("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated interface body")
            readonly = self._accept_keyword("readonly")
            if readonly or self._peek().is_keyword("attribute"):
                self._expect_keyword("attribute")
                type_ref = self._parse_type_ref()
                attr_name = self._expect_ident()
                self._expect_punct(";")
                interface.attributes.append(AttributeDecl(attr_name, type_ref, readonly))
                continue
            interface.operations.append(self._parse_operation())
        self._expect_punct("}")
        self._accept_punct(";")
        return interface

    def _parse_operation(self) -> OperationDecl:
        oneway = self._accept_keyword("oneway")
        result = self._parse_type_ref()
        name = self._expect_ident()
        self._expect_punct("(")
        params: List[ParamDecl] = []
        if not self._peek().is_punct(")"):
            params.append(self._parse_param())
            while self._accept_punct(","):
                params.append(self._parse_param())
        self._expect_punct(")")
        self._expect_punct(";")
        return OperationDecl(name=name, result=result, params=params, oneway=oneway)

    def _parse_param(self) -> ParamDecl:
        direction = "in"
        if self._accept_punct("["):  # the paper writes [in]
            direction = self._parse_direction()
            self._expect_punct("]")
        elif self._peek().value in ("in", "out", "inout") and self._peek().kind == KEYWORD:
            direction = self._next().value
        type_ref = self._parse_type_ref()
        name = ""
        if self._peek().kind == IDENT:
            name = self._next().value
        return ParamDecl(direction=direction, type_ref=type_ref, name=name)

    def _parse_direction(self) -> str:
        token = self._peek()
        if token.value in ("in", "out", "inout"):
            self._next()
            return token.value
        raise self._error("expected parameter direction in/out/inout")

    def _parse_typedef(self) -> TypedefDecl:
        self._expect_keyword("typedef")
        token = self._peek()
        # Paper order: ``typedef CarModel_t enum { ... };``
        if token.kind == IDENT and self._peek(1).value in _CONSTRUCTOR_KEYWORDS:
            name = self._expect_ident()
            inline = self._parse_anonymous_constructor(name)
            self._expect_punct(";")
            return TypedefDecl(name=name, inline=inline)
        # Paper order with a non-constructed type:
        # ``typedef EntryList_t sequence<BrowserEntry_t>;``
        if (
            token.kind == IDENT
            and self._peek(1).kind == KEYWORD
            and self._peek(1).value in _TYPE_START_KEYWORDS
        ):
            name = self._expect_ident()
            type_ref = self._parse_type_ref()
            self._expect_punct(";")
            return TypedefDecl(name=name, type_ref=type_ref)
        # Standard order with an inline constructor: ``typedef enum {...} Name;``
        if token.value in _CONSTRUCTOR_KEYWORDS and (
            self._peek(1).is_punct("{") or self._peek(2).is_punct("{")
            or self._peek(1).is_keyword("switch")
        ):
            inline = self._parse_constructor_possibly_named()
            name = self._expect_ident()
            self._expect_punct(";")
            _rename_inline(inline, name)
            return TypedefDecl(name=name, inline=inline)
        # Standard alias: ``typedef <type> <name>;``
        type_ref = self._parse_type_ref()
        name = self._expect_ident()
        self._expect_punct(";")
        return TypedefDecl(name=name, type_ref=type_ref)

    def _parse_anonymous_constructor(self, name: str) -> Any:
        """Constructor body where the name came first (paper order)."""
        token = self._peek()
        if token.is_keyword("enum"):
            self._next()
            return EnumDecl(name=name, labels=self._parse_enum_body())
        if token.is_keyword("struct"):
            self._next()
            return StructDecl(name=name, fields=self._parse_struct_body())
        if token.is_keyword("union"):
            self._next()
            return self._parse_union_body(name)
        raise self._error("expected enum/struct/union")

    def _parse_constructor_possibly_named(self) -> Any:
        token = self._peek()
        if token.is_keyword("enum"):
            self._next()
            name = self._expect_ident() if self._peek().kind == IDENT else ""
            return EnumDecl(name=name, labels=self._parse_enum_body())
        if token.is_keyword("struct"):
            self._next()
            name = self._expect_ident() if self._peek().kind == IDENT else ""
            return StructDecl(name=name, fields=self._parse_struct_body())
        if token.is_keyword("union"):
            self._next()
            name = self._expect_ident() if self._peek().kind == IDENT else ""
            return self._parse_union_body(name)
        raise self._error("expected enum/struct/union")

    def _parse_enum(self) -> EnumDecl:
        self._expect_keyword("enum")
        name = self._expect_ident()
        labels = self._parse_enum_body()
        self._expect_punct(";")
        return EnumDecl(name=name, labels=labels)

    def _parse_enum_body(self) -> List[str]:
        self._expect_punct("{")
        labels: List[str] = []
        if not self._peek().is_punct("}"):
            labels.append(self._expect_ident())
            while self._accept_punct(","):
                if self._peek().is_punct("}"):
                    break  # tolerate trailing comma
                labels.append(self._expect_ident())
        self._expect_punct("}")
        return labels

    def _parse_struct(self) -> StructDecl:
        self._expect_keyword("struct")
        name = self._expect_ident()
        fields = self._parse_struct_body()
        self._expect_punct(";")
        return StructDecl(name=name, fields=fields)

    def _parse_struct_body(self) -> List:
        self._expect_punct("{")
        fields = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated struct body")
            # The paper writes ``enum CarModel;`` for a field of the
            # previously declared enum: field name doubles as type name.
            if (
                self._peek().value in _CONSTRUCTOR_KEYWORDS
                and self._peek(1).kind == IDENT
                and self._peek(2).is_punct(";")
            ):
                self._next()
                field_name = self._expect_ident()
                self._expect_punct(";")
                fields.append((field_name, TypeRef(field_name)))
                continue
            type_ref = self._parse_type_ref()
            field_name = self._expect_ident()
            fields.append((field_name, type_ref))
            while self._accept_punct(","):
                fields.append((self._expect_ident(), type_ref))
            self._expect_punct(";")
        self._expect_punct("}")
        return fields

    def _parse_union(self) -> UnionDecl:
        self._expect_keyword("union")
        name = self._expect_ident()
        decl = self._parse_union_body(name)
        self._expect_punct(";")
        return decl

    def _parse_union_body(self, name: str) -> UnionDecl:
        self._expect_keyword("switch")
        self._expect_punct("(")
        discriminator = self._parse_type_ref()
        self._expect_punct(")")
        self._expect_punct("{")
        cases = []
        while not self._peek().is_punct("}"):
            if self._accept_keyword("default"):
                label = None
            else:
                self._expect_keyword("case")
                label = self._parse_literal()
            self._expect_punct(":")
            arm_type = self._parse_type_ref()
            arm_name = self._expect_ident()
            self._expect_punct(";")
            cases.append((label, arm_name, arm_type))
        self._expect_punct("}")
        return UnionDecl(name=name, discriminator=discriminator, cases=cases)

    def _parse_const(self) -> ConstDecl:
        self._expect_keyword("const")
        type_ref = self._parse_type_ref()
        name = self._expect_ident()
        self._expect_punct("=")
        value = self._parse_literal()
        self._expect_punct(";")
        return ConstDecl(name=name, type_ref=type_ref, value=value)

    # -- FSM & annotations (COSM extensions) -------------------------------

    def _parse_fsm_states(self) -> FsmDecl:
        self._expect_keyword("state")
        states = [self._expect_ident()]
        while self._accept_punct(","):
            states.append(self._expect_ident())
        self._expect_punct(";")
        return FsmDecl(states=states)

    def _parse_fsm_initial(self) -> FsmDecl:
        self._expect_keyword("initial")
        initial = self._expect_ident()
        self._expect_punct(";")
        return FsmDecl(initial=initial)

    def _parse_fsm_transition(self) -> FsmDecl:
        self._expect_keyword("transition")
        # Tuple form mirroring the paper: transition (INIT, SelectCar, SELECTED);
        if self._accept_punct("("):
            source = self._expect_ident()
            self._expect_punct(",")
            operation = self._expect_ident()
            self._expect_punct(",")
            target = self._expect_ident()
            self._expect_punct(")")
            self._expect_punct(";")
            return FsmDecl(
                transitions=[FsmTransitionDecl(source, operation, target)]
            )
        # Arrow form: transition INIT -> SELECTED on SelectCar;
        source = self._expect_ident()
        self._expect_punct("->")
        target = self._expect_ident()
        self._expect_keyword("on")
        operation = self._expect_ident()
        self._expect_punct(";")
        return FsmDecl(transitions=[FsmTransitionDecl(source, operation, target)])

    def _parse_annotation(self) -> AnnotationDecl:
        self._expect_keyword("annotation")
        subject = self._parse_scoped_name()
        token = self._peek()
        if token.kind != STRING:
            raise self._error("expected annotation text string")
        self._next()
        self._expect_punct(";")
        return AnnotationDecl(subject=subject, text=token.value)

    # -- types & literals --------------------------------------------------

    def _parse_type_ref(self) -> TypeRef:
        token = self._peek()
        if token.is_keyword("sequence"):
            self._next()
            self._expect_punct("<")
            element = self._parse_type_ref()
            bound = None
            if self._accept_punct(","):
                bound_token = self._peek()
                if bound_token.kind != INT:
                    raise self._error("expected sequence bound")
                self._next()
                bound = int(bound_token.value)
            self._expect_punct(">")
            return TypeRef("sequence", element=element, bound=bound)
        if token.is_keyword("string"):
            self._next()
            bound = None
            if self._accept_punct("<"):
                bound_token = self._peek()
                if bound_token.kind != INT:
                    raise self._error("expected string bound")
                self._next()
                bound = int(bound_token.value)
                self._expect_punct(">")
            return TypeRef("string", bound=bound)
        if token.is_keyword("long"):
            self._next()
            if self._peek().is_keyword("long"):
                self._next()
                return TypeRef("long long")
            return TypeRef("long")
        if token.kind == KEYWORD and token.value in _PRIMITIVE_TYPE_KEYWORDS:
            self._next()
            return TypeRef(token.value)
        if token.is_keyword("service_reference") or token.is_keyword("sid"):
            self._next()
            return TypeRef(token.value)
        if token.kind == IDENT:
            return TypeRef(self._parse_scoped_name())
        raise self._error("expected a type")

    def _parse_scoped_name(self) -> str:
        parts = [self._expect_ident()]
        while self._peek().is_punct("::"):
            self._next()
            parts.append(self._expect_ident())
        return "::".join(parts)

    def _parse_literal(self) -> Any:
        token = self._peek()
        if token.kind == INT:
            self._next()
            return int(token.value)
        if token.kind == FLOAT:
            self._next()
            return float(token.value)
        if token.kind == STRING:
            self._next()
            return token.value
        if token.is_keyword("TRUE"):
            self._next()
            return True
        if token.is_keyword("FALSE"):
            self._next()
            return False
        if token.kind == IDENT:
            # enum label reference, e.g. ``FIAT-Uno`` or ``USD``
            self._next()
            return token.value
        raise self._error("expected a literal value")


def _token_text(token: Token) -> str:
    if token.kind == STRING:
        escaped = token.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return token.value


def _fold_fsm(body: List[Any]) -> List[Any]:
    """Merge consecutive partial FsmDecls in a module into one."""
    fsm_parts = [decl for decl in body if isinstance(decl, FsmDecl)]
    if len(fsm_parts) <= 1:
        return body
    merged = FsmDecl()
    for part in fsm_parts:
        merged.states.extend(part.states)
        if part.initial:
            merged.initial = part.initial
        merged.transitions.extend(part.transitions)
    folded: List[Any] = []
    inserted = False
    for decl in body:
        if isinstance(decl, FsmDecl):
            if not inserted:
                folded.append(merged)
                inserted = True
            continue
        folded.append(decl)
    return folded


def _rename_inline(inline: Any, name: str) -> None:
    """Give an anonymous inline constructor the typedef's name."""
    if hasattr(inline, "name") and not inline.name:
        inline.name = name
