"""Interface repository: a store of SIDs, CORBA-IR style.

Backs the "Interface Manager" of the Service Support Level (Fig. 6) and
the browser's registration store.  Repositories are local data structures;
the networked service wrapper lives in :mod:`repro.naming` / the browser.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from repro.errors import LookupFailure
from repro.sidl.sid import ServiceDescription


class InterfaceRepository:
    """Stores service descriptions under stable repository ids."""

    def __init__(self) -> None:
        self._by_id: Dict[str, ServiceDescription] = {}
        self._counter = itertools.count(1)

    def store(self, sid: ServiceDescription, repository_id: Optional[str] = None) -> str:
        """Insert or replace; returns the repository id."""
        if repository_id is None:
            repository_id = f"IR:{sid.name}:{next(self._counter)}"
        self._by_id[repository_id] = sid
        return repository_id

    def fetch(self, repository_id: str) -> ServiceDescription:
        sid = self._by_id.get(repository_id)
        if sid is None:
            raise LookupFailure(f"no SID under repository id {repository_id!r}")
        return sid

    def remove(self, repository_id: str) -> bool:
        return self._by_id.pop(repository_id, None) is not None

    def ids(self) -> List[str]:
        return sorted(self._by_id)

    def find_by_name(self, name: str) -> List[ServiceDescription]:
        return [sid for sid in self._by_id.values() if sid.name == name]

    def find_conforming(self, base: ServiceDescription) -> List[ServiceDescription]:
        """All stored SIDs usable wherever ``base`` is expected (§3.1)."""
        return [sid for sid in self._by_id.values() if sid.conforms_to(base)]

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterable[ServiceDescription]:
        return iter(list(self._by_id.values()))
