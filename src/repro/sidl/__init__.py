"""SIDL — the Service Interface Description Language.

The paper's uniform description technique (§3.1, §4.1): a CORBA-IDL-
conformant concrete syntax in which COSM-specific descriptional elements
(FSM protocol restrictions, trader-export attributes, user annotations,
UI hints) are embedded as specially named modules.  Components that do not
understand an embedded module *skip* it, which is what makes SIDs
forward-compatible and extensible (Fig. 2).

Public entry points:

* :func:`parse` — SIDL source text → AST,
* :func:`build_service_description` / :func:`load_service_description` —
  AST/source → :class:`ServiceDescription` (a SID: a first-class,
  communicable value),
* :mod:`repro.sidl.types` — the structural type system with record
  subtyping (Quest/TL style, per the paper's §3.1),
* :mod:`repro.sidl.fsm` — finite-state-machine protocol specifications,
* :class:`InterfaceRepository` — a store of SIDs, CORBA-IR style.
"""

from repro.sidl.ast_nodes import (
    AnnotationDecl,
    ConstDecl,
    EnumDecl,
    FsmDecl,
    InterfaceDecl,
    ModuleDecl,
    OperationDecl,
    ParamDecl,
    SkippedDecl,
    StructDecl,
    TypedefDecl,
    UnionDecl,
)
from repro.sidl.builder import build_service_description, load_service_description
from repro.sidl.errors import (
    SidlError,
    SidlParseError,
    SidlSemanticError,
    SidlTypeError,
)
from repro.sidl.fsm import FsmSession, FsmSpec, FsmTransition, FsmViolation
from repro.sidl.lexer import tokenize
from repro.sidl.parser import parse
from repro.sidl.printer import print_module
from repro.sidl.repository import InterfaceRepository
from repro.sidl.sid import ServiceDescription
from repro.sidl.subtyping import conforms, is_subtype
from repro.sidl.types import (
    AnyType,
    BOOLEAN,
    DOUBLE,
    EnumType,
    FLOAT,
    InterfaceType,
    LONG,
    OCTETS,
    OperationType,
    STRING,
    SequenceType,
    ServiceReferenceType,
    SidlType,
    StructType,
    UnionType,
    VOID,
)

__all__ = [
    "AnnotationDecl",
    "AnyType",
    "BOOLEAN",
    "ConstDecl",
    "DOUBLE",
    "EnumDecl",
    "EnumType",
    "FLOAT",
    "FsmDecl",
    "FsmSession",
    "FsmSpec",
    "FsmTransition",
    "FsmViolation",
    "InterfaceDecl",
    "InterfaceRepository",
    "InterfaceType",
    "LONG",
    "ModuleDecl",
    "OCTETS",
    "OperationDecl",
    "OperationType",
    "ParamDecl",
    "STRING",
    "SequenceType",
    "ServiceDescription",
    "ServiceReferenceType",
    "SidlError",
    "SidlParseError",
    "SidlSemanticError",
    "SidlType",
    "SidlTypeError",
    "SkippedDecl",
    "StructDecl",
    "StructType",
    "TypedefDecl",
    "UnionDecl",
    "UnionType",
    "VOID",
    "build_service_description",
    "conforms",
    "is_subtype",
    "load_service_description",
    "parse",
    "print_module",
    "tokenize",
]
