"""Builder: SIDL AST → :class:`ServiceDescription`.

This is the layer that implements §4.1's interpretation rule: COSM
embeddings are recognised *by module name* (``COSM_TraderExport``,
``COSM_FSM``, ``COSM_Annotations``, ``COSM_UIHints``); any other embedded
module bears no meaning to this component and is preserved verbatim for
components that do understand it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sidl.ast_nodes import (
    AnnotationDecl,
    AttributeDecl,
    ConstDecl,
    EnumDecl,
    FsmDecl,
    InterfaceDecl,
    ModuleDecl,
    OperationDecl,
    SkippedDecl,
    StructDecl,
    TypeRef,
    TypedefDecl,
    UnionDecl,
)
from repro.sidl.errors import SidlSemanticError
from repro.sidl.fsm import FsmSpec, FsmTransition
from repro.sidl.parser import parse
from repro.sidl.printer import print_module
from repro.sidl.sid import ServiceDescription
from repro.sidl.types import (
    ANY,
    EnumType,
    FloatType,
    IntegerType,
    InterfaceType,
    OperationType,
    PRIMITIVES,
    SequenceType,
    SidlType,
    StringType,
    StructType,
    UnionType,
)

# Module names this builder understands; everything else is an extension.
MODULE_TRADER_EXPORT = "COSM_TraderExport"
MODULE_FSM = "COSM_FSM"
MODULE_ANNOTATIONS = "COSM_Annotations"
MODULE_UI_HINTS = "COSM_UIHints"
INTERFACE_OPERATIONS = "COSM_Operations"

_KNOWN_MODULES = frozenset(
    {MODULE_TRADER_EXPORT, MODULE_FSM, MODULE_ANNOTATIONS, MODULE_UI_HINTS}
)


def load_service_description(
    source: str,
    name: Optional[str] = None,
    lenient: bool = True,
    type_fallback: bool = False,
) -> ServiceDescription:
    """Parse SIDL source and build the SID of one service module.

    ``lenient`` controls parser-level skipping of unknown constructs;
    ``type_fallback`` maps unresolved type names to ``any`` instead of
    raising (useful when mediating descriptions written against types the
    local component does not know).
    """
    declarations = parse(source, lenient=lenient)
    return build_service_description(declarations, name, type_fallback)


def build_service_description(
    declarations: List[Any],
    name: Optional[str] = None,
    type_fallback: bool = False,
) -> ServiceDescription:
    """Build a SID from parsed declarations (module selected by ``name``)."""
    module = _select_module(declarations, name)
    return _Builder(module, type_fallback).build()


def _select_module(declarations: List[Any], name: Optional[str]) -> ModuleDecl:
    modules = [decl for decl in declarations if isinstance(decl, ModuleDecl)]
    if name is not None:
        for module in modules:
            if module.name == name:
                return module
        raise SidlSemanticError(f"no module named {name!r} in source")
    if not modules:
        raise SidlSemanticError("source contains no service module")
    return modules[0]


class _Builder:
    def __init__(self, module: ModuleDecl, type_fallback: bool) -> None:
        self.module = module
        self.type_fallback = type_fallback
        self.scope: Dict[str, SidlType] = {}
        self.interfaces: Dict[str, InterfaceType] = {}
        self.constants: Dict[str, Any] = {}
        self.annotations: Dict[str, str] = {}
        self.ui_hints: Dict[str, Any] = {}
        self.trader_export: Optional[Dict[str, Any]] = None
        self.fsm: Optional[FsmSpec] = None
        self.unknown_modules: List[Tuple[str, str]] = []
        self.diagnostics: List[str] = []

    def build(self) -> ServiceDescription:
        for decl in self.module.body:
            self._process(decl)
        interface = self._primary_interface()
        sid = ServiceDescription(
            name=self.module.name,
            interface=interface,
            types=self.scope,
            constants=self.constants,
            fsm=self.fsm,
            trader_export=self.trader_export,
            annotations=self.annotations,
            ui_hints=self.ui_hints,
            unknown_modules=self.unknown_modules,
        )
        return sid

    # -- declaration processing ---------------------------------------------

    def _process(self, decl: Any) -> None:
        if isinstance(decl, TypedefDecl):
            self._process_typedef(decl)
        elif isinstance(decl, EnumDecl):
            self.scope[decl.name] = EnumType(decl.name, decl.labels)
        elif isinstance(decl, StructDecl):
            self.scope[decl.name] = self._build_struct(decl)
        elif isinstance(decl, UnionDecl):
            self.scope[decl.name] = self._build_union(decl)
        elif isinstance(decl, InterfaceDecl):
            self.interfaces[decl.name] = self._build_interface(decl)
        elif isinstance(decl, ConstDecl):
            self.constants[decl.name] = self._const_value(decl)
        elif isinstance(decl, AnnotationDecl):
            self.annotations[decl.subject] = decl.text
        elif isinstance(decl, FsmDecl):
            self.fsm = self._build_fsm(decl)
        elif isinstance(decl, ModuleDecl):
            self._process_submodule(decl)
        elif isinstance(decl, SkippedDecl):
            self.unknown_modules.append(("skipped", decl.raw_text))
        else:
            raise SidlSemanticError(f"unexpected declaration {decl!r}")

    def _process_typedef(self, decl: TypedefDecl) -> None:
        if decl.inline is not None:
            inline = decl.inline
            if isinstance(inline, EnumDecl):
                built: SidlType = EnumType(decl.name, inline.labels)
            elif isinstance(inline, StructDecl):
                built = self._build_struct(inline, name=decl.name)
            elif isinstance(inline, UnionDecl):
                built = self._build_union(inline, name=decl.name)
            else:
                raise SidlSemanticError(f"bad inline typedef {decl.name}")
            self.scope[decl.name] = built
            return
        resolved = self._resolve(decl.type_ref, context=f"typedef {decl.name}")
        self.scope[decl.name] = resolved

    def _build_struct(self, decl: StructDecl, name: Optional[str] = None) -> StructType:
        fields = [
            (field_name, self._resolve(type_ref, context=f"struct field {field_name}"))
            for field_name, type_ref in decl.fields
        ]
        return StructType(name or decl.name, fields)

    def _build_union(self, decl: UnionDecl, name: Optional[str] = None) -> UnionType:
        discriminator = self._resolve(decl.discriminator, context="union discriminator")
        if not isinstance(discriminator, EnumType):
            raise SidlSemanticError(
                f"union {name or decl.name}: discriminator must be an enum"
            )
        cases = [
            (label, arm_name, self._resolve(arm_type, context=f"union arm {arm_name}"))
            for label, arm_name, arm_type in decl.cases
        ]
        return UnionType(name or decl.name, discriminator, cases)

    def _build_interface(self, decl: InterfaceDecl) -> InterfaceType:
        operations: List[OperationType] = []
        for base_name in decl.bases:
            base = self.interfaces.get(base_name.split("::")[-1])
            if base is None:
                raise SidlSemanticError(
                    f"interface {decl.name}: unknown base {base_name!r}"
                )
            operations.extend(base.operations.values())
        for attribute in decl.attributes:
            operations.extend(self._attribute_operations(attribute))
        for operation in decl.operations:
            operations.append(self._build_operation(operation))
        return InterfaceType(decl.name, operations)

    def _attribute_operations(self, attribute: AttributeDecl) -> List[OperationType]:
        """CORBA maps an attribute to implicit _get/_set operations."""
        attr_type = self._resolve(attribute.type_ref, context=f"attribute {attribute.name}")
        operations = [
            OperationType(f"_get_{attribute.name}", [], attr_type)
        ]
        if not attribute.readonly:
            operations.append(
                OperationType(
                    f"_set_{attribute.name}",
                    [("value", "in", attr_type)],
                    PRIMITIVES["void"],
                )
            )
        return operations

    def _build_operation(self, decl: OperationDecl) -> OperationType:
        params = []
        for index, param in enumerate(decl.params):
            param_type = self._resolve(
                param.type_ref, context=f"{decl.name} parameter {param.name or index}"
            )
            params.append((param.name or f"arg{index}", param.direction, param_type))
        result = self._resolve(decl.result, context=f"{decl.name} result")
        return OperationType(decl.name, params, result, decl.oneway)

    def _const_value(self, decl: ConstDecl) -> Any:
        """Coerce a const to its declared type when that type is known.

        Trader-export attributes in the wild reference types the local
        component may not know (the paper's own listing uses undeclared
        ``ID`` and ``ChargeCurrency_t``); those keep their literal value.
        """
        resolved = self._try_resolve(decl.type_ref)
        value = decl.value
        if resolved is None:
            return value
        if isinstance(resolved, FloatType) and isinstance(value, int):
            return float(value)
        if isinstance(resolved, (EnumType, IntegerType, StringType, FloatType)):
            try:
                return resolved.check(value)
            except Exception:  # noqa: BLE001 - keep raw literal on mismatch
                self.diagnostics.append(
                    f"const {decl.name}: {value!r} does not fit {resolved.name}"
                )
                return value
        return value

    def _build_fsm(self, decl: FsmDecl) -> FsmSpec:
        transitions = [
            FsmTransition(t.source, t.operation, t.target) for t in decl.transitions
        ]
        states = list(decl.states)
        for transition in transitions:
            for state in (transition.source, transition.target):
                if state not in states:
                    states.append(state)
        if not states:
            raise SidlSemanticError("FSM module declares no states")
        initial = decl.initial or states[0]
        return FsmSpec(states, initial, transitions)

    def _process_submodule(self, module: ModuleDecl) -> None:
        if module.name == MODULE_TRADER_EXPORT:
            export: Dict[str, Any] = {}
            for decl in module.body:
                if isinstance(decl, ConstDecl):
                    export[decl.name] = self._const_value(decl)
            self.trader_export = export
            return
        if module.name == MODULE_FSM:
            fsm_decls = module.declarations(FsmDecl)
            if not fsm_decls:
                raise SidlSemanticError("COSM_FSM module contains no FSM statements")
            self.fsm = self._build_fsm(fsm_decls[0])
            return
        if module.name == MODULE_ANNOTATIONS:
            for decl in module.declarations(AnnotationDecl):
                self.annotations[decl.subject] = decl.text
            return
        if module.name == MODULE_UI_HINTS:
            for decl in module.body:
                if isinstance(decl, ConstDecl):
                    self.ui_hints[decl.name] = decl.value
            return
        # Unknown embedding: preserve, do not interpret (§4.1).
        self.unknown_modules.append((module.name, print_module(module)))

    def _primary_interface(self) -> InterfaceType:
        if INTERFACE_OPERATIONS in self.interfaces:
            return self.interfaces[INTERFACE_OPERATIONS]
        if self.interfaces:
            return next(iter(self.interfaces.values()))
        raise SidlSemanticError(
            f"module {self.module.name!r} declares no interface"
        )

    # -- type resolution -----------------------------------------------------

    def _resolve(self, type_ref: TypeRef, context: str) -> SidlType:
        resolved = self._try_resolve(type_ref)
        if resolved is not None:
            return resolved
        if self.type_fallback:
            self.diagnostics.append(
                f"{context}: unknown type {type_ref} mapped to any"
            )
            return ANY
        raise SidlSemanticError(f"{context}: unknown type {type_ref}")

    def _try_resolve(self, type_ref: TypeRef) -> Optional[SidlType]:
        if type_ref.name == "sequence":
            element = self._try_resolve(type_ref.element)
            if element is None:
                return None
            return SequenceType(element, type_ref.bound)
        if type_ref.name == "string":
            return StringType(type_ref.bound) if type_ref.bound else PRIMITIVES["string"]
        if type_ref.name in PRIMITIVES:
            return PRIMITIVES[type_ref.name]
        name = type_ref.name.split("::")[-1]
        if name in self.scope:
            return self.scope[name]
        # The paper writes ``enum CarModel;`` for a field whose type was
        # declared as CarModel_t: retry with the conventional suffix.
        if f"{name}_t" in self.scope:
            return self.scope[f"{name}_t"]
        return None
