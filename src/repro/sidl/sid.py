"""The Service Interface Description — a first-class, communicable value.

A :class:`ServiceDescription` is the paper's SID (§3.1): a *container* of
descriptional elements.  The base elements are the type definitions and
the operational signature; optional extensions add an FSM protocol, trader
export attributes (the ``COSM_TraderExport`` embedding of §4.1), natural
language annotations, and UI hints.  Unknown extension modules are carried
along verbatim so that more capable components downstream can still see
them (Fig. 2's subtype-polymorphic SIDs).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.sidl.codec import (
    interface_from_wire,
    interface_to_wire,
    type_from_wire,
    type_to_wire,
)
from repro.sidl.errors import SidlSemanticError
from repro.sidl.fsm import FsmSession, FsmSpec
from repro.sidl.subtyping import interface_conforms, is_subtype
from repro.sidl.types import InterfaceType, SID_WIRE_MARKER, SidlType

# Canonical element names, as drawn in Fig. 2.
ELEMENT_TYPES = "TypeDefinition"
ELEMENT_OPERATIONS = "OpSignatureDefinition"
ELEMENT_SERVICE_TYPE = "ServiceTypeDefinition"
ELEMENT_FSM = "FSMDefinition"
ELEMENT_ANNOTATIONS = "AnnotationDefinition"
ELEMENT_UI_HINTS = "UIHintDefinition"


class ServiceDescription:
    """A SID: everything a client needs to use a service it never saw."""

    def __init__(
        self,
        name: str,
        interface: InterfaceType,
        types: Optional[Dict[str, SidlType]] = None,
        constants: Optional[Dict[str, Any]] = None,
        fsm: Optional[FsmSpec] = None,
        trader_export: Optional[Dict[str, Any]] = None,
        annotations: Optional[Dict[str, str]] = None,
        ui_hints: Optional[Dict[str, Any]] = None,
        unknown_modules: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        if interface is None:
            raise SidlSemanticError(f"SID {name!r} needs an operational interface")
        self.name = name
        self.interface = interface
        self.types = dict(types or {})
        self.constants = dict(constants or {})
        self.fsm = fsm
        self.trader_export = dict(trader_export) if trader_export else None
        self.annotations = dict(annotations or {})
        self.ui_hints = dict(ui_hints or {})
        self.unknown_modules = list(unknown_modules or [])

    # -- element container view (Fig. 2) -----------------------------------

    def elements(self) -> List[str]:
        """The descriptional elements this SID carries."""
        present = [ELEMENT_TYPES, ELEMENT_OPERATIONS]
        if self.trader_export is not None:
            present.append(ELEMENT_SERVICE_TYPE)
        if self.fsm is not None:
            present.append(ELEMENT_FSM)
        if self.annotations:
            present.append(ELEMENT_ANNOTATIONS)
        if self.ui_hints:
            present.append(ELEMENT_UI_HINTS)
        present.extend(name for name, __ in self.unknown_modules)
        return present

    def conforms_to_base(self) -> bool:
        """Every SID with type + operation elements conforms to SIDBase."""
        return self.interface is not None

    def conforms_to(self, base: "ServiceDescription") -> bool:
        """Structural SID conformance: self is usable wherever ``base`` is.

        Requires (1) the operational interface to conform, (2) every named
        type of the base to exist here as a structural subtype, and
        (3) every optional element present in the base to be present here
        (FSMs must agree exactly; export attributes may only grow).
        """
        if not interface_conforms(self.interface, base.interface):
            return False
        for type_name, base_type in base.types.items():
            own = self.types.get(type_name)
            if own is None or not is_subtype(own, base_type):
                return False
        if base.fsm is not None:
            if self.fsm is None or self.fsm != base.fsm:
                return False
        if base.trader_export is not None:
            if self.trader_export is None:
                return False
            for key, value in base.trader_export.items():
                if self.trader_export.get(key) != value:
                    return False
        return True

    # -- convenience --------------------------------------------------------

    @property
    def service_type_name(self) -> Optional[str]:
        """The trader service type this SID claims, when exported (§4.1).

        The paper's listing calls the attribute ``TOD`` ("type of
        description"); ``ServiceType`` is accepted as the modern spelling.
        """
        if not self.trader_export:
            return None
        return self.trader_export.get("TOD") or self.trader_export.get("ServiceType")

    def operation_names(self) -> List[str]:
        return self.interface.operation_names()

    def annotation_for(self, subject: str) -> Optional[str]:
        return self.annotations.get(subject)

    def new_session(self) -> Optional[FsmSession]:
        """Start an FSM session for a new binding (None when unrestricted)."""
        if self.fsm is None:
            return None
        return FsmSession(self.fsm)

    def validate(self) -> List[str]:
        """Self-consistency diagnostics (empty list = clean)."""
        diagnostics: List[str] = []
        if self.fsm is not None:
            diagnostics.extend(self.fsm.validate_against(self.operation_names()))
            unreachable = self.fsm.unreachable_states()
            if unreachable:
                diagnostics.append(f"FSM states unreachable: {sorted(unreachable)}")
        for subject in self.annotations:
            root = subject.split("::", 1)[0]
            if (
                root not in self.interface.operations
                and root not in self.types
                and root != self.name
            ):
                diagnostics.append(f"annotation for unknown subject {subject!r}")
        return diagnostics

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """Encode as a plain dict that the RPC tagged codec can carry."""
        named = self.types
        return {
            "__cosm__": SID_WIRE_MARKER,
            "name": self.name,
            # Each definition may reference the *other* named types (not
            # itself), so decoding shares one object per name — nested
            # uses of a named type stay identical to the table entry.
            "types": {
                type_name: type_to_wire(
                    sidl_type,
                    {other: named[other] for other in named if other != type_name},
                )
                for type_name, sidl_type in named.items()
            },
            "constants": dict(self.constants),
            "interface": interface_to_wire(self.interface, named),
            "fsm": self.fsm.to_wire() if self.fsm else None,
            "trader_export": dict(self.trader_export) if self.trader_export else None,
            "annotations": dict(self.annotations),
            "ui_hints": dict(self.ui_hints),
            "unknown_modules": [list(item) for item in self.unknown_modules],
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ServiceDescription":
        if not isinstance(data, dict) or data.get("__cosm__") != SID_WIRE_MARKER:
            raise SidlSemanticError(f"not a SID wire value: {data!r}")
        definitions = data.get("types", {})
        memo: Dict[str, SidlType] = {}
        types = {
            type_name: type_from_wire({"kind": "ref", "name": type_name}, definitions, memo)
            for type_name in definitions
        }
        interface = interface_from_wire(data["interface"], definitions, memo)
        fsm = FsmSpec.from_wire(data["fsm"]) if data.get("fsm") else None
        return cls(
            name=data["name"],
            interface=interface,
            types=types,
            constants=data.get("constants", {}),
            fsm=fsm,
            trader_export=data.get("trader_export"),
            annotations=data.get("annotations", {}),
            ui_hints=data.get("ui_hints", {}),
            unknown_modules=[tuple(item) for item in data.get("unknown_modules", [])],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceDescription):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SID {self.name} elements={self.elements()}>"

    # -- SIDL source regeneration ---------------------------------------------

    def to_sidl(self) -> str:
        """Regenerate SIDL source for this SID (canonical form)."""
        from repro.sidl.generate import sid_to_sidl  # local import: avoid cycle

        return sid_to_sidl(self)
