"""SIDL error hierarchy."""

from __future__ import annotations

from repro.errors import CosmError


class SidlError(CosmError):
    """Base class for SIDL language errors."""


class SidlParseError(SidlError):
    """Lexical or syntactic error, with source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        position = f" at {line}:{column}" if line else ""
        super().__init__(f"{message}{position}")
        self.line = line
        self.column = column


class SidlSemanticError(SidlError):
    """The SIDL parsed but is meaningless (unknown type, bad FSM, ...)."""


class SidlTypeError(SidlError):
    """A value does not conform to its declared SIDL type."""
