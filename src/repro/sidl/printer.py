"""Pretty-printer: AST → canonical SIDL source.

Used to (a) preserve unknown extension modules verbatim when a SID is
re-transmitted and (b) round-trip SIDs in tests (parse → print → parse).
Always emits the standard CORBA declaration order, even for input written
in the paper's reversed ``typedef <name> <constructor>`` order.
"""

from __future__ import annotations

from typing import Any, List

from repro.sidl.ast_nodes import (
    AnnotationDecl,
    AttributeDecl,
    ConstDecl,
    EnumDecl,
    FsmDecl,
    InterfaceDecl,
    ModuleDecl,
    OperationDecl,
    SkippedDecl,
    StructDecl,
    TypeRef,
    TypedefDecl,
    UnionDecl,
)
from repro.sidl.tokens import KEYWORDS

_INDENT = "  "


def print_module(declaration: Any, indent: int = 0) -> str:
    """Render any AST declaration (usually a module) as SIDL source."""
    lines = _print_declaration(declaration, indent)
    return "\n".join(lines) + "\n"


def _print_declaration(decl: Any, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(decl, ModuleDecl):
        lines = [f"{pad}module {decl.name} {{"]
        for inner in decl.body:
            lines.extend(_print_declaration(inner, indent + 1))
        lines.append(f"{pad}}};")
        return lines
    if isinstance(decl, InterfaceDecl):
        heading = f"{pad}interface {decl.name}"
        if decl.bases:
            heading += " : " + ", ".join(decl.bases)
        lines = [heading + " {"]
        inner_pad = _INDENT * (indent + 1)
        for attribute in decl.attributes:
            lines.append(_print_attribute(attribute, inner_pad))
        for operation in decl.operations:
            lines.append(_print_operation(operation, inner_pad))
        lines.append(f"{pad}}};")
        return lines
    if isinstance(decl, TypedefDecl):
        if decl.inline is not None:
            body = _print_constructor_inline(decl.inline, indent)
            return [f"{pad}typedef {body} {decl.name};"]
        return [f"{pad}typedef {_print_type(decl.type_ref)} {decl.name};"]
    if isinstance(decl, EnumDecl):
        labels = ", ".join(decl.labels)
        return [f"{pad}enum {decl.name} {{ {labels} }};"]
    if isinstance(decl, StructDecl):
        lines = [f"{pad}struct {decl.name} {{"]
        inner_pad = _INDENT * (indent + 1)
        for field_name, type_ref in decl.fields:
            lines.append(f"{inner_pad}{_print_type(type_ref)} {field_name};")
        lines.append(f"{pad}}};")
        return lines
    if isinstance(decl, UnionDecl):
        lines = [
            f"{pad}union {decl.name} switch ({_print_type(decl.discriminator)}) {{"
        ]
        inner_pad = _INDENT * (indent + 1)
        for label, arm_name, arm_type in decl.cases:
            case = "default" if label is None else f"case {_print_literal(label)}"
            lines.append(f"{inner_pad}{case}: {_print_type(arm_type)} {arm_name};")
        lines.append(f"{pad}}};")
        return lines
    if isinstance(decl, ConstDecl):
        return [
            f"{pad}const {_print_type(decl.type_ref)} {decl.name} "
            f"= {_print_literal(decl.value)};"
        ]
    if isinstance(decl, FsmDecl):
        lines = []
        if decl.states:
            lines.append(f"{pad}state {', '.join(decl.states)};")
        if decl.initial:
            lines.append(f"{pad}initial {decl.initial};")
        for transition in decl.transitions:
            lines.append(
                f"{pad}transition {transition.source} -> {transition.target} "
                f"on {transition.operation};"
            )
        return lines
    if isinstance(decl, AnnotationDecl):
        text = decl.text.replace("\\", "\\\\").replace('"', '\\"')
        return [f'{pad}annotation {decl.subject} "{text}";']
    if isinstance(decl, SkippedDecl):
        return [f"{pad}{decl.raw_text}"]
    raise TypeError(f"cannot print {type(decl).__name__}")


def _print_attribute(attribute: AttributeDecl, pad: str) -> str:
    prefix = "readonly attribute" if attribute.readonly else "attribute"
    return f"{pad}{prefix} {_print_type(attribute.type_ref)} {attribute.name};"


def _print_operation(operation: OperationDecl, pad: str) -> str:
    params = ", ".join(
        f"{param.direction} {_print_type(param.type_ref)} {param.name}".rstrip()
        for param in operation.params
    )
    prefix = "oneway " if operation.oneway else ""
    return f"{pad}{prefix}{_print_type(operation.result)} {operation.name}({params});"


def _print_constructor_inline(decl: Any, indent: int) -> str:
    if isinstance(decl, EnumDecl):
        return f"enum {{ {', '.join(decl.labels)} }}"
    if isinstance(decl, StructDecl):
        inner_pad = _INDENT * (indent + 1)
        pad = _INDENT * indent
        fields = "\n".join(
            f"{inner_pad}{_print_type(type_ref)} {field_name};"
            for field_name, type_ref in decl.fields
        )
        return f"struct {{\n{fields}\n{pad}}}"
    if isinstance(decl, UnionDecl):
        inner_pad = _INDENT * (indent + 1)
        pad = _INDENT * indent
        cases = "\n".join(
            f"{inner_pad}"
            + ("default" if label is None else f"case {_print_literal(label)}")
            + f": {_print_type(arm_type)} {arm_name};"
            for label, arm_name, arm_type in decl.cases
        )
        return (
            f"union switch ({_print_type(decl.discriminator)}) {{\n{cases}\n{pad}}}"
        )
    raise TypeError(f"cannot print inline {type(decl).__name__}")


def _print_type(type_ref: TypeRef) -> str:
    return str(type_ref)


def _print_literal(value: Any) -> str:
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        # Heuristic matching the parser: enum-label identifiers print bare,
        # everything else quotes.  Reserved words must quote, or the
        # round-trip parse would read them as keywords.
        if value and value not in KEYWORDS and (
            value[0].isalpha() or value[0] == "_"
        ) and all(c.isalnum() or c in "_-" for c in value):
            return value
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(value, float) and value == int(value):
        return f"{value:.1f}"
    return repr(value)
