"""Finite-state-machine service protocol specifications (§3.1).

A SID may restrict the legal invocation sequences of its operations by a
list of ``(current state, operation, resulting state)`` transitions.  The
generic client runs an :class:`FsmSession` per binding and *locally*
rejects calls the FSM forbids — the paper's example of an optional SID
extension that older components simply ignore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.sidl.errors import SidlSemanticError


class FsmViolation(ProtocolError):
    """An invocation was attempted that the FSM does not allow."""

    def __init__(self, state: str, operation: str, allowed: Iterable[str]) -> None:
        allowed = sorted(set(allowed))
        super().__init__(
            f"operation {operation!r} not allowed in state {state!r}; "
            f"allowed: {allowed}"
        )
        self.state = state
        self.operation = operation
        self.allowed = allowed


@dataclass(frozen=True)
class FsmTransition:
    """One tuple of the paper's transition list."""

    source: str
    operation: str
    target: str

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.source, self.operation, self.target)


class FsmSpec:
    """Validated FSM: states, an initial state, deterministic transitions."""

    def __init__(
        self,
        states: Iterable[str],
        initial: str,
        transitions: Iterable[FsmTransition],
    ) -> None:
        self.states: Tuple[str, ...] = tuple(dict.fromkeys(states))
        if not self.states:
            raise SidlSemanticError("FSM needs at least one state")
        if initial not in self.states:
            raise SidlSemanticError(f"initial state {initial!r} not declared")
        self.initial = initial
        self.transitions: Tuple[FsmTransition, ...] = tuple(transitions)
        self._table: Dict[Tuple[str, str], str] = {}
        for transition in self.transitions:
            for state in (transition.source, transition.target):
                if state not in self.states:
                    raise SidlSemanticError(
                        f"transition uses undeclared state {state!r}"
                    )
            key = (transition.source, transition.operation)
            existing = self._table.get(key)
            if existing is not None and existing != transition.target:
                raise SidlSemanticError(
                    f"non-deterministic FSM: {key} goes to both "
                    f"{existing!r} and {transition.target!r}"
                )
            self._table[key] = transition.target

    # -- queries -----------------------------------------------------------

    def operations(self) -> FrozenSet[str]:
        """Every operation mentioned by some transition."""
        return frozenset(t.operation for t in self.transitions)

    def allowed_in(self, state: str) -> List[str]:
        """Operations that may be invoked from ``state``."""
        return sorted(
            operation for (source, operation) in self._table if source == state
        )

    def successor(self, state: str, operation: str) -> Optional[str]:
        return self._table.get((state, operation))

    def reachable_states(self) -> Set[str]:
        """States reachable from the initial state."""
        reachable = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for (source, __), target in self._table.items():
                if source == state and target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return reachable

    def unreachable_states(self) -> Set[str]:
        return set(self.states) - self.reachable_states()

    def validate_against(self, operation_names: Iterable[str]) -> List[str]:
        """Return diagnostics for operations the interface does not offer."""
        known = set(operation_names)
        return sorted(
            f"FSM transition on unknown operation {operation!r}"
            for operation in self.operations()
            if operation not in known
        )

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> dict:
        return {
            "states": list(self.states),
            "initial": self.initial,
            "transitions": [list(t.as_tuple()) for t in self.transitions],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "FsmSpec":
        transitions = [FsmTransition(*item) for item in data["transitions"]]
        return cls(data["states"], data["initial"], transitions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FsmSpec):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        return hash((self.states, self.initial, self.transitions))


class FsmSession:
    """Tracks the communication state of one binding."""

    def __init__(self, spec: FsmSpec) -> None:
        self.spec = spec
        self.state = spec.initial
        self.history: List[str] = []
        self.rejections = 0

    def allows(self, operation: str) -> bool:
        """True when ``operation`` is legal now.

        Operations the FSM never mentions are unrestricted — the FSM only
        constrains the operations it talks about, so an extended service
        can add FSM-free operations without breaking old sessions.
        """
        if operation not in self.spec.operations():
            return True
        return self.spec.successor(self.state, operation) is not None

    def advance(self, operation: str) -> str:
        """Record a successful invocation; returns the new state."""
        if operation in self.spec.operations():
            target = self.spec.successor(self.state, operation)
            if target is None:
                self.rejections += 1
                raise FsmViolation(
                    self.state, operation, self.spec.allowed_in(self.state)
                )
            self.state = target
        self.history.append(operation)
        return self.state

    def reset(self) -> None:
        self.state = self.spec.initial
        self.history.clear()
