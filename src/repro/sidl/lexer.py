"""Hand-written lexer for SIDL source text."""

from __future__ import annotations

from typing import List

from repro.sidl.errors import SidlParseError
from repro.sidl.tokens import (
    EOF,
    FLOAT,
    IDENT,
    INT,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATION,
    STRING,
    Token,
)

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789") | {"-"}
_DIGITS = frozenset("0123456789")


def tokenize(source: str) -> List[Token]:
    """Convert SIDL source into a token list ending with an EOF token.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    Identifiers may contain ``-`` after the first character (the paper
    writes ``FIAT-Uno``), but a ``-`` followed by ``>`` always lexes as
    the ``->`` transition arrow.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> SidlParseError:
        return SidlParseError(message, line, column)

    while i < length:
        ch = source[i]

        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # Comments
        if ch == "/" and i + 1 < length:
            if source[i + 1] == "/":
                while i < length and source[i] != "\n":
                    i += 1
                continue
            if source[i + 1] == "*":
                start_line, start_col = line, column
                i += 2
                column += 2
                while True:
                    if i + 1 >= length:
                        raise SidlParseError(
                            "unterminated block comment", start_line, start_col
                        )
                    if source[i] == "*" and source[i + 1] == "/":
                        i += 2
                        column += 2
                        break
                    if source[i] == "\n":
                        line += 1
                        column = 1
                    else:
                        column += 1
                    i += 1
                continue

        # String literal
        if ch == '"':
            start_line, start_col = line, column
            i += 1
            column += 1
            chunk: List[str] = []
            while True:
                if i >= length:
                    raise SidlParseError("unterminated string", start_line, start_col)
                c = source[i]
                if c == '"':
                    i += 1
                    column += 1
                    break
                if c == "\\":
                    if i + 1 >= length:
                        raise SidlParseError(
                            "dangling escape in string", line, column
                        )
                    escape = source[i + 1]
                    mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    if escape not in mapping:
                        raise SidlParseError(f"bad escape \\{escape}", line, column)
                    chunk.append(mapping[escape])
                    i += 2
                    column += 2
                    continue
                if c == "\n":
                    raise SidlParseError("newline in string", line, column)
                chunk.append(c)
                i += 1
                column += 1
            tokens.append(Token(STRING, "".join(chunk), start_line, start_col))
            continue

        # Numbers (with optional leading sign handled by the parser; here
        # we lex a leading '-' as part of the number when a digit follows
        # and the previous token cannot end an expression).
        if ch in _DIGITS or (
            ch == "-"
            and i + 1 < length
            and source[i + 1] in _DIGITS
            and not _prev_ends_value(tokens)
        ):
            start_line, start_col = line, column
            j = i + 1 if ch == "-" else i
            while j < length and source[j] in _DIGITS:
                j += 1
            is_float = False
            if j < length and source[j] == "." and j + 1 < length and source[j + 1] in _DIGITS:
                is_float = True
                j += 1
                while j < length and source[j] in _DIGITS:
                    j += 1
            if j < length and source[j] in "eE":
                k = j + 1
                if k < length and source[k] in "+-":
                    k += 1
                if k < length and source[k] in _DIGITS:
                    is_float = True
                    j = k
                    while j < length and source[j] in _DIGITS:
                        j += 1
            text = source[i:j]
            column += j - i
            i = j
            tokens.append(
                Token(FLOAT if is_float else INT, text, start_line, start_col)
            )
            continue

        # Identifiers / keywords
        if ch in _IDENT_START:
            start_line, start_col = line, column
            j = i + 1
            while j < length and source[j] in _IDENT_CONT:
                # '-' is part of the identifier unless it starts '->'.
                if source[j] == "-" and j + 1 < length and source[j + 1] == ">":
                    break
                # A trailing '-' (e.g. before whitespace) ends the identifier.
                if source[j] == "-" and (
                    j + 1 >= length or source[j + 1] not in _IDENT_CONT
                ):
                    break
                j += 1
            text = source[i:j]
            column += j - i
            i = j
            kind = KEYWORD if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue

        # Punctuation (longest match first)
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(PUNCT, punct, line, column))
                i += len(punct)
                column += len(punct)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token(EOF, "", line, column))
    return tokens


def _prev_ends_value(tokens: List[Token]) -> bool:
    """True when the previous token could end a value expression.

    Used to decide whether ``-`` begins a negative literal or is an
    operator/separator.  In SIDL the only ``-`` uses are negative literals
    and the ``->`` arrow, so this only needs to reject identifier/number
    adjacency.
    """
    if not tokens:
        return False
    prev = tokens[-1]
    return prev.kind in (IDENT, INT, FLOAT, STRING) or prev.value in (")", "]", ">")
