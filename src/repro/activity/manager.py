"""The activity manager: atomic multi-service interactions.

An :class:`Activity` collects *steps* — deferred invocations on
transactional COSM services, identified by their service references — and
executes them with two-phase commit: either every step's service votes
yes and all staged invocations run, or none do.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.context import CallContext
from repro.errors import CosmError
from repro.naming.refs import ServiceRef
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.txn import TransactionCoordinator, TxnOutcome


class ActivityOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class ActivityStep:
    """One deferred invocation inside an activity."""

    ref: ServiceRef
    operation: str
    arguments: Dict[str, Any] = field(default_factory=dict)

    def as_work(self) -> Dict[str, Any]:
        return {"operation": self.operation, "arguments": dict(self.arguments)}


class Activity:
    """A named unit of work spanning several services."""

    _ids = itertools.count(1)

    def __init__(self, name: str, coordinator: TransactionCoordinator) -> None:
        self.name = name
        self.activity_id = f"activity-{name}-{next(self._ids)}"
        self._coordinator = coordinator
        self.steps: List[ActivityStep] = []
        self.outcome: Optional[ActivityOutcome] = None

    def add_step(
        self,
        ref: Union[ServiceRef, Dict[str, Any]],
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
    ) -> "Activity":
        """Append a deferred invocation; returns self for chaining."""
        if self.outcome is not None:
            raise CosmError(f"activity {self.name!r} already finished")
        ref = ServiceRef.from_wire(ref)
        self.steps.append(ActivityStep(ref, operation, dict(arguments or {})))
        return self

    def participants(self) -> List[Address]:
        seen: Dict[Address, None] = {}
        for step in self.steps:
            seen.setdefault(step.ref.address)
        return list(seen)

    def execute(self, ctx: Optional[CallContext] = None) -> ActivityOutcome:
        """Run 2PC: all steps commit, or none.

        A ``ctx`` bounds the *prepare* round; once every participant has
        voted yes the decision phase runs to completion regardless (see
        :meth:`repro.rpc.txn.TransactionCoordinator.execute`)."""
        if self.outcome is not None:
            raise CosmError(f"activity {self.name!r} already executed")
        if not self.steps:
            raise CosmError(f"activity {self.name!r} has no steps")
        work: Dict[Address, List[Dict[str, Any]]] = {}
        for step in self.steps:
            work.setdefault(step.ref.address, []).append(step.as_work())
        result = self._coordinator.execute(work, ctx=ctx)
        self.outcome = (
            ActivityOutcome.COMMITTED
            if result is TxnOutcome.COMMITTED
            else ActivityOutcome.ABORTED
        )
        return self.outcome


class ActivityManager:
    """Creates and runs activities over one RPC client."""

    def __init__(self, client: RpcClient, timeout: float = 1.0) -> None:
        self._coordinator = TransactionCoordinator(client, timeout=timeout)
        self.activities: List[Activity] = []

    def begin(self, name: str) -> Activity:
        activity = Activity(name, self._coordinator)
        self.activities.append(activity)
        return activity

    def run(
        self,
        name: str,
        steps: List[ActivityStep],
        ctx: Optional[CallContext] = None,
    ) -> ActivityOutcome:
        """Convenience: build and execute in one call."""
        activity = self.begin(name)
        for step in steps:
            activity.add_step(step.ref, step.operation, step.arguments)
        return activity.execute(ctx=ctx)

    @property
    def committed(self) -> int:
        return self._coordinator.committed

    @property
    def aborted(self) -> int:
        return self._coordinator.aborted
