"""The networked Activity Manager — a Controlling Level service (Fig. 6).

Thin clients delegate coordination: BEGIN an activity, ADD_STEP deferred
invocations (service reference + operation + arguments), EXECUTE runs the
two-phase commit at the manager's node, STATUS reports the outcome.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.errors import LookupFailure
from repro.activity.manager import ActivityManager, ActivityOutcome
from repro.naming.refs import ServiceRef
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcProgram, RpcServer

ACTIVITY_PROGRAM = 100600

_PROC_BEGIN = 1
_PROC_ADD_STEP = 2
_PROC_EXECUTE = 3
_PROC_STATUS = 4


class ActivityManagerService:
    """Hosts an :class:`ActivityManager` behind RPC."""

    def __init__(self, server: RpcServer, client: RpcClient, timeout: float = 1.0) -> None:
        self.manager = ActivityManager(client, timeout=timeout)
        self._open: Dict[str, Any] = {}
        program = RpcProgram(ACTIVITY_PROGRAM, 1, "activity-manager")
        program.register(_PROC_BEGIN, self._begin, "begin")
        program.register(_PROC_ADD_STEP, self._add_step, "add_step")
        program.register(_PROC_EXECUTE, self._execute, "execute")
        program.register(_PROC_STATUS, self._status, "status")
        server.serve(program)
        self.address = server.address

    def _begin(self, args) -> str:
        activity = self.manager.begin(args["name"])
        self._open[activity.activity_id] = activity
        return activity.activity_id

    def _activity(self, activity_id: str):
        activity = self._open.get(activity_id)
        if activity is None:
            raise LookupFailure(f"no open activity {activity_id!r}")
        return activity

    def _add_step(self, args) -> int:
        activity = self._activity(args["activity"])
        activity.add_step(args["ref"], args["operation"], args.get("arguments"))
        return len(activity.steps)

    def _execute(self, args) -> str:
        activity = self._activity(args["activity"])
        return activity.execute().value

    def _status(self, args) -> Dict[str, Any]:
        activity = self._activity(args["activity"])
        return {
            "name": activity.name,
            "steps": len(activity.steps),
            "outcome": activity.outcome.value if activity.outcome else "open",
        }


class ActivityClient:
    """Client stub for a remote activity manager."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self._address = address

    def begin(self, name: str) -> str:
        return self._call(_PROC_BEGIN, {"name": name})

    def add_step(
        self,
        activity_id: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
    ) -> int:
        ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else ref
        return self._call(
            _PROC_ADD_STEP,
            {
                "activity": activity_id,
                "ref": ref_wire,
                "operation": operation,
                "arguments": arguments or {},
            },
        )

    def execute(self, activity_id: str) -> ActivityOutcome:
        return ActivityOutcome(self._call(_PROC_EXECUTE, {"activity": activity_id}))

    def status(self, activity_id: str) -> Dict[str, Any]:
        return self._call(_PROC_STATUS, {"activity": activity_id})

    def _call(self, proc: int, args) -> Any:
        return self._client.call(self._address, ACTIVITY_PROGRAM, 1, proc, args)
