"""Activity management — the Fig. 6 Controlling Level boxes the paper
left as future work ("TP-Monitor", "Activity Manager": "currently outside
the scope of the ongoing prototype implementation").

An *activity* spans several COSM services: book a car AND a hotel, or
neither.  The pieces:

* :class:`TransactionalServiceRuntime` — a service runtime whose
  operations can additionally be *staged*: the service exports the 2PC
  participant protocol next to its ordinary COSM protocol, votes by
  type-checking and reserving, and executes the staged invocations only
  at commit,
* :class:`ActivityManager` / :class:`Activity` — client-side coordinator
  building an activity step by step and running two-phase commit over the
  involved services,
* :class:`ActivityManagerService` / :class:`ActivityClient` — the
  networked Controlling-Level service form, so thin clients can delegate
  coordination.
"""

from repro.activity.manager import Activity, ActivityManager, ActivityOutcome
from repro.activity.participant import TransactionalServiceRuntime
from repro.activity.service import ACTIVITY_PROGRAM, ActivityClient, ActivityManagerService

__all__ = [
    "ACTIVITY_PROGRAM",
    "Activity",
    "ActivityClient",
    "ActivityManager",
    "ActivityManagerService",
    "ActivityOutcome",
    "TransactionalServiceRuntime",
]
