"""Transactional COSM services: stage now, execute at commit.

A :class:`TransactionalServiceRuntime` hosts a service exactly like
:class:`~repro.core.service_runtime.ServiceRuntime` — generic clients,
browsers, and traders see no difference — and *additionally* exports the
2PC participant protocol of :mod:`repro.rpc.txn`.  The staged work items
are deferred invocations ``{"operation": ..., "arguments": {...}}``.

Voting: an invocation staged for commit must name a declared operation,
its arguments must type-check against the SID, and — when the
implementation offers ``reserve(operation, arguments)`` — the resource
must be reservable (e.g. a car held back until commit).  ``release`` (if
present) undoes reservations on abort.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.service_runtime import ServiceRuntime
from repro.rpc.server import RpcServer
from repro.rpc.txn import TransactionParticipant
from repro.sidl.errors import SidlTypeError
from repro.sidl.sid import ServiceDescription


class _DeferredInvocationResource:
    """The participant resource: stages invocation lists per transaction."""

    def __init__(self, runtime: "TransactionalServiceRuntime") -> None:
        self._runtime = runtime
        self._staged: Dict[str, List[Dict[str, Any]]] = {}
        self._reserved: Dict[str, List[Dict[str, Any]]] = {}

    def prepare(self, txn_id: str, work: Any) -> bool:
        steps = work if isinstance(work, list) else [work]
        checked: List[Dict[str, Any]] = []
        reserved: List[Dict[str, Any]] = []
        implementation = self._runtime.implementation
        reserve = getattr(implementation, "reserve", None)
        release = getattr(implementation, "release", None)
        try:
            for step in steps:
                operation = self._runtime.sid.interface.operation(step["operation"])
                arguments = operation.check_arguments(step.get("arguments") or {})
                if reserve is not None:
                    if not reserve(operation.name, arguments):
                        raise SidlTypeError(f"cannot reserve {operation.name}")
                    reserved.append({"operation": operation.name, "arguments": arguments})
                checked.append({"operation": operation.name, "arguments": arguments})
        except Exception:
            # undo partial reservations; vote no
            if release is not None:
                for step in reserved:
                    release(step["operation"], step["arguments"])
            return False
        self._staged[txn_id] = checked
        self._reserved[txn_id] = reserved
        return True

    def commit(self, txn_id: str) -> None:
        steps = self._staged.pop(txn_id, [])
        self._reserved.pop(txn_id, None)
        for step in steps:
            handler = self._runtime._handler_for(step["operation"])
            result = handler(**step["arguments"])
            self._runtime.committed_results.setdefault(txn_id, []).append(
                {"operation": step["operation"], "result": result}
            )

    def abort(self, txn_id: str) -> None:
        self._staged.pop(txn_id, None)
        release = getattr(self._runtime.implementation, "release", None)
        for step in self._reserved.pop(txn_id, []):
            if release is not None:
                release(step["operation"], step["arguments"])


class TransactionalServiceRuntime(ServiceRuntime):
    """A COSM service that can also take part in distributed activities."""

    def __init__(
        self,
        server: RpcServer,
        sid: ServiceDescription,
        implementation: Any,
        prog: Optional[int] = None,
        **options: Any,
    ) -> None:
        super().__init__(server, sid, implementation, prog=prog, **options)
        self.committed_results: Dict[str, List[Dict[str, Any]]] = {}
        self._resource = _DeferredInvocationResource(self)
        self._participant = TransactionParticipant(server, self._resource)

    def staged_transactions(self) -> int:
        return len(self._resource._staged)

    def results_of(self, txn_id: str) -> List[Dict[str, Any]]:
        """Results of the staged invocations after commit."""
        return list(self.committed_results.get(txn_id, []))
