"""Resilient invocation: backoff, failover, and circuit breakers.

The paper's binding model says a client binds to *whatever matching offer
the trader returns at bind time* — which only helps availability if the
client actually moves on when an endpoint stops answering.  This module
is that client-side half of the failure-recovery layer:

* :class:`BackoffPolicy` — decorrelated-jitter exponential backoff
  (``delay = min(cap, uniform(base, previous * factor))``), always
  clamped to the governing :class:`~repro.context.CallContext`'s
  remaining deadline so a retry schedule can never outlive its budget;
* :class:`CircuitBreaker` — a per-endpoint closed → open → half-open
  state machine: after ``failure_threshold`` consecutive transient
  failures the endpoint is skipped outright until ``probe_interval``
  elapses, then exactly one probe is admitted; its outcome closes or
  re-opens the circuit;
* :class:`ResilientCaller` — wraps an :class:`~repro.rpc.client.RpcClient`
  and tries a *ranked list* of targets (the offer order an import
  returned): transient failures (``ServerShedding``, timeouts, transport
  errors) back off and fail over to the next candidate, each attempt
  running on a slice of the remaining deadline so one dead endpoint
  cannot eat the whole budget.

Everything is surfaced: ``rpc.failover.attempts`` / ``rpc.backoff.sleeps``
counters, a ``rpc.breaker.state`` gauge (0 closed, 1 half-open, 2 open)
with ``rpc.breaker.opens``, and ``backoff`` / ``failover`` /
``breaker_open`` events on the request's resilience span.

All timing flows through the transport clock, so behaviour is identical
on virtual-time simulations and wall-clock TCP stacks.
"""

from __future__ import annotations

import asyncio
import inspect
import random
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.context import CallContext, Clock, current_context
from repro.errors import BindingError, CommunicationError
from repro.rpc.client import RpcClient
from repro.rpc.errors import DeadlineExceeded, RpcError, RpcTimeout, ServerShedding
from repro.telemetry.log import LOG
from repro.telemetry.metrics import METRICS

T = TypeVar("T")

#: ``rpc.breaker.state`` gauge values.
STATE_CLOSED = 0
STATE_HALF_OPEN = 1
STATE_OPEN = 2

_STATE_NAMES = {STATE_CLOSED: "closed", STATE_HALF_OPEN: "half-open", STATE_OPEN: "open"}


class CircuitOpen(RpcError):
    """Every candidate endpoint's circuit breaker is open (no probe due).

    Retryable in the same sense as :class:`ServerShedding`: the condition
    clears once a probe interval elapses or an endpoint recovers.
    """

    retryable = True


def transient(exc: BaseException) -> bool:
    """True for failures worth backing off and failing over on.

    * :class:`ServerShedding` — the endpoint is alive but overloaded;
    * :class:`RpcTimeout` — no reply (possibly dead), **except**
      :class:`DeadlineExceeded`, which means *our* budget is spent and no
      alternate endpoint can change that;
    * raw transport errors (:class:`CommunicationError` outside the RPC
      hierarchy — e.g. a TCP connect refusal).

    Application-level failures (``RemoteFault``, ``ProgramUnavailable``,
    garbage arguments) are *not* transient: another endpoint of the same
    service would fail identically, so they propagate untouched.

    A :class:`~repro.errors.BindingError` is judged by its cause: the
    binder wraps the RPC failure that broke the bind, and *that* failure
    decides whether another endpoint is worth trying.
    """
    if isinstance(exc, BindingError):
        cause = exc.__cause__ or exc.__context__
        return cause is not None and transient(cause)
    if isinstance(exc, DeadlineExceeded):
        return False
    if isinstance(exc, (ServerShedding, RpcTimeout, CircuitOpen)):
        return True
    return isinstance(exc, CommunicationError) and not isinstance(exc, RpcError)


def _is_deadline(exc: BaseException) -> bool:
    """True for :class:`DeadlineExceeded`, even wrapped in a binder error."""
    if isinstance(exc, BindingError):
        cause = exc.__cause__ or exc.__context__
        return cause is not None and _is_deadline(cause)
    return isinstance(exc, DeadlineExceeded)


@dataclass(frozen=True)
class BackoffPolicy:
    """Decorrelated-jitter exponential backoff (the AWS formulation).

    Each delay is drawn uniformly from ``[base, previous * factor]`` and
    clamped to ``cap`` — jitter decorrelates retry storms across clients
    while the expected delay still grows geometrically.
    """

    base: float = 0.02
    cap: float = 2.0
    factor: float = 3.0

    def first(self) -> float:
        return self.base

    def next_delay(self, previous: float, rng: random.Random) -> float:
        """The next sleep after a delay of ``previous`` seconds."""
        upper = max(self.base, min(self.cap, previous * self.factor))
        return min(self.cap, rng.uniform(self.base, upper))


@dataclass(frozen=True)
class BreakerPolicy:
    """When a circuit opens and how often an open one is probed."""

    failure_threshold: int = 3
    probe_interval: float = 1.0


class CircuitBreaker:
    """Per-endpoint closed → open → half-open state machine.

    Thread-safe; all transitions are driven by the caller-supplied clock
    so the machine behaves identically under virtual and wall time.
    """

    def __init__(self, name: str, policy: BreakerPolicy, clock: Clock) -> None:
        self.name = name
        self.policy = policy
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.opens = 0
        self._publish()

    @property
    def state(self) -> int:
        with self._lock:
            return self._effective_state(self._clock())

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def _effective_state(self, now: float) -> int:
        if self._state == STATE_OPEN and now >= self._opened_at + self.policy.probe_interval:
            return STATE_HALF_OPEN
        return self._state

    def allow(self, now: Optional[float] = None) -> bool:
        """May a call be sent to this endpoint right now?

        While open, nothing is admitted until ``probe_interval`` elapses;
        then exactly one caller gets through as the half-open probe, and
        everyone else keeps being refused until that probe's outcome is
        recorded.
        """
        now = self._clock() if now is None else now
        with self._lock:
            state = self._effective_state(now)
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN and self._state == STATE_OPEN:
                # Claim the single probe slot.
                self._state = STATE_HALF_OPEN
                self._publish()
                return True
            return False

    def record_success(self, now: Optional[float] = None) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._publish()
                if LOG.active:
                    LOG.event(
                        "rpc.breaker_closed",
                        at=self._clock() if now is None else now,
                        endpoint=self.name,
                    )

    def record_failure(self, now: Optional[float] = None) -> None:
        now = self._clock() if now is None else now
        with self._lock:
            self._consecutive_failures += 1
            if self._state == STATE_HALF_OPEN:
                # The probe failed: back to open, a fresh probe interval.
                self._trip(now)
            elif (
                self._state == STATE_CLOSED
                and self._consecutive_failures >= self.policy.failure_threshold
            ):
                self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = STATE_OPEN
        self._opened_at = now
        self.opens += 1
        METRICS.inc("rpc.breaker.opens", (self.name,))
        self._publish()
        if LOG.active:
            LOG.event(
                "rpc.breaker_open",
                level="warning",
                at=now,
                endpoint=self.name,
                failures=self._consecutive_failures,
                opens=self.opens,
            )

    def _publish(self) -> None:
        METRICS.set_gauge("rpc.breaker.state", self._state, (self.name,))


class ResilientCaller:
    """Failover + backoff + breakers over a ranked list of targets.

    The generic engine is :meth:`run` — it drives any per-target attempt
    callable (the rebind layer reuses it for bind-and-invoke attempts);
    :meth:`call` is the plain RPC form over a list of addresses.
    """

    def __init__(
        self,
        client: RpcClient,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        rounds: int = 3,
        seed: int = 0,
    ) -> None:
        self._client = client
        self.backoff = backoff or BackoffPolicy()
        self.breaker_policy = breaker or BreakerPolicy()
        # Without a deadline the retry loop needs *some* bound: at most
        # ``rounds`` passes over the candidate list.
        self.rounds = max(1, rounds)
        self._rng = random.Random(seed)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self.failovers = 0
        self.backoff_sleeps = 0.0

    @property
    def transport(self):
        return self._client.transport

    def breaker_opens(self) -> int:
        """Total open transitions across every endpoint's breaker."""
        with self._lock:
            return sum(breaker.opens for breaker in self._breakers.values())

    def breaker_for(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    key, self.breaker_policy, self._client.transport.now
                )
            return breaker

    # -- the engine --------------------------------------------------------

    def run(
        self,
        targets: Sequence[T],
        attempt: Callable[[T, Optional[CallContext]], Any],
        ctx: Optional[CallContext] = None,
        key: Callable[[T], str] = str,
        operation: str = "call",
    ) -> Any:
        """Try ``targets`` in ranked order until one attempt succeeds.

        * each attempt runs on a *slice* of the remaining deadline
          (``remaining / candidates_left``, floored by the retry policy's
          minimum) so a dead first choice cannot consume the budget the
          alternates need;
        * a transient failure records a breaker failure, sleeps the next
          decorrelated-jitter delay (clamped to the remaining budget) and
          fails over to the next candidate;
        * targets whose breaker is open are skipped without network
          traffic (a ``breaker_open`` span event); if *every* target is
          skipped that way, :class:`CircuitOpen` is raised;
        * with budget left after a full pass, the list is retried up to
          ``rounds`` times (a second chance for shed-but-alive servers).

        Raises the last transient failure when everything is exhausted,
        or :class:`DeadlineExceeded` the moment the budget lapses.
        """
        if not targets:
            raise ValueError("ResilientCaller.run needs at least one target")
        if ctx is None:
            ctx = current_context()
        clock = self._client.transport.now
        span_ctx = ctx if ctx is not None else CallContext.background()
        with span_ctx.span("resilience", operation, clock) as span:
            return self._run_rounds(
                list(targets), attempt, ctx, key, span, clock
            )

    def _run_rounds(
        self,
        targets: List[T],
        attempt: Callable[[T, Optional[CallContext]], Any],
        ctx: Optional[CallContext],
        key: Callable[[T], str],
        span,
        clock: Clock,
    ) -> Any:
        last_error: Optional[BaseException] = None
        delay = self.backoff.first()
        first_attempt = True
        for round_index in range(self.rounds):
            attempted = 0
            for position, target in enumerate(targets):
                now = clock()
                if ctx is not None and ctx.expired(now):
                    raise self._deadline_error(ctx, last_error)
                endpoint = key(target)
                breaker = self.breaker_for(endpoint)
                if not breaker.allow(now):
                    span.add_event("breaker_open", at=now, endpoint=endpoint)
                    METRICS.inc("rpc.breaker.skipped", (endpoint,))
                    continue
                if not first_attempt:
                    # Every attempt after the first is a failover (or a
                    # new round's retry): pause first, then move on.
                    delay = self._sleep_backoff(ctx, delay, span, clock)
                    if ctx is not None and ctx.expired(clock()):
                        raise self._deadline_error(ctx, last_error)
                    self.failovers += 1
                    METRICS.inc("rpc.failover.attempts", (endpoint,))
                    span.add_event("failover", at=clock(), endpoint=endpoint,
                                   round=round_index)
                    if LOG.active:
                        LOG.event(
                            "rpc.failover",
                            level="warning",
                            at=clock(),
                            endpoint=endpoint,
                            round=round_index,
                            candidates_left=len(targets) - position,
                        )
                attempted += 1
                first_attempt = False
                child = self._attempt_context(ctx, len(targets) - position)
                try:
                    result = attempt(target, child)
                except BaseException as exc:  # noqa: BLE001 - classified below
                    now = clock()
                    if _is_deadline(exc):
                        if ctx is None or ctx.expired(now):
                            # The *budget* lapsed, not just the slice —
                            # surface it as DeadlineExceeded even when the
                            # binder wrapped it.
                            if isinstance(exc, DeadlineExceeded):
                                raise
                            raise self._deadline_error(ctx, exc) from exc
                        # Only this attempt's deadline slice expired — the
                        # endpoint forfeits its share; the parent budget
                        # still covers the remaining candidates.
                    elif not transient(exc):
                        raise
                    breaker.record_failure(now)
                    last_error = exc
                    continue
                breaker.record_success(clock())
                return result
            if attempted == 0:
                # Nothing admitted this round: every breaker is open.
                raise CircuitOpen(
                    f"all {len(targets)} candidate endpoint(s) have open "
                    f"circuit breakers"
                )
        if last_error is not None:
            raise last_error
        raise CircuitOpen("no attempt could be made within the round budget")

    async def run_async(
        self,
        targets: Sequence[T],
        attempt: Callable[[T, Optional[CallContext]], Any],
        ctx: Optional[CallContext] = None,
        key: Callable[[T], str] = str,
        operation: str = "call",
    ) -> Any:
        """Coroutine twin of :meth:`run` for the async RPC stack.

        Same slicing, breaker, and failover semantics; backoff pauses are
        ``await asyncio.sleep`` (virtual seconds on a
        :class:`~repro.net.aioclock.SimEventLoop`) instead of blocking
        transport waits, so concurrent failover rounds interleave on one
        event loop.  ``attempt`` may be a coroutine function or a plain
        callable returning an awaitable; plain results pass through.
        """
        if not targets:
            raise ValueError("ResilientCaller.run_async needs at least one target")
        if ctx is None:
            ctx = current_context()
        clock = self._client.transport.now
        span_ctx = ctx if ctx is not None else CallContext.background()
        with span_ctx.span("resilience", operation, clock) as span:
            return await self._run_rounds_async(
                list(targets), attempt, ctx, key, span, clock
            )

    async def _run_rounds_async(
        self,
        targets: List[T],
        attempt: Callable[[T, Optional[CallContext]], Any],
        ctx: Optional[CallContext],
        key: Callable[[T], str],
        span,
        clock: Clock,
    ) -> Any:
        last_error: Optional[BaseException] = None
        delay = self.backoff.first()
        first_attempt = True
        for round_index in range(self.rounds):
            attempted = 0
            for position, target in enumerate(targets):
                now = clock()
                if ctx is not None and ctx.expired(now):
                    raise self._deadline_error(ctx, last_error)
                endpoint = key(target)
                breaker = self.breaker_for(endpoint)
                if not breaker.allow(now):
                    span.add_event("breaker_open", at=now, endpoint=endpoint)
                    METRICS.inc("rpc.breaker.skipped", (endpoint,))
                    continue
                if not first_attempt:
                    delay = await self._sleep_backoff_async(ctx, delay, span, clock)
                    if ctx is not None and ctx.expired(clock()):
                        raise self._deadline_error(ctx, last_error)
                    self.failovers += 1
                    METRICS.inc("rpc.failover.attempts", (endpoint,))
                    span.add_event("failover", at=clock(), endpoint=endpoint,
                                   round=round_index)
                    if LOG.active:
                        LOG.event(
                            "rpc.failover",
                            level="warning",
                            at=clock(),
                            endpoint=endpoint,
                            round=round_index,
                            candidates_left=len(targets) - position,
                        )
                attempted += 1
                first_attempt = False
                child = self._attempt_context(ctx, len(targets) - position)
                try:
                    result = attempt(target, child)
                    if inspect.isawaitable(result):
                        result = await result
                except asyncio.CancelledError:
                    raise  # never classified: cancellation wins
                except BaseException as exc:  # noqa: BLE001 - classified below
                    now = clock()
                    if _is_deadline(exc):
                        if ctx is None or ctx.expired(now):
                            if isinstance(exc, DeadlineExceeded):
                                raise
                            raise self._deadline_error(ctx, exc) from exc
                        # only this attempt's slice expired; keep going
                    elif not transient(exc):
                        raise
                    breaker.record_failure(now)
                    last_error = exc
                    continue
                breaker.record_success(clock())
                return result
            if attempted == 0:
                raise CircuitOpen(
                    f"all {len(targets)} candidate endpoint(s) have open "
                    f"circuit breakers"
                )
        if last_error is not None:
            raise last_error
        raise CircuitOpen("no attempt could be made within the round budget")

    async def _sleep_backoff_async(
        self, ctx: Optional[CallContext], delay: float, span, clock: Clock
    ) -> float:
        """:meth:`_sleep_backoff` without blocking the event loop."""
        now = clock()
        wait = delay if ctx is None else min(delay, ctx.remaining(now))
        if wait > 0:
            span.add_event("backoff", at=now, delay=wait)
            self.backoff_sleeps += wait
            METRICS.inc("rpc.backoff.sleeps")
            METRICS.observe("rpc.backoff.seconds", wait)
            await asyncio.sleep(wait)
        return self.backoff.next_delay(delay, self._rng)

    def _sleep_backoff(
        self, ctx: Optional[CallContext], delay: float, span, clock: Clock
    ) -> float:
        """Sleep the current delay (clamped to the budget); returns the
        next decorrelated-jitter delay."""
        now = clock()
        wait = delay if ctx is None else min(delay, ctx.remaining(now))
        if wait > 0:
            span.add_event("backoff", at=now, delay=wait)
            self.backoff_sleeps += wait
            METRICS.inc("rpc.backoff.sleeps")
            METRICS.observe("rpc.backoff.seconds", wait)
            self._client.transport.wait(lambda: False, wait)
        return self.backoff.next_delay(delay, self._rng)

    def _attempt_context(
        self, ctx: Optional[CallContext], candidates_left: int
    ) -> Optional[CallContext]:
        """A deadline slice for one attempt: ``remaining / candidates``.

        The child shares the trace and span chain; its deadline ensures a
        silent endpoint forfeits its share instead of the whole budget.
        """
        if ctx is None or ctx.deadline is None:
            return ctx
        now = self._client.transport.now()
        share = ctx.remaining(now) / max(1, candidates_left)
        return ctx.derive(deadline=min(ctx.deadline, now + share))

    def _deadline_error(
        self, ctx: CallContext, last_error: Optional[BaseException]
    ) -> DeadlineExceeded:
        detail = f" (last failure: {last_error})" if last_error is not None else ""
        return DeadlineExceeded(
            f"deadline expired during failover (trace {ctx.trace_id}){detail}"
        )

    # -- the plain RPC form ------------------------------------------------

    def call(
        self,
        destinations: Sequence[Any],
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        ctx: Optional[CallContext] = None,
    ) -> Any:
        """``RpcClient.call`` with failover across ``destinations``."""

        def attempt(destination: Any, child: Optional[CallContext]) -> Any:
            return self._client.call(
                destination, prog, vers, proc, args, context=child
            )

        return self.run(
            destinations, attempt, ctx=ctx,
            key=lambda d: f"{d.host}:{d.port}",
            operation=f"call {prog}:{proc}",
        )

    async def call_async(
        self,
        destinations: Sequence[Any],
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        ctx: Optional[CallContext] = None,
    ) -> Any:
        """:meth:`call` on the async stack.

        Construct the caller with an
        :class:`~repro.rpc.aio.AsyncRpcClient` (its ``call`` returns an
        awaitable, which the engine awaits per attempt).
        """

        def attempt(destination: Any, child: Optional[CallContext]) -> Any:
            return self._client.call(
                destination, prog, vers, proc, args, context=child
            )

        return await self.run_async(
            destinations, attempt, ctx=ctx,
            key=lambda d: f"{d.host}:{d.port}",
            operation=f"call {prog}:{proc}",
        )
