"""Compiled wire codecs: precomputed ``struct`` formats per signature.

The tagged codec (:func:`repro.rpc.xdr.encode_value`) pays for dynamic
marshalling on every call: each leaf carries a tag word, each dict entry
carries its key string, and decoding walks the structure one tagged
primitive at a time.  When the SID pins a signature down statically,
none of that is needed — this module compiles a layout spec
(:mod:`repro.sidl.layout`) into a :class:`CompiledCodec` whose
fixed-layout runs collapse into a single ``Struct.pack`` /
``unpack_from`` and whose string/opaque tails are handled generically.

Negotiation is per ``(prog, vers, proc)`` through the process-global
:data:`CODECS` registry: both peers derive the same layout from the
same SID, so a registered signature means both ends speak it.  Compiled
bodies are self-announcing — an 8-byte header (magic word + layout
fingerprint) that can never collide with a tagged body, whose first
word is a value tag < 16 — so every decode point accepts either form
and the tagged path remains the transparent fallback:

* encode falls back when the value does not fit the static layout
  (extended struct values, out-of-range ints, dynamic content) — this
  is exactly the paper's dynamic-marshalling escape hatch;
* decode falls back whenever the body is tagged, so compiled-codec
  peers interoperate with peers that never negotiated.

Hits and fallbacks are counted per direction in the metrics registry
(``rpc.codec.compiled_hits`` / ``rpc.codec.fallback``); the telemetry
report surfaces them in the wire-path table.
"""

from __future__ import annotations

import struct
import threading
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rpc.errors import XdrError, XdrTruncated
from repro.rpc.xdr import decode_value, encode_value
from repro.telemetry.metrics import METRICS

__all__ = [
    "CODECS",
    "CodecFallback",
    "CodecRegistry",
    "CompiledCodec",
    "MAGIC",
]

#: First word of every compiled body.  Tagged bodies start with a value
#: tag (0..8), so this word is unambiguous at any decode point.
MAGIC = 0x53494443  # "SIDC"

_U32 = struct.Struct(">I")
_HEADER = struct.Struct(">II")  # magic, layout fingerprint


class CodecFallback(Exception):
    """The value does not fit the compiled layout; use the tagged path."""


def fingerprint_of(spec: tuple) -> int:
    """Stable 32-bit fingerprint of a layout spec.

    Both peers derive the spec from the same SID; the fingerprint rides
    in the body header so a decoder can prove it holds the *same*
    layout before trusting a single offset.
    """
    return zlib.crc32(repr(spec).encode("utf-8")) & 0xFFFFFFFF


# A compiled spec is a pair of closures:
#   enc(value, out)            append wire chunks for ``value`` to ``out``
#   dec(view, offset) -> (value, offset)
_Encoder = Callable[[Any, List[bytes]], None]
_Decoder = Callable[[memoryview, int], Tuple[Any, int]]

# Packable leaves: (struct format char, to-wire converter, from-wire
# converter).  Converters raise CodecFallback on values that belong to
# the dynamic path so the whole encode can restart as tagged.


def _conv_i64(value: Any) -> int:
    if type(value) is not int:
        raise CodecFallback("not an int")
    return value


def _conv_f64(value: Any) -> float:
    if type(value) is not float:
        raise CodecFallback("not a float")
    return value


def _conv_bool(value: Any) -> int:
    if value is True:
        return 1
    if value is False:
        return 0
    raise CodecFallback("not a bool")


def _unconv_bool(raw: int) -> bool:
    if raw not in (0, 1):
        raise XdrError(f"bool must be 0 or 1, got {raw}")
    return bool(raw)


def _pad(length: int) -> bytes:
    return b"\x00" * ((-length) % 4)


def _compile(spec: tuple) -> Tuple[_Encoder, _Decoder]:
    kind = spec[0]
    if kind == "struct":
        return _compile_struct(spec)
    if kind in ("i64", "f64", "bool", "enum"):
        return _compile_leaf(spec)
    if kind == "string":
        return _compile_string()
    if kind == "bytes":
        return _compile_bytes()
    if kind == "optional":
        return _compile_optional(spec[1])
    if kind == "seq":
        return _compile_seq(spec[1])
    if kind == "void":
        return _compile_void()
    raise ConfigurationError(f"unknown layout spec kind {kind!r}")


def _packable(spec: tuple):
    """``(fmt_char, to_wire, from_wire)`` for a fixed-width leaf, or None."""
    kind = spec[0]
    if kind == "i64":
        return ("q", _conv_i64, None)
    if kind == "f64":
        return ("d", _conv_f64, None)
    if kind == "bool":
        return ("I", _conv_bool, _unconv_bool)
    if kind == "enum":
        labels = spec[1]
        index = {label: position for position, label in enumerate(labels)}

        def to_wire(value: Any, _index=index) -> int:
            try:
                return _index[value]
            except (KeyError, TypeError):
                raise CodecFallback("not an enum label")

        def from_wire(raw: int, _labels=labels) -> str:
            if raw >= len(_labels):
                raise XdrError(f"enum index {raw} out of range")
            return _labels[raw]

        return ("I", to_wire, from_wire)
    return None


def _compile_leaf(spec: tuple) -> Tuple[_Encoder, _Decoder]:
    """A lone fixed-width leaf (inside optional/seq, or at the root)."""
    fmt, to_wire, from_wire = _packable(spec)
    packer = struct.Struct(">" + fmt)

    def enc(value: Any, out: List[bytes]) -> None:
        try:
            out.append(packer.pack(to_wire(value)))
        except struct.error:
            raise CodecFallback("value out of range for the compiled layout")

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        try:
            (raw,) = packer.unpack_from(view, offset)
        except struct.error:
            raise XdrTruncated(f"truncated compiled value at offset {offset}")
        value = raw if from_wire is None else from_wire(raw)
        return value, offset + packer.size

    return enc, dec


def _compile_struct(spec: tuple) -> Tuple[_Encoder, _Decoder]:
    """Compile a record: consecutive fixed-width fields share one Struct."""
    fields = spec[1]
    field_count = len(fields)
    # steps: ("run", Struct, [(name, to_wire)], [(name, from_wire)])
    #      | ("field", name, enc, dec)
    steps: List[tuple] = []
    run: List[Tuple[str, tuple]] = []

    def close_run() -> None:
        if not run:
            return
        fmt = ">" + "".join(packable[0] for __, packable in run)
        packer = struct.Struct(fmt)
        encoders = [(name, packable[1]) for name, packable in run]
        decoders = [(name, packable[2]) for name, packable in run]
        steps.append(("run", packer, encoders, decoders))
        run.clear()

    for name, sub in fields:
        packable = _packable(sub)
        if packable is not None:
            run.append((name, packable))
        else:
            close_run()
            sub_enc, sub_dec = _compile(sub)
            steps.append(("field", name, sub_enc, sub_dec))
    close_run()
    frozen = tuple(steps)

    def enc(value: Any, out: List[bytes]) -> None:
        if type(value) is not dict or len(value) != field_count:
            # Extended values (extra keys from a subtype) and anything
            # that is not a plain record belong to dynamic marshalling.
            raise CodecFallback("value does not match the record layout")
        try:
            for step in frozen:
                if step[0] == "run":
                    __, packer, encoders, __ = step
                    out.append(
                        packer.pack(
                            *[to_wire(value[name]) for name, to_wire in encoders]
                        )
                    )
                else:
                    __, name, sub_enc, __ = step
                    sub_enc(value[name], out)
        except KeyError:
            raise CodecFallback("missing record field")
        except struct.error:
            raise CodecFallback("value out of range for the compiled layout")

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        result: Dict[str, Any] = {}
        for step in frozen:
            if step[0] == "run":
                __, packer, __, decoders = step
                try:
                    raws = packer.unpack_from(view, offset)
                except struct.error:
                    raise XdrTruncated(
                        f"truncated compiled record at offset {offset}"
                    )
                offset += packer.size
                for (name, from_wire), raw in zip(decoders, raws):
                    result[name] = raw if from_wire is None else from_wire(raw)
            else:
                __, name, __, sub_dec = step
                result[name], offset = sub_dec(view, offset)
        return result, offset

    return enc, dec


def _compile_string() -> Tuple[_Encoder, _Decoder]:
    def enc(value: Any, out: List[bytes]) -> None:
        if type(value) is not str:
            raise CodecFallback("not a string")
        data = value.encode("utf-8")
        out.append(_U32.pack(len(data)))
        out.append(data)
        out.append(_pad(len(data)))

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        length, offset = _dec_length(view, offset)
        end = offset + length
        try:
            text = str(view[offset:end], "utf-8")
        except UnicodeDecodeError as exc:
            raise XdrError(f"invalid UTF-8 at offset {offset}: {exc}")
        return text, end + ((-length) % 4)

    return enc, dec


def _compile_bytes() -> Tuple[_Encoder, _Decoder]:
    def enc(value: Any, out: List[bytes]) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise CodecFallback("not bytes")
        data = bytes(value)
        out.append(_U32.pack(len(data)))
        out.append(data)
        out.append(_pad(len(data)))

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        length, offset = _dec_length(view, offset)
        end = offset + length
        return bytes(view[offset:end]), end + ((-length) % 4)

    return enc, dec


def _dec_length(view: memoryview, offset: int) -> Tuple[int, int]:
    """Read a u32 length and bounds-check it against the buffer."""
    if offset + 4 > len(view):
        raise XdrTruncated(f"truncated length prefix at offset {offset}")
    (length,) = _U32.unpack_from(view, offset)
    offset += 4
    padded = length + ((-length) % 4)
    if offset + padded > len(view):
        raise XdrTruncated(
            f"truncated payload at offset {offset}: wanted {padded} bytes, "
            f"have {len(view) - offset}"
        )
    return length, offset


def _compile_optional(element: tuple) -> Tuple[_Encoder, _Decoder]:
    sub_enc, sub_dec = _compile(element)

    def enc(value: Any, out: List[bytes]) -> None:
        if value is None:
            out.append(_U32.pack(0))
            return
        out.append(_U32.pack(1))
        sub_enc(value, out)

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        if offset + 4 > len(view):
            raise XdrTruncated(f"truncated optional flag at offset {offset}")
        (flag,) = _U32.unpack_from(view, offset)
        offset += 4
        if flag == 0:
            return None, offset
        if flag != 1:
            raise XdrError(f"optional flag must be 0 or 1, got {flag}")
        return sub_dec(view, offset)

    return enc, dec


def _compile_seq(element: tuple) -> Tuple[_Encoder, _Decoder]:
    sub_enc, sub_dec = _compile(element)

    def enc(value: Any, out: List[bytes]) -> None:
        if not isinstance(value, (list, tuple)):
            raise CodecFallback("not a sequence")
        out.append(_U32.pack(len(value)))
        for item in value:
            sub_enc(item, out)

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        if offset + 4 > len(view):
            raise XdrTruncated(f"truncated sequence count at offset {offset}")
        (count,) = _U32.unpack_from(view, offset)
        offset += 4
        if count > len(view):
            raise XdrError(
                f"implausible sequence count {count} at offset {offset}"
            )
        items = []
        for __ in range(count):
            item, offset = sub_dec(view, offset)
            items.append(item)
        return items, offset

    return enc, dec


def _compile_void() -> Tuple[_Encoder, _Decoder]:
    def enc(value: Any, out: List[bytes]) -> None:
        if value is not None:
            raise CodecFallback("void must be None")

    def dec(view: memoryview, offset: int) -> Tuple[Any, int]:
        return None, offset

    return enc, dec


class CompiledCodec:
    """One layout spec compiled to pack/unpack closures plus its header."""

    def __init__(self, spec: tuple) -> None:
        self._enc, self._dec = _compile(spec)
        self.spec = spec
        self.fingerprint = fingerprint_of(spec)
        self._header = _HEADER.pack(MAGIC, self.fingerprint)

    def encode(self, value: Any) -> bytes:
        """Compiled wire bytes, or :class:`CodecFallback` if unfit."""
        out: List[bytes] = [self._header]
        self._enc(value, out)
        return b"".join(out)

    def decode(self, data) -> Any:
        """Decode a compiled body (header verified by the registry)."""
        view = memoryview(data)
        value, offset = self._dec(view, _HEADER.size)
        if offset != len(view):
            raise XdrError(
                f"{len(view) - offset} trailing bytes after compiled value"
            )
        return value


def is_compiled(body) -> bool:
    """True when ``body`` carries the compiled-codec header."""
    if len(body) < _HEADER.size:
        return False
    (magic,) = _U32.unpack_from(body, 0)
    return magic == MAGIC


class CodecRegistry:
    """Per-``(prog, vers, proc)`` codec negotiation with tagged fallback.

    ``encode_args``/``decode_args`` cover CALL bodies and
    ``encode_result``/``decode_result`` cover SUCCESS reply bodies; all
    four degrade to the tagged codec when no signature is registered,
    when the value needs dynamic marshalling, or when the peer sent a
    tagged body.  Registration is idempotent for an identical spec and
    refuses silent redefinition otherwise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._codecs: Dict[Tuple[int, int, int, str], CompiledCodec] = {}

    def register(
        self,
        prog: int,
        vers: int,
        proc: int,
        args: Optional[tuple] = None,
        result: Optional[tuple] = None,
    ) -> None:
        """Negotiate compiled layouts for one procedure.

        ``args`` describes the CALL body, ``result`` the SUCCESS reply
        body; either may be ``None`` to keep that direction tagged.
        """
        with self._lock:
            for direction, spec in (("args", args), ("result", result)):
                if spec is None:
                    continue
                key = (prog, vers, proc, direction)
                existing = self._codecs.get(key)
                if existing is not None:
                    if existing.spec == spec:
                        continue
                    raise ConfigurationError(
                        f"codec for prog={prog} vers={vers} proc={proc} "
                        f"{direction} already registered with a different layout"
                    )
                self._codecs[key] = CompiledCodec(spec)

    def register_operation(self, prog: int, vers: int, proc: int, operation) -> bool:
        """Derive and register layouts from a SIDL operation signature.

        Returns ``False`` (registering nothing) when the signature has
        no static layout — the tagged path simply continues to serve it.
        """
        from repro.sidl.layout import SidlLayoutError, operation_layouts

        try:
            args, result = operation_layouts(operation)
        except SidlLayoutError:
            return False
        self.register(prog, vers, proc, args=args, result=result)
        return True

    def lookup(self, prog: int, vers: int, proc: int, direction: str):
        return self._codecs.get((prog, vers, proc, direction))

    def negotiated(self, prog: int, vers: int, proc: int) -> bool:
        """True when either direction of the procedure is compiled."""
        return (
            self.lookup(prog, vers, proc, "args") is not None
            or self.lookup(prog, vers, proc, "result") is not None
        )

    def clear(self) -> None:
        with self._lock:
            self._codecs.clear()

    # -- encode/decode boundaries -----------------------------------------

    def _encode(self, codec: Optional[CompiledCodec], value: Any, direction: str) -> bytes:
        if codec is not None:
            try:
                body = codec.encode(value)
            except CodecFallback:
                METRICS.inc("rpc.codec.fallback", (direction, "encode"))
            else:
                METRICS.inc("rpc.codec.compiled_hits", (direction, "encode"))
                return body
        return encode_value(value)

    def _decode(self, codec: Optional[CompiledCodec], body, direction: str) -> Any:
        if is_compiled(body):
            (__, fingerprint) = _HEADER.unpack_from(body, 0)
            if codec is None:
                raise XdrError(
                    f"compiled {direction} body for an unnegotiated signature "
                    f"(fingerprint {fingerprint:#010x})"
                )
            if fingerprint != codec.fingerprint:
                raise XdrError(
                    f"compiled {direction} body fingerprint {fingerprint:#010x} "
                    f"does not match the negotiated layout "
                    f"{codec.fingerprint:#010x}"
                )
            value = codec.decode(body)
            METRICS.inc("rpc.codec.compiled_hits", (direction, "decode"))
            return value
        if codec is not None:
            # Negotiated signature, tagged body: the peer fell back to
            # dynamic marshalling (or never negotiated) — interop intact.
            METRICS.inc("rpc.codec.fallback", (direction, "decode"))
        return decode_value(body)

    def encode_args(self, prog: int, vers: int, proc: int, value: Any) -> bytes:
        return self._encode(self.lookup(prog, vers, proc, "args"), value, "args")

    def decode_args(self, prog: int, vers: int, proc: int, body) -> Any:
        return self._decode(self.lookup(prog, vers, proc, "args"), body, "args")

    def encode_result(self, prog: int, vers: int, proc: int, value: Any) -> bytes:
        return self._encode(self.lookup(prog, vers, proc, "result"), value, "result")

    def decode_result(self, prog: int, vers: int, proc: int, body) -> Any:
        return self._decode(self.lookup(prog, vers, proc, "result"), body, "result")


#: The process-global registry every client and server consults.  Both
#: sides of a connection derive signatures from the same SID, so a
#: registration here is the negotiation.
CODECS = CodecRegistry()
