"""Multicast/broadcast RPC — the extended communication functions of Fig. 6.

A :class:`MulticastCaller` sends one logical call to a set of destinations
and gathers replies until a quorum is reached or the deadline expires.
Group membership itself is managed by :class:`repro.naming.groups.GroupManager`;
this module only provides the fan-out call mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.context import CallContext
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.errors import RemoteFault, RpcError
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.xdr import decode_value, encode_value


@dataclass
class MulticastResult:
    """Replies gathered from one multicast call."""

    replies: Dict[Address, Any] = field(default_factory=dict)
    faults: Dict[Address, str] = field(default_factory=dict)
    missing: List[Address] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missing

    def values(self) -> List[Any]:
        """Successful reply values, in destination order."""
        return list(self.replies.values())


class MulticastCaller:
    """Fans a call out to many destinations over one client transport."""

    def __init__(self, client: RpcClient) -> None:
        self._client = client

    def call(
        self,
        destinations: Sequence[Address],
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        timeout: float = 1.0,
        quorum: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> MulticastResult:
        """Send to all ``destinations``; wait for ``quorum`` replies.

        ``quorum=None`` waits for every destination.  Always returns a
        result object — per-destination failures never raise, they appear
        in ``faults``/``missing``.  With a ``context``, the gather window
        is bounded by the remaining deadline budget and the fan-out is
        stamped with the context's wire fields.
        """
        if quorum is None:
            quorum = len(destinations)
        transport = self._client.transport
        if context is not None:
            timeout = min(timeout, context.remaining(transport.now()))
        pending: Dict[int, Address] = {}
        body = encode_value(args)
        for destination in destinations:
            xid = next(self._client._xid_counter)
            if context is not None:
                call = RpcCall(
                    xid, prog, vers, proc, body,
                    deadline=context.deadline,
                    trace_id=context.trace_id,
                    hops=context.hops,
                )
            else:
                call = RpcCall(xid, prog, vers, proc, body)
            pending[xid] = destination
            self._client.calls_sent += 1
            transport.send(destination, call.encode())

        def arrived() -> int:
            return sum(1 for xid in pending if xid in self._client._pending)

        transport.wait(lambda: arrived() >= quorum, timeout)

        result = MulticastResult()
        for xid, destination in pending.items():
            reply = self._client._pending.pop(xid, None)
            # Replies arriving after the gather window would otherwise sit
            # in the client's pending table forever.
            self._client.retire_xid(xid)
            if reply is None:
                result.missing.append(destination)
                continue
            self._record(result, destination, reply)
        return result

    @staticmethod
    def _record(result: MulticastResult, destination: Address, reply: RpcReply) -> None:
        if reply.status is ReplyStatus.SUCCESS:
            result.replies[destination] = decode_value(reply.body)
        elif reply.status is ReplyStatus.REMOTE_FAULT:
            fault = decode_value(reply.body)
            result.faults[destination] = f"{fault.get('kind')}: {fault.get('detail')}"
        else:
            result.faults[destination] = reply.status.name


def anycast(
    caller: MulticastCaller,
    destinations: Sequence[Address],
    prog: int,
    vers: int,
    proc: int,
    args: Any = None,
    timeout: float = 1.0,
) -> Any:
    """First successful reply wins; raises :class:`RpcError` if none."""
    result = caller.call(destinations, prog, vers, proc, args, timeout, quorum=1)
    for value in result.replies.values():
        return value
    for fault in result.faults.values():
        raise RemoteFault("AnycastFault", fault)
    raise RpcError(f"no reply from any of {len(destinations)} destination(s)")
