"""RPC server: program registry, dispatch, at-most-once duplicate cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.context import CallContext, use_context
from repro.errors import ConfigurationError
from repro.net.endpoints import Address
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import XdrError
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.transport import Transport
from repro.rpc.xdr import decode_value, encode_value
from repro.telemetry.hub import flush_context
from repro.telemetry.metrics import METRICS

Handler = Callable[..., Any]


class RpcProgram:
    """A numbered RPC program: a set of procedures sharing prog/vers."""

    def __init__(self, prog: int, vers: int = 1, name: str = "") -> None:
        self.prog = prog
        self.vers = vers
        self.name = name or f"prog-{prog}"
        self._procedures: Dict[int, Handler] = {}
        self._names: Dict[int, str] = {}

    def register(self, proc: int, handler: Handler, name: str = "") -> None:
        """Bind procedure number ``proc`` to ``handler``.

        Handlers receive the decoded argument value (usually a dict) and
        return any marshallable value.
        """
        if proc in self._procedures:
            raise ConfigurationError(f"{self.name}: procedure {proc} already bound")
        self._procedures[proc] = handler
        self._names[proc] = name or getattr(handler, "__name__", f"proc-{proc}")

    def procedure(self, proc: int, name: str = "") -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`register`."""

        def wrap(handler: Handler) -> Handler:
            self.register(proc, handler, name)
            return handler

        return wrap

    def lookup(self, proc: int) -> Optional[Handler]:
        if proc == 0 and 0 not in self._procedures:
            # ONC RPC convention: procedure 0 is the NULL procedure,
            # always present, used for pings and liveness probes.
            return lambda args: None
        return self._procedures.get(proc)

    def procedures(self) -> Dict[int, str]:
        """proc number -> registered name, for introspection."""
        return dict(self._names)


class RpcServer:
    """Serves one or more programs on a transport.

    Implements the *at-most-once* semantics the paper's communication level
    inherits from Sun RPC: replies are cached per ``(caller, xid)`` so a
    retransmitted request replays the recorded reply instead of re-running
    the procedure — the difference is measurable in
    ``benchmarks/bench_ablation_at_most_once.py``.
    """

    def __init__(
        self,
        transport: Transport,
        at_most_once: bool = True,
        reply_cache_size: int = 2048,
    ) -> None:
        self.transport = transport
        self.at_most_once = at_most_once
        self._programs: Dict[Tuple[int, int], RpcProgram] = {}
        self._reply_cache: "OrderedDict[Tuple[Address, int], RpcReply]" = OrderedDict()
        self._reply_cache_size = reply_cache_size
        self.calls_handled = 0
        self.duplicates_suppressed = 0
        self.deadlines_rejected = 0
        dispatcher_for(transport).server = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def serve(self, program: RpcProgram) -> RpcProgram:
        key = (program.prog, program.vers)
        if key in self._programs:
            raise ConfigurationError(f"program {key} already served")
        self._programs[key] = program
        return program

    def withdraw(self, program: RpcProgram) -> None:
        self._programs.pop((program.prog, program.vers), None)

    def handle_call(self, source: Address, call: RpcCall) -> None:
        """Entry point from the dispatcher; sends the reply itself."""
        cache_key = (source, call.xid)
        if self.at_most_once:
            cached = self._reply_cache.get(cache_key)
            if cached is not None:
                self.duplicates_suppressed += 1
                METRICS.inc("rpc.server.duplicates_suppressed")
                self.transport.send(source, cached.encode())
                return
        reply = self._execute(call)
        if self.at_most_once:
            self._reply_cache[cache_key] = reply
            while len(self._reply_cache) > self._reply_cache_size:
                self._reply_cache.popitem(last=False)
        self.transport.send(source, reply.encode())

    def _execute(self, call: RpcCall) -> RpcReply:
        # Deadline enforcement happens *before* the handler runs: a call
        # whose context budget is already spent is rejected without any
        # execution (the client has given up on the answer anyway).
        if call.deadline is not None and self.transport.now() >= call.deadline:
            self.deadlines_rejected += 1
            METRICS.inc(
                "rpc.server.deadline_rejected", (str(call.prog), str(call.proc))
            )
            return RpcReply(call.xid, ReplyStatus.DEADLINE_EXCEEDED)
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            return RpcReply(call.xid, ReplyStatus.PROG_UNAVAIL)
        handler = program.lookup(call.proc)
        if handler is None:
            return RpcReply(call.xid, ReplyStatus.PROC_UNAVAIL)
        try:
            args = decode_value(call.body) if call.body else None
        except XdrError:
            return RpcReply(call.xid, ReplyStatus.GARBAGE_ARGS)
        self.calls_handled += 1
        # Reconstruct the caller's context from the wire fields and make
        # it ambient for the handler: nested calls (federation forwards,
        # 2PC rounds, value-adding services) inherit deadline and trace.
        ctx = self._context_for(call)
        started = self.transport.now()
        try:
            try:
                if ctx is not None:
                    with ctx.span(
                        "server", f"{program.name}:{call.proc}", self.transport.now
                    ):
                        with use_context(ctx):
                            result = handler(args)
                else:
                    result = handler(args)
            except Exception as exc:  # noqa: BLE001 - faults cross the wire as data
                fault = {"kind": type(exc).__name__, "detail": str(exc)}
                return RpcReply(call.xid, ReplyStatus.REMOTE_FAULT, encode_value(fault))
            try:
                body = encode_value(result)
            except XdrError as exc:
                fault = {"kind": "XdrError", "detail": str(exc)}
                return RpcReply(call.xid, ReplyStatus.REMOTE_FAULT, encode_value(fault))
            return RpcReply(call.xid, ReplyStatus.SUCCESS, body)
        finally:
            # Measured service time per (program, proc) — the estimate the
            # planned deadline-aware shedding compares budgets against.
            METRICS.observe(
                "rpc.server.handler_seconds",
                self.transport.now() - started,
                (program.name, str(call.proc)),
            )
            if ctx is not None:
                # The server-side chain ends here; flush best-effort
                # (no-op unless an exporter is installed).
                flush_context(ctx)

    @staticmethod
    def _context_for(call: RpcCall) -> Optional[CallContext]:
        """The server-side view of the caller's context, if one was sent."""
        if not (call.trace_id or call.deadline is not None or call.hops is not None):
            return None
        if call.trace_id:
            return CallContext(
                trace_id=call.trace_id, deadline=call.deadline, hops=call.hops
            )
        return CallContext(deadline=call.deadline, hops=call.hops)

    def close(self) -> None:
        dispatcher_for(self.transport).server = None
