"""RPC server: program registry, admission control, at-most-once cache.

Inbound calls pass through deadline-aware **admission control** before
any handler runs (the Controlling/Communication-level scaling concern of
Fig. 6: under overload a server must not burn handler time on work whose
deadline will lapse mid-execution):

* **arrival check** — a call whose wire deadline has already passed is
  answered ``DEADLINE_EXCEEDED``; a call whose *remaining* budget is
  smaller than the server's service-time estimate for that procedure
  (the ``rpc.server.handler_seconds`` histogram quantile) is answered
  ``SHED`` without executing;
* **bounded, deadline-ordered queue** — admitted calls enter a bounded
  queue ordered by deadline (ties by arrival); on overflow the entry
  with the *latest* deadline is shed, so urgent work displaces
  patient work and queue depth never exceeds the bound;
* **dequeue re-check** — queued work that aged out while waiting is
  dropped before execution (``DEADLINE_EXCEEDED`` if the budget lapsed,
  ``SHED`` if what is left no longer covers the estimate).

Duplicate retransmissions of a call that is still queued or executing
are coalesced (no reply — the original will answer), closing the
at-most-once gap a queued duplicate would otherwise open.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union

from repro.context import CallContext, SpanRecord, use_context
from repro.errors import ConfigurationError
from repro.net.endpoints import Address
from repro.rpc.codec import CODECS
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import XdrError
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.transport import Transport
from repro.rpc.xdr import encode_value
from repro.rpc import stats as stats_mod
from repro.telemetry.hub import flush_context, spans_wanted
from repro.telemetry.log import LOG
from repro.telemetry.metrics import METRICS, MetricsRegistry

Handler = Callable[..., Any]


@dataclass(frozen=True)
class AdmissionPolicy:
    """How a server decides which inbound calls are worth executing.

    ``shed`` turns the statistical rejection on; with it off the queue
    still bounds memory but every live-deadline call is admitted (the
    pre-admission behaviour, used as the bench baseline).

    ``capacity`` bounds the admission queue.  The literal ``"auto"``
    derives the bound from what the server observes (see
    :func:`derive_capacity`): the queue holds no more calls than a
    typical arrival's deadline budget can absorb at the measured service
    time — Little's law applied to the admission queue.  Until enough
    samples exist the queue runs at ``max_capacity``; the derived value
    is clamped to ``[min_capacity, max_capacity]``.

    ``defer_while_busy`` makes the queue a real waiting line: arrivals
    during handler execution are parked and drained deadline-first when
    the handler finishes.  It defaults to **off** because the historic
    servers process nested arrivals reentrantly — cyclic federation
    topologies (trader A importing from B while B imports from A) rely
    on that to answer each other mid-call.  Dedicated worker servers
    (the overload bench, TCP fleets) turn it on to get deadline-ordered
    scheduling under load.
    """

    capacity: Union[int, str] = 256
    quantile: float = 0.95
    min_samples: int = 5
    shed: bool = True
    defer_while_busy: bool = False
    min_capacity: int = 8
    max_capacity: int = 4096


#: Labels under which the server aggregates observations across all its
#: procedures — the per-procedure split admission shedding uses would
#: fragment the samples a whole-queue capacity estimate needs.
_ALL_PROCS = ("*", "*")

#: Quantile of the arrival-budget distribution that stands in for the
#: "typical deadline budget" in the capacity derivation.
BUDGET_QUANTILE = 0.5


def derive_capacity(
    service_seconds: float,
    budget_seconds: float,
    floor: int = 8,
    ceiling: int = 4096,
) -> int:
    """Queue bound from Little's law: ``ceil(budget / service)``, clamped.

    A queued call only makes sense if it can still be served before a
    typical deadline lapses; with one execution stream working through
    the queue, at most ``budget / service`` calls ahead of an arrival
    can drain in time.  Queueing deeper than that admits work that is
    doomed to age out — exactly what shedding exists to refuse early.
    """
    if service_seconds <= 0:
        return ceiling
    derived = math.ceil(budget_seconds / service_seconds)
    return int(min(ceiling, max(floor, derived)))


class AdmissionQueue:
    """Bounded priority queue ordered by ``(deadline, arrival)``.

    Calls without a deadline sort last (an infinite deadline: they can
    wait).  The ``(deadline, seq)`` key is a total order — ties on
    deadline resolve by arrival sequence — so pops are deterministic.
    On overflow the *latest-deadline* entry is evicted and returned to
    the caller to shed; the arriving entry itself may be that loser.
    Thread-safe: TCP reader threads enqueue concurrently.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError(f"admission queue capacity must be >= 1: {capacity}")
        self.capacity = capacity
        # heap entries: (order, seq, item, key); the unique seq breaks
        # deadline ties by arrival and keeps items out of comparisons
        self._heap: List[Tuple[float, int, Any, Any]] = []
        self._seq = itertools.count()
        self._keys: Set[Any] = set()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def pending(self, key: Any) -> bool:
        """True while an entry with this coalescing key is queued."""
        with self._lock:
            return key in self._keys

    def push(self, item: Any, deadline: Optional[float], key: Any = None) -> Optional[Any]:
        """Admit ``item``; returns the item shed to stay within bounds.

        The returned item is ``None`` when the queue had room, the
        evicted latest-deadline entry when the arrival displaced it, or
        ``item`` itself when the arrival *is* the latest-deadline entry.
        """
        order = math.inf if deadline is None else deadline
        with self._lock:
            seq = next(self._seq)
            if len(self._heap) >= self.capacity:
                worst = max(range(len(self._heap)), key=lambda i: self._heap[i][:2])
                if (order, seq) >= self._heap[worst][:2]:
                    return item  # arrival loses: it is the latest-deadline entry
                evicted = self._heap[worst]
                self._heap[worst] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                if evicted[3] is not None:
                    self._keys.discard(evicted[3])
                self._push_locked(order, seq, item, key)
                return evicted[2]
            self._push_locked(order, seq, item, key)
            return None

    def pop(self) -> Optional[Any]:
        """The earliest-deadline entry, or ``None`` when empty."""
        with self._lock:
            if not self._heap:
                return None
            __, __, item, key = heapq.heappop(self._heap)
            if key is not None:
                self._keys.discard(key)
            return item

    def _push_locked(self, order: float, seq: int, item: Any, key: Any) -> None:
        heapq.heappush(self._heap, (order, seq, item, key))
        if key is not None:
            self._keys.add(key)


class RpcProgram:
    """A numbered RPC program: a set of procedures sharing prog/vers."""

    def __init__(self, prog: int, vers: int = 1, name: str = "") -> None:
        self.prog = prog
        self.vers = vers
        self.name = name or f"prog-{prog}"
        self._procedures: Dict[int, Handler] = {}
        self._names: Dict[int, str] = {}

    def register(self, proc: int, handler: Handler, name: str = "") -> None:
        """Bind procedure number ``proc`` to ``handler``.

        Handlers receive the decoded argument value (usually a dict) and
        return any marshallable value.
        """
        if proc in self._procedures:
            raise ConfigurationError(f"{self.name}: procedure {proc} already bound")
        self._procedures[proc] = handler
        self._names[proc] = name or getattr(handler, "__name__", f"proc-{proc}")

    def procedure(self, proc: int, name: str = "") -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`register`."""

        def wrap(handler: Handler) -> Handler:
            self.register(proc, handler, name)
            return handler

        return wrap

    def lookup(self, proc: int) -> Optional[Handler]:
        if proc == 0 and 0 not in self._procedures:
            # ONC RPC convention: procedure 0 is the NULL procedure,
            # always present, used for pings and liveness probes.
            return lambda args: None
        return self._procedures.get(proc)

    def procedures(self) -> Dict[int, str]:
        """proc number -> registered name, for introspection."""
        return dict(self._names)


class RpcServer:
    """Serves one or more programs on a transport.

    Implements the *at-most-once* semantics the paper's communication level
    inherits from Sun RPC: replies are cached per ``(caller, xid)`` so a
    retransmitted request replays the recorded reply instead of re-running
    the procedure — the difference is measurable in
    ``benchmarks/bench_ablation_at_most_once.py``.

    Every inbound call passes through the admission control described in
    the module docstring; ``AdmissionPolicy`` tunes it.  ``SHED`` replies
    are never cached — a shed is not an execution, and a later
    retransmission may be admitted once load clears.
    """

    #: Dispatcher hint: this server performs its own deadline/admission
    #: checks, so the dispatcher hands calls straight through.
    owns_admission = True

    def __init__(
        self,
        transport: Transport,
        at_most_once: bool = True,
        reply_cache_size: int = 2048,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.transport = transport
        self.at_most_once = at_most_once
        self.admission = admission or AdmissionPolicy()
        self._programs: Dict[Tuple[int, int], RpcProgram] = {}
        self._reply_cache: "OrderedDict[Tuple[Address, int], RpcReply]" = OrderedDict()
        self._reply_cache_size = reply_cache_size
        self._auto_capacity = self.admission.capacity == "auto"
        initial_capacity = (
            self.admission.max_capacity if self._auto_capacity else self.admission.capacity
        )
        self._queue = AdmissionQueue(initial_capacity)
        # Admission estimates come from *this server's* observations, not
        # the process-global registry: many servers share one process in
        # tests and simulations, and a fresh server must not shed on the
        # service times of an unrelated one.  The same observations still
        # feed ``METRICS`` for reporting (unchanged).
        self._service_times = MetricsRegistry()
        self._in_flight: Set[Tuple[Address, int]] = set()
        self._active = 0  # drain-loop depth (reentrant under virtual time)
        # Per-thread stack of reply-coalescing scopes opened by
        # handle_batch: (expected (source, xid) keys, buffered encodings).
        self._reply_batches = threading.local()
        self._gauge_label = (f"{transport.local_address.host}:{transport.local_address.port}",)
        self.calls_handled = 0
        self.duplicates_suppressed = 0
        self.duplicates_coalesced = 0
        self.deadlines_rejected = 0
        self.calls_shed = 0
        # Every server answers the well-known stats program: probes
        # bypass admission under a small token-bucket budget (see
        # repro.rpc.stats), so introspection works *during* overload.
        self._stats_budget = stats_mod.StatsBudget()
        stats_program = RpcProgram(
            stats_mod.STATS_PROGRAM, stats_mod.STATS_VERSION, name="stats"
        )
        stats_program.register(
            stats_mod.PROC_SNAPSHOT,
            lambda args: stats_mod.build_snapshot(self),
            name="snapshot",
        )
        self.serve(stats_program)
        dispatcher_for(transport).server = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def serve(self, program: RpcProgram) -> RpcProgram:
        key = (program.prog, program.vers)
        if key in self._programs:
            raise ConfigurationError(f"program {key} already served")
        self._programs[key] = program
        return program

    def withdraw(self, program: RpcProgram) -> None:
        self._programs.pop((program.prog, program.vers), None)

    def handle_call(self, source: Address, call: RpcCall) -> None:
        """Entry point from the dispatcher; sends replies itself.

        Arrival-time admission happens here; admitted calls enter the
        deadline-ordered queue and are drained by whichever invocation
        currently owns the drain loop.  With ``defer_while_busy`` off
        (default) every arrival drains immediately — including arrivals
        nested inside a running handler, preserving the reentrant
        processing cyclic federation topologies depend on.
        """
        if not self._receive(source, call):
            return
        METRICS.set_gauge(
            "rpc.server.queue_depth", len(self._queue), self._gauge_label
        )
        if self._active and self.admission.defer_while_busy:
            return  # parked: the active drain loop will reach it
        self._drain()

    def handle_batch(self, source: Address, calls: List[RpcCall]) -> None:
        """Process a BATCH payload: admit everything, then drain once.

        Pipelining in two directions: every decodable call enters the
        deadline-ordered admission queue *before* any handler runs (so
        the most urgent call in the batch executes first, regardless of
        its wire position), and replies owed to this batch coalesce into
        a single transport write instead of one write per call.  Replies
        to anything *else* — nested reentrant calls a handler makes back
        into this server mid-batch — bypass the buffer and send
        immediately, so cyclic federation topologies cannot deadlock on
        a held-back reply.
        """
        expected = {(source, call.xid) for call in calls}
        buffered: List[bytes] = []
        stack = self._batch_stack()
        stack.append((expected, buffered))
        try:
            admitted = False
            for call in calls:
                admitted = self._receive(source, call) or admitted
            # One depth gauge per payload, not per push: no reader can
            # observe the intermediate depths anyway.
            METRICS.set_gauge(
                "rpc.server.queue_depth", len(self._queue), self._gauge_label
            )
            if admitted and not (self._active and self.admission.defer_while_busy):
                self._drain()
        finally:
            stack.pop()
        if buffered:
            METRICS.observe("rpc.server.batch_replies", float(len(buffered)))
            self.transport.send(source, b"".join(buffered))

    def _receive(self, source: Address, call: RpcCall) -> bool:
        """Replay-or-admit one arrival; True when it joined the queue."""
        cache_key = (source, call.xid)
        if self.at_most_once:
            cached = self._reply_cache.get(cache_key)
            if cached is not None:
                self.duplicates_suppressed += 1
                METRICS.inc("rpc.server.duplicates_suppressed")
                self._send_reply(source, cached)
                return False
        return self._admit(source, call, cache_key)

    def _batch_stack(self) -> List[Tuple[Set[Tuple[Address, int]], List[bytes]]]:
        stack = getattr(self._reply_batches, "stack", None)
        if stack is None:
            stack = self._reply_batches.stack = []
        return stack

    def _admit(self, source: Address, call: RpcCall, cache_key: Tuple[Address, int]) -> bool:
        """Arrival-time admission; True when the call was queued."""
        now = self.transport.now()
        if call.deadline is not None and now >= call.deadline:
            reply = self._reject_deadline(call)
            self._finish(source, call, reply, cacheable=True)
            return False
        if call.prog == stats_mod.STATS_PROGRAM:
            # Introspection bypasses the admission queue: a probe is most
            # valuable exactly when the queue is full of urgent work that
            # would shed it.  The token bucket keeps the bypass from
            # becoming a load vector — beyond it, probes shed like
            # anything else.  Executed inline (the snapshot handler is a
            # pure read), so this works identically on the async server.
            if self._stats_budget.take(now):
                self._finish(source, call, self._execute(call), cacheable=True)
            else:
                self._finish(
                    source, call, self._shed(call, "stats_budget"), cacheable=False
                )
            return False
        if call.deadline is not None and self._auto_capacity:
            # Arrival budgets only feed the "auto" capacity derivation;
            # with a fixed bound the sample would never be read.
            self._service_times.observe(
                "rpc.server.arrival_budget_seconds", call.deadline - now
            )
            self._adapt_capacity()
        if self._shedding_needed(call, now):
            self._finish(source, call, self._shed(call, "arrival"), cacheable=False)
            return False
        if self._queue.pending(cache_key) or cache_key in self._in_flight:
            # A retransmission of work already queued or executing: the
            # original will reply; answering (or re-queueing) here would
            # break at-most-once.
            self.duplicates_coalesced += 1
            METRICS.inc("rpc.server.duplicates_coalesced")
            return False
        entry = (source, call)
        shed_entry = self._queue.push(entry, call.deadline, key=cache_key)
        if shed_entry is not None:
            shed_source, shed_call = shed_entry
            self._finish(
                shed_source, shed_call, self._shed(shed_call, "queue_full"), cacheable=False
            )
            return shed_entry is not entry
        return True

    def _drain(self) -> None:
        """Process queued calls in deadline order until the queue empties."""
        self._active += 1
        try:
            while True:
                entry = self._queue.pop()
                if entry is None:
                    break
                source, call = entry
                self._dispatch_entry(source, call)
        finally:
            self._active -= 1
            # Depth gauge per drain, not per pop: arrivals re-gauge on
            # push, so between drains the gauge stays fresh anyway.
            METRICS.set_gauge(
                "rpc.server.queue_depth", len(self._queue), self._gauge_label
            )
        if not self._active and len(self._queue):
            # A deferred arrival slipped in between our last pop and the
            # depth decrement (TCP reader-thread interleaving): claim it.
            self._drain()

    def _dispatch_entry(self, source: Address, call: RpcCall) -> None:
        """Dequeue-time re-check, execution, reply."""
        now = self.transport.now()
        if call.deadline is not None and now >= call.deadline:
            # Aged out while queued: drop before execution.
            self._finish(source, call, self._reject_deadline(call), cacheable=True)
            return
        if self._shedding_needed(call, now):
            self._finish(source, call, self._shed(call, "dequeue"), cacheable=False)
            return
        cache_key = (source, call.xid)
        self._in_flight.add(cache_key)
        try:
            reply = self._execute(call)
        finally:
            self._in_flight.discard(cache_key)
        self._finish(source, call, reply, cacheable=True)

    def _finish(
        self, source: Address, call: RpcCall, reply: RpcReply, cacheable: bool
    ) -> None:
        if self.at_most_once and cacheable:
            self._reply_cache[(source, call.xid)] = reply
            while len(self._reply_cache) > self._reply_cache_size:
                self._reply_cache.popitem(last=False)
        self._send_reply(source, reply)

    def _send_reply(self, source: Address, reply: RpcReply) -> None:
        """Write one reply, or coalesce it into the open batch scope.

        Only replies the innermost :meth:`handle_batch` scope is
        *expecting* (registered by ``(source, xid)``) are buffered; each
        key buffers at most once.  Everything else — replies to nested
        reentrant arrivals, or to calls from other peers — goes straight
        to the transport.
        """
        stack = self._batch_stack()
        if stack:
            expected, buffered = stack[-1]
            key = (source, reply.xid)
            if key in expected:
                expected.discard(key)
                buffered.append(reply.encode())
                return
        self.transport.send(source, reply.encode())

    def _reject_deadline(self, call: RpcCall) -> RpcReply:
        self.deadlines_rejected += 1
        METRICS.inc("rpc.server.deadline_rejected", (str(call.prog), str(call.proc)))
        return RpcReply(call.xid, ReplyStatus.DEADLINE_EXCEEDED)

    def _shed(self, call: RpcCall, stage: str) -> RpcReply:
        self.calls_shed += 1
        program = self._programs.get((call.prog, call.vers))
        name = program.name if program is not None else str(call.prog)
        METRICS.inc("rpc.server.shed", (stage, name, str(call.proc)))
        if LOG.active:
            LOG.event(
                "rpc.shed",
                level="warning",
                at=self.transport.now(),
                stage=stage,
                program=name,
                proc=call.proc,
                trace_id=call.trace_id or None,
            )
        return RpcReply(call.xid, ReplyStatus.SHED)

    def _adapt_capacity(self) -> None:
        """Re-derive the ``"auto"`` queue bound from current estimates.

        Uses the server's own observations: the policy-quantile service
        time over *all* procedures and the median arrival budget.  Until
        both have ``min_samples`` the queue keeps its current bound.
        Shrinking below the current depth is safe — ``push`` evicts the
        latest-deadline entry per overflow, so depth converges as the
        queue drains.
        """
        if not self._auto_capacity:
            return
        service = self._service_times.estimate(
            "rpc.server.handler_seconds",
            _ALL_PROCS,
            q=self.admission.quantile,
            min_count=self.admission.min_samples,
        )
        budget = self._service_times.estimate(
            "rpc.server.arrival_budget_seconds",
            (),
            q=BUDGET_QUANTILE,
            min_count=self.admission.min_samples,
        )
        if service is None or budget is None:
            return
        capacity = derive_capacity(
            service, budget, self.admission.min_capacity, self.admission.max_capacity
        )
        if capacity != self._queue.capacity:
            self._queue.capacity = capacity
            METRICS.set_gauge(
                "rpc.server.queue_capacity", capacity, self._gauge_label
            )

    def _shedding_needed(self, call: RpcCall, now: float) -> bool:
        """True when the estimated service time exceeds the remaining budget."""
        if not self.admission.shed or call.deadline is None:
            return False
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            return False  # let PROG_UNAVAIL surface normally
        estimate = self._service_times.estimate(
            "rpc.server.handler_seconds",
            (program.name, str(call.proc)),
            q=self.admission.quantile,
            min_count=self.admission.min_samples,
        )
        return estimate is not None and estimate > call.deadline - now

    def _prepare(self, call: RpcCall):
        """Front half of execution shared by the sync and async servers.

        Returns ``(program, handler, args, early_reply)``; a non-``None``
        ``early_reply`` short-circuits execution (expired deadline,
        unknown program/procedure, undecodable arguments).
        """
        # Expired calls were rejected at admission and again at dequeue;
        # this guard remains for direct callers that bypass the queue.
        if call.deadline is not None and self.transport.now() >= call.deadline:
            return None, None, None, self._reject_deadline(call)
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            return None, None, None, RpcReply(call.xid, ReplyStatus.PROG_UNAVAIL)
        handler = program.lookup(call.proc)
        if handler is None:
            return program, None, None, RpcReply(call.xid, ReplyStatus.PROC_UNAVAIL)
        try:
            args = (
                CODECS.decode_args(call.prog, call.vers, call.proc, call.body)
                if call.body
                else None
            )
        except XdrError:
            return program, handler, None, RpcReply(call.xid, ReplyStatus.GARBAGE_ARGS)
        self.calls_handled += 1
        return program, handler, args, None

    @staticmethod
    def _fault_reply(xid: int, exc: BaseException) -> RpcReply:
        fault = {"kind": type(exc).__name__, "detail": str(exc)}
        return RpcReply(xid, ReplyStatus.REMOTE_FAULT, encode_value(fault))

    @staticmethod
    def _success_reply(call: RpcCall, result: Any) -> RpcReply:
        try:
            body = CODECS.encode_result(call.prog, call.vers, call.proc, result)
        except XdrError as exc:
            return RpcServer._fault_reply(call.xid, exc)
        return RpcReply(call.xid, ReplyStatus.SUCCESS, body)

    def _observe(
        self,
        call: RpcCall,
        program: RpcProgram,
        ctx: Optional[CallContext],
        started: float,
    ) -> None:
        """Post-execution epilogue: service-time samples and chain flush.

        Measured service time per (program, proc) is the estimate
        admission control compares budgets against.  Observed into the
        process registry for reporting and into the server's own
        registry for admission decisions.
        """
        ended = self.transport.now()
        elapsed = ended - started
        labels = (program.name, str(call.proc))
        METRICS.observe("rpc.server.handler_seconds", elapsed, labels)
        if self.admission.shed:
            # Per-procedure estimates are only consulted by shedding.
            self._service_times.observe(
                "rpc.server.handler_seconds", elapsed, labels
            )
        if self._auto_capacity:
            # Aggregate stream feeding the "auto" capacity derivation.
            self._service_times.observe(
                "rpc.server.handler_seconds", elapsed, _ALL_PROCS
            )
        if call.deadline is not None and ended > call.deadline:
            # The deadline lapsed *mid-execution*: these handler
            # seconds bought an answer nobody is waiting for — the
            # waste admission control exists to avoid (compared
            # on/off in benchmarks/bench_overload_shedding.py).
            METRICS.inc("rpc.server.wasted_handler_seconds", labels, amount=elapsed)
            METRICS.inc("rpc.server.missed_deadline_executions", labels)
        if ctx is not None and (ctx.spans or ctx.spans_dropped):
            # The server-side chain ends here; flush best-effort
            # (no-op unless an exporter is installed).  Sampled-out
            # dispatches recorded nothing, so they skip the hub walk —
            # drop accounting lives with the chain owner (the caller).
            flush_context(ctx)

    def _execute(self, call: RpcCall) -> RpcReply:
        program, handler, args, early = self._prepare(call)
        if early is not None:
            return early
        # Reconstruct the caller's context from the wire fields and make
        # it ambient for the handler: nested calls (federation forwards,
        # 2PC rounds, value-adding services) inherit deadline and trace.
        ctx = self._context_for(call)
        started = self.transport.now()
        try:
            try:
                if ctx is not None:
                    # The server built this context from the wire and
                    # drops it after the dispatch; record a span only
                    # when an exporter will actually read the chain.
                    # A wire stamp of ``sampled=False`` means the chain
                    # can only ever be exported by the tail error keep,
                    # so the success path skips span bookkeeping
                    # entirely and the except arm reconstructs the span
                    # — head sampling then costs the hot path nothing.
                    if spans_wanted() and ctx.sampled is not False:
                        with ctx.span(
                            "server",
                            f"{program.name}:{call.proc}",
                            self.transport.now,
                        ):
                            with use_context(ctx):
                                result = handler(args)
                    else:
                        with use_context(ctx):
                            result = handler(args)
                else:
                    result = handler(args)
            except Exception as exc:  # noqa: BLE001 - faults cross the wire as data
                if ctx is not None and ctx.sampled is False and spans_wanted():
                    # Rebuild the span the fast path skipped: the tail
                    # keep still needs the error chain.
                    record = SpanRecord(
                        "server",
                        f"{program.name}:{call.proc}",
                        started_at=started,
                        elapsed=self.transport.now() - started,
                        outcome=type(exc).__name__,
                    )
                    ctx.record_span(record)
                return self._fault_reply(call.xid, exc)
            return self._success_reply(call, result)
        finally:
            self._observe(call, program, ctx, started)

    @staticmethod
    def _context_for(call: RpcCall) -> Optional[CallContext]:
        """The server-side view of the caller's context, if one was sent."""
        if not (call.trace_id or call.deadline is not None or call.hops is not None):
            return None
        if call.trace_id:
            return CallContext(
                trace_id=call.trace_id,
                deadline=call.deadline,
                hops=call.hops,
                sampled=call.sampled,
            )
        return CallContext(
            deadline=call.deadline, hops=call.hops, sampled=call.sampled
        )

    def close(self) -> None:
        dispatcher_for(self.transport).server = None
