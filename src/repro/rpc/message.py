"""RPC wire messages: CALL and REPLY.

Mirrors the shape of ONC RPC messages (xid, program, version, procedure)
with a simplified reply status enum.  Bodies are opaque byte strings —
normally the tagged encoding from :mod:`repro.rpc.xdr`.

CALL messages additionally carry the caller's
:class:`~repro.context.CallContext` on the wire: an optional absolute
deadline, a trace id, and a remaining hop budget, flagged by a bitmask so
absent fields cost four bytes total.

Both encodings are **self-delimiting** — every field is either fixed
width or length-prefixed — which is what makes the BATCH envelope free:
a batch is nothing but encoded messages laid back-to-back in one
transport payload (:func:`encode_batch` / :func:`decode_messages`).  A
peer that has never heard of batching decodes the same bytes one
message at a time; a batching peer saves one write/read per coalesced
message.  :class:`MessageAssembler` runs the same decoder incrementally
over a byte *stream*, using the :class:`~repro.rpc.errors.XdrTruncated`
/ :class:`~repro.rpc.errors.XdrError` distinction to tell "wait for
more bytes" from "drop the connection".
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.rpc.errors import XdrError, XdrTruncated
from repro.rpc.xdr import XdrDecoder

_MSG_CALL = 0
_MSG_REPLY = 1

_CTX_DEADLINE = 1
_CTX_TRACE = 2
_CTX_HOPS = 4
_CTX_SAMPLED = 8

# Frames are encoded with precompiled structs rather than the general
# XdrEncoder: the header shape is static, and one ``pack`` for the fixed
# prefix beats six method calls on the per-message fast path.  The byte
# layout is identical to what XdrEncoder produced (big-endian u32 words,
# opaques length-prefixed and zero-padded to 4).
_CALL_FIXED = struct.Struct(">IIIIII")  # xid, kind, prog, vers, proc, flags
_REPLY_FIXED = struct.Struct(">III")  # xid, kind, status
_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")
_PADDING = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")


def _opaque(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data + _PADDING[len(data) % 4]


class ReplyStatus(enum.IntEnum):
    """Outcome of a call as reported by the server."""

    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROC_UNAVAIL = 2
    GARBAGE_ARGS = 3
    REMOTE_FAULT = 4
    DEADLINE_EXCEEDED = 5
    #: The server declined the call under load *before* running it: the
    #: estimated service time exceeded the call's remaining deadline
    #: budget, or the admission queue was full.  Distinct from
    #: DEADLINE_EXCEEDED — the budget was still live, so the caller
    #: should immediately retry against an alternate offer rather than
    #: retransmit into the overloaded server.
    SHED = 6


@dataclass(frozen=True)
class RpcCall:
    """A request for procedure ``proc`` of program ``prog`` version ``vers``.

    ``deadline``/``trace_id``/``hops``/``sampled`` are the wire form of
    the caller's call context; all are optional so context-free callers
    (and pre-context peers) stay interoperable.  ``sampled`` is the head
    trace-sampling decision — only emitted once some hop has actually
    decided (``None`` means "no sampling policy weighed in" and adds no
    bytes, keeping frames byte-identical to pre-sampling peers).
    """

    xid: int
    prog: int
    vers: int
    proc: int
    body: bytes = b""
    deadline: Optional[float] = None
    trace_id: str = ""
    hops: Optional[int] = None
    sampled: Optional[bool] = None

    def encode(self) -> bytes:
        flags = 0
        if self.deadline is not None:
            flags |= _CTX_DEADLINE
        if self.trace_id:
            flags |= _CTX_TRACE
        if self.hops is not None:
            flags |= _CTX_HOPS
        if self.sampled is not None:
            flags |= _CTX_SAMPLED
        parts = [
            _CALL_FIXED.pack(
                self.xid, _MSG_CALL, self.prog, self.vers, self.proc, flags
            )
        ]
        if self.deadline is not None:
            parts.append(_F64.pack(self.deadline))
        if self.trace_id:
            parts.append(_opaque(self.trace_id.encode("utf-8")))
        if self.hops is not None:
            parts.append(_U32.pack(self.hops))
        if self.sampled is not None:
            parts.append(_U32.pack(1 if self.sampled else 0))
        parts.append(_opaque(self.body))
        return b"".join(parts)


@dataclass(frozen=True)
class RpcReply:
    """The server's answer, matched to the call by ``xid``."""

    xid: int
    status: ReplyStatus
    body: bytes = b""

    def encode(self) -> bytes:
        return _REPLY_FIXED.pack(self.xid, _MSG_REPLY, int(self.status)) + _opaque(
            self.body
        )


RpcMessage = Union[RpcCall, RpcReply]


def _decode_one(dec: XdrDecoder) -> RpcMessage:
    """Decode one message from the decoder's current offset."""
    xid, kind = dec.unpack_u32s(2)
    if kind == _MSG_CALL:
        prog, vers, proc, flags = dec.unpack_u32s(4)
        deadline = dec.unpack_double() if flags & _CTX_DEADLINE else None
        trace_id = dec.unpack_string() if flags & _CTX_TRACE else ""
        hops = dec.unpack_u32() if flags & _CTX_HOPS else None
        sampled = bool(dec.unpack_u32()) if flags & _CTX_SAMPLED else None
        body = dec.unpack_opaque()
        return RpcCall(
            xid, prog, vers, proc, body, deadline, trace_id, hops, sampled
        )
    if kind == _MSG_REPLY:
        status_raw = dec.unpack_u32()
        try:
            status = ReplyStatus(status_raw)
        except ValueError:
            raise XdrError(f"unknown reply status {status_raw}")
        body = dec.unpack_opaque()
        return RpcReply(xid, status, body)
    raise XdrError(f"unknown RPC message kind {kind}")


def decode_message(data: bytes) -> RpcMessage:
    """Decode bytes into an :class:`RpcCall` or :class:`RpcReply`."""
    dec = XdrDecoder(data)
    message = _decode_one(dec)
    if not dec.done():
        raise XdrError("trailing bytes after RPC message")
    return message


def decode_messages(data: bytes) -> List[RpcMessage]:
    """Decode a payload holding one *or more* back-to-back messages.

    This is the receive side of the BATCH envelope: since every message
    is self-delimiting, a batch needs no extra framing — the decoder
    just keeps going until the payload is exhausted.  A single-message
    payload decodes identically, so batching and non-batching peers
    interoperate in both directions.
    """
    dec = XdrDecoder(data)
    messages: List[RpcMessage] = []
    while not dec.done():
        messages.append(_decode_one(dec))
    if not messages:
        raise XdrError("empty RPC payload")
    return messages


def encode_batch(messages: Iterable[RpcMessage]) -> bytes:
    """Concatenate encoded messages into one BATCH payload."""
    return b"".join(message.encode() for message in messages)


class MessageAssembler:
    """Reassembles RPC messages from an arbitrarily-chunked byte stream.

    Feed it whatever the transport read — half a message, three and a
    bit, one byte at a time — and it yields every complete message as
    soon as its last byte arrives.  A read that stops mid-message
    (:class:`~repro.rpc.errors.XdrTruncated`) stalls until more bytes
    land; genuinely malformed bytes raise
    :class:`~repro.rpc.errors.XdrError` and the stream should be
    dropped, since a byte-stream decoder cannot resynchronise.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def pending(self) -> int:
        """Bytes buffered waiting for the rest of a message."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[RpcMessage]:
        """Absorb ``chunk``; return the messages it completed."""
        self._buffer.extend(chunk)
        messages: List[RpcMessage] = []
        dec = XdrDecoder(bytes(self._buffer))
        consumed = 0
        while not dec.done():
            try:
                messages.append(_decode_one(dec))
            except XdrTruncated:
                break
            consumed = dec.offset
        if consumed:
            del self._buffer[:consumed]
        return messages
