"""RPC wire messages: CALL and REPLY.

Mirrors the shape of ONC RPC messages (xid, program, version, procedure)
with a simplified reply status enum.  Bodies are opaque byte strings —
normally the tagged encoding from :mod:`repro.rpc.xdr`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.rpc.errors import XdrError
from repro.rpc.xdr import XdrDecoder, XdrEncoder

_MSG_CALL = 0
_MSG_REPLY = 1


class ReplyStatus(enum.IntEnum):
    """Outcome of a call as reported by the server."""

    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROC_UNAVAIL = 2
    GARBAGE_ARGS = 3
    REMOTE_FAULT = 4


@dataclass(frozen=True)
class RpcCall:
    """A request for procedure ``proc`` of program ``prog`` version ``vers``."""

    xid: int
    prog: int
    vers: int
    proc: int
    body: bytes = b""

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.xid)
        enc.pack_u32(_MSG_CALL)
        enc.pack_u32(self.prog)
        enc.pack_u32(self.vers)
        enc.pack_u32(self.proc)
        enc.pack_opaque(self.body)
        return enc.getvalue()


@dataclass(frozen=True)
class RpcReply:
    """The server's answer, matched to the call by ``xid``."""

    xid: int
    status: ReplyStatus
    body: bytes = b""

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.xid)
        enc.pack_u32(_MSG_REPLY)
        enc.pack_u32(int(self.status))
        enc.pack_opaque(self.body)
        return enc.getvalue()


def decode_message(data: bytes):
    """Decode bytes into an :class:`RpcCall` or :class:`RpcReply`."""
    dec = XdrDecoder(data)
    xid = dec.unpack_u32()
    kind = dec.unpack_u32()
    if kind == _MSG_CALL:
        prog = dec.unpack_u32()
        vers = dec.unpack_u32()
        proc = dec.unpack_u32()
        body = dec.unpack_opaque()
        message = RpcCall(xid, prog, vers, proc, body)
    elif kind == _MSG_REPLY:
        status_raw = dec.unpack_u32()
        try:
            status = ReplyStatus(status_raw)
        except ValueError:
            raise XdrError(f"unknown reply status {status_raw}")
        body = dec.unpack_opaque()
        message = RpcReply(xid, status, body)
    else:
        raise XdrError(f"unknown RPC message kind {kind}")
    if not dec.done():
        raise XdrError("trailing bytes after RPC message")
    return message
