"""RPC wire messages: CALL and REPLY.

Mirrors the shape of ONC RPC messages (xid, program, version, procedure)
with a simplified reply status enum.  Bodies are opaque byte strings —
normally the tagged encoding from :mod:`repro.rpc.xdr`.

CALL messages additionally carry the caller's
:class:`~repro.context.CallContext` on the wire: an optional absolute
deadline, a trace id, and a remaining hop budget, flagged by a bitmask so
absent fields cost four bytes total.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.rpc.errors import XdrError
from repro.rpc.xdr import XdrDecoder, XdrEncoder

_MSG_CALL = 0
_MSG_REPLY = 1

_CTX_DEADLINE = 1
_CTX_TRACE = 2
_CTX_HOPS = 4


class ReplyStatus(enum.IntEnum):
    """Outcome of a call as reported by the server."""

    SUCCESS = 0
    PROG_UNAVAIL = 1
    PROC_UNAVAIL = 2
    GARBAGE_ARGS = 3
    REMOTE_FAULT = 4
    DEADLINE_EXCEEDED = 5
    #: The server declined the call under load *before* running it: the
    #: estimated service time exceeded the call's remaining deadline
    #: budget, or the admission queue was full.  Distinct from
    #: DEADLINE_EXCEEDED — the budget was still live, so the caller
    #: should immediately retry against an alternate offer rather than
    #: retransmit into the overloaded server.
    SHED = 6


@dataclass(frozen=True)
class RpcCall:
    """A request for procedure ``proc`` of program ``prog`` version ``vers``.

    ``deadline``/``trace_id``/``hops`` are the wire form of the caller's
    call context; all three are optional so context-free callers (and
    pre-context peers) stay interoperable.
    """

    xid: int
    prog: int
    vers: int
    proc: int
    body: bytes = b""
    deadline: Optional[float] = None
    trace_id: str = ""
    hops: Optional[int] = None

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.xid)
        enc.pack_u32(_MSG_CALL)
        enc.pack_u32(self.prog)
        enc.pack_u32(self.vers)
        enc.pack_u32(self.proc)
        flags = 0
        if self.deadline is not None:
            flags |= _CTX_DEADLINE
        if self.trace_id:
            flags |= _CTX_TRACE
        if self.hops is not None:
            flags |= _CTX_HOPS
        enc.pack_u32(flags)
        if self.deadline is not None:
            enc.pack_double(self.deadline)
        if self.trace_id:
            enc.pack_string(self.trace_id)
        if self.hops is not None:
            enc.pack_u32(self.hops)
        enc.pack_opaque(self.body)
        return enc.getvalue()


@dataclass(frozen=True)
class RpcReply:
    """The server's answer, matched to the call by ``xid``."""

    xid: int
    status: ReplyStatus
    body: bytes = b""

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_u32(self.xid)
        enc.pack_u32(_MSG_REPLY)
        enc.pack_u32(int(self.status))
        enc.pack_opaque(self.body)
        return enc.getvalue()


def decode_message(data: bytes):
    """Decode bytes into an :class:`RpcCall` or :class:`RpcReply`."""
    dec = XdrDecoder(data)
    xid = dec.unpack_u32()
    kind = dec.unpack_u32()
    if kind == _MSG_CALL:
        prog = dec.unpack_u32()
        vers = dec.unpack_u32()
        proc = dec.unpack_u32()
        flags = dec.unpack_u32()
        deadline = dec.unpack_double() if flags & _CTX_DEADLINE else None
        trace_id = dec.unpack_string() if flags & _CTX_TRACE else ""
        hops = dec.unpack_u32() if flags & _CTX_HOPS else None
        body = dec.unpack_opaque()
        message = RpcCall(xid, prog, vers, proc, body, deadline, trace_id, hops)
    elif kind == _MSG_REPLY:
        status_raw = dec.unpack_u32()
        try:
            status = ReplyStatus(status_raw)
        except ValueError:
            raise XdrError(f"unknown reply status {status_raw}")
        body = dec.unpack_opaque()
        message = RpcReply(xid, status, body)
    else:
        raise XdrError(f"unknown RPC message kind {kind}")
    if not dec.done():
        raise XdrError("trailing bytes after RPC message")
    return message
