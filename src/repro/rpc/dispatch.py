"""Per-transport message demultiplexer.

A node in the COSM network is often client and server at the same time
(e.g. a browser answers registration calls *and* forwards queries to peer
browsers).  Both roles share one transport; the dispatcher routes incoming
CALL messages to the server half and REPLY messages to the client half.
"""

from __future__ import annotations

from typing import Optional

from repro.net.endpoints import Address
from repro.rpc.errors import XdrError
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply, decode_messages
from repro.rpc.transport import Transport
from repro.telemetry.metrics import METRICS


class RpcDispatcher:
    """Routes decoded RPC messages to the attached client/server.

    Servers that perform their own admission control (``owns_admission``
    on :class:`~repro.rpc.server.RpcServer`) receive every call intact:
    deadline rejection, shedding, and duplicate handling happen in one
    place, with one set of counters, *behind* the at-most-once cache (a
    cached reply replays even for a late retransmission).  For foreign
    server objects without that attribute the dispatcher keeps the legacy
    pre-check: calls whose wire deadline has already passed are answered
    ``DEADLINE_EXCEEDED`` before the server sees them.  STATS probes
    (:data:`repro.rpc.stats.STATS_PROGRAM`) are exempt from that
    pre-check — introspection is answered regardless of a stale probe
    deadline.
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.server = None  # type: Optional[object]
        self.client = None  # type: Optional[object]
        self.malformed_count = 0
        self.expired_rejected = 0
        transport.set_receiver(self._on_message)

    def _on_message(self, source: Address, payload: bytes) -> None:
        try:
            messages = decode_messages(payload)
        except XdrError:
            self.malformed_count += 1
            METRICS.inc("rpc.dispatch.malformed")
            return
        calls = [m for m in messages if isinstance(m, RpcCall)]
        for message in messages:
            if isinstance(message, RpcReply):
                if self.client is not None:
                    self.client.handle_reply(source, message)
        if not calls or self.server is None:
            return
        if len(calls) > 1 and hasattr(self.server, "handle_batch"):
            # A BATCH envelope landed on a batch-aware server: let it
            # drain every call before writing, so replies coalesce.
            self.server.handle_batch(source, calls)
            return
        for call in calls:
            self._route_call(source, call)

    def _route_call(self, source: Address, message: RpcCall) -> None:
        if getattr(self.server, "owns_admission", False):
            self.server.handle_call(source, message)
            return
        from repro.rpc.stats import STATS_PROGRAM

        if (
            message.prog != STATS_PROGRAM
            and message.deadline is not None
            and self.transport.now() >= message.deadline
        ):
            self.expired_rejected += 1
            METRICS.inc(
                "rpc.dispatch.expired_rejected",
                (str(message.prog), str(message.proc)),
            )
            reply = RpcReply(message.xid, ReplyStatus.DEADLINE_EXCEEDED)
            self.transport.send(source, reply.encode())
            return
        self.server.handle_call(source, message)


def dispatcher_for(transport: Transport) -> RpcDispatcher:
    """Return the transport's dispatcher, creating it on first use."""
    existing = getattr(transport, "_rpc_dispatcher", None)
    if existing is None:
        existing = RpcDispatcher(transport)
        transport._rpc_dispatcher = existing
    return existing
