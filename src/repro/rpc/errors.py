"""RPC error hierarchy."""

from __future__ import annotations

from repro.errors import CommunicationError, ProtocolError


class RpcError(CommunicationError):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """No reply arrived within the client's deadline (after retries)."""


class DeadlineExceeded(RpcTimeout):
    """The call's :class:`~repro.context.CallContext` deadline expired.

    Raised client-side when the remaining budget hits zero before (or
    between) attempts, and surfaced for the server-side rejection carried
    by ``ReplyStatus.DEADLINE_EXCEEDED``.  Subclasses :class:`RpcTimeout`
    so pre-context code catching timeouts keeps working.
    """


class ServerShedding(RpcError):
    """The server shed the call under load (``ReplyStatus.SHED``).

    The call's deadline budget was still live when the server declined
    it — the server judged (from its service-time histogram) that the
    work could not finish inside the remaining budget, or its admission
    queue was full.  Deliberately *not* a :class:`RpcTimeout`: the right
    reaction is to retry immediately against an alternate offer, not to
    retransmit into the overloaded server or treat the peer as dead.
    """

    retryable = True


class ProgramUnavailable(RpcError):
    """The destination server does not host the requested program."""


class ProcedureUnavailable(RpcError):
    """The program exists but the procedure number is not registered."""


class GarbageArguments(RpcError):
    """The server could not decode the call arguments."""


class RemoteFault(RpcError):
    """The remote procedure raised; carries the remote error text."""

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


class XdrError(ProtocolError):
    """Malformed XDR data or an unencodable value."""


class XdrTruncated(XdrError):
    """XDR data ended before the value did.

    Distinct from :class:`XdrError` so stream reassembly can tell
    "incomplete, wait for more bytes" from "malformed, drop it" — the
    :class:`~repro.rpc.message.MessageAssembler` stalls on truncation
    and raises on anything else.
    """
