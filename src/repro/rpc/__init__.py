"""From-scratch RPC stack (the paper's "Communication Level").

Replaces the prototype's Sun ONC RPC with a compatible-in-spirit layer:

* :mod:`repro.rpc.xdr` — XDR-style binary marshalling plus a tagged codec
  for dynamic (SID-driven) marshalling of arbitrary values,
* :mod:`repro.rpc.message` — CALL/REPLY message format with transaction ids,
* :mod:`repro.rpc.transport` — pluggable transports (simulated network, TCP),
* :mod:`repro.rpc.server` / :mod:`repro.rpc.client` — dispatch with an
  at-most-once duplicate-request cache, retrying client handles,
* :mod:`repro.rpc.portmap` — the portmapper on well-known port 111,
* :mod:`repro.rpc.multicast` — multicast/broadcast calls with reply
  gathering (the extended communication functions of Fig. 6),
* :mod:`repro.rpc.txn` — transactional RPC (two-phase commit coordinator),
  the "Transactional RPC" box of Fig. 6,
* :mod:`repro.rpc.resilience` — client-side failure recovery: decorrelated
  backoff, ranked-offer failover, per-endpoint circuit breakers,
* :mod:`repro.rpc.codec` — compiled per-signature wire codecs with
  transparent fallback to the tagged dynamic-marshalling path.
"""

from repro.rpc.aio import (
    AsyncBatchingClient,
    AsyncRpcClient,
    AsyncRpcServer,
    AsyncTcpTransport,
)
from repro.rpc.client import BatchBuffer, BatchingClient, RpcClient
from repro.rpc.codec import CODECS, CodecFallback, CodecRegistry, CompiledCodec
from repro.rpc.errors import (
    DeadlineExceeded,
    GarbageArguments,
    ProcedureUnavailable,
    ProgramUnavailable,
    RemoteFault,
    RpcError,
    RpcTimeout,
    ServerShedding,
)
from repro.rpc.message import (
    MessageAssembler,
    ReplyStatus,
    RpcCall,
    RpcReply,
    decode_messages,
    encode_batch,
)
from repro.rpc.multicast import MulticastCaller
from repro.rpc.portmap import PORTMAP_PORT, PORTMAP_PROGRAM, Portmapper, portmap_lookup
from repro.rpc.resilience import (
    BackoffPolicy,
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpen,
    ResilientCaller,
)
from repro.rpc.server import (
    AdmissionPolicy,
    AdmissionQueue,
    RpcProgram,
    RpcServer,
    derive_capacity,
)
from repro.rpc.transport import SimTransport, TcpTransport, Transport
from repro.rpc.txn import TransactionCoordinator, TransactionParticipant, TxnOutcome
from repro.rpc.xdr import XdrDecoder, XdrEncoder, decode_value, encode_value

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "AsyncBatchingClient",
    "AsyncRpcClient",
    "AsyncRpcServer",
    "AsyncTcpTransport",
    "BackoffPolicy",
    "BatchBuffer",
    "BatchingClient",
    "BreakerPolicy",
    "CODECS",
    "CircuitBreaker",
    "CircuitOpen",
    "CodecFallback",
    "CodecRegistry",
    "CompiledCodec",
    "DeadlineExceeded",
    "GarbageArguments",
    "MessageAssembler",
    "MulticastCaller",
    "PORTMAP_PORT",
    "PORTMAP_PROGRAM",
    "Portmapper",
    "ProcedureUnavailable",
    "ProgramUnavailable",
    "RemoteFault",
    "ReplyStatus",
    "ResilientCaller",
    "RpcCall",
    "RpcClient",
    "RpcError",
    "RpcProgram",
    "RpcReply",
    "RpcServer",
    "RpcTimeout",
    "ServerShedding",
    "SimTransport",
    "TcpTransport",
    "Transport",
    "TransactionCoordinator",
    "TransactionParticipant",
    "TxnOutcome",
    "XdrDecoder",
    "XdrEncoder",
    "decode_messages",
    "decode_value",
    "derive_capacity",
    "encode_batch",
    "encode_value",
    "portmap_lookup",
]
