"""RPC client handle with retransmission and typed error surfacing."""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.context import CallContext, SpanRecord, current_context
from repro.net.endpoints import Address
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import (
    DeadlineExceeded,
    GarbageArguments,
    ProcedureUnavailable,
    ProgramUnavailable,
    RemoteFault,
    RpcError,
    RpcTimeout,
    ServerShedding,
)
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.transport import Transport
from repro.rpc.xdr import decode_value, encode_value
from repro.telemetry.hub import flush_context
from repro.telemetry.metrics import METRICS


class RetiredXids:
    """Bounded memory of finished transaction ids.

    Late duplicate replies for a retired xid are dropped instead of
    accumulating in the pending table forever.  Shared by the sync and
    async clients; behaves enough like the original ``OrderedDict`` for
    introspection (``len``, ``in``, ``reversed``).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def add(self, xid: int) -> None:
        self._entries[xid] = None
        self._entries.move_to_end(xid)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __contains__(self, xid: int) -> bool:
        return xid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __reversed__(self):
        return reversed(self._entries)


def reply_to_result(
    reply: RpcReply, destination: Address, prog: int, vers: int, proc: int
) -> Any:
    """Decode a reply body or raise the typed error its status maps to.

    One mapping for every client flavour (sync, async, multicast), so a
    given status always surfaces as the same exception type.
    """
    if reply.status is ReplyStatus.SUCCESS:
        return decode_value(reply.body)
    if reply.status is ReplyStatus.PROG_UNAVAIL:
        raise ProgramUnavailable(f"program {prog} v{vers} not at {destination}")
    if reply.status is ReplyStatus.PROC_UNAVAIL:
        raise ProcedureUnavailable(
            f"procedure {proc} of program {prog} not at {destination}"
        )
    if reply.status is ReplyStatus.GARBAGE_ARGS:
        raise GarbageArguments(f"arguments rejected by {destination}")
    if reply.status is ReplyStatus.DEADLINE_EXCEEDED:
        raise DeadlineExceeded(
            f"{destination} rejected prog={prog} proc={proc}: deadline expired"
        )
    if reply.status is ReplyStatus.SHED:
        # The server declined under load while our budget was still
        # live.  Surface it as immediately retryable — the caller
        # should try an alternate offer, not hammer this server.
        raise ServerShedding(
            f"{destination} shed prog={prog} proc={proc} under load; "
            f"retry against an alternate offer"
        )
    fault = decode_value(reply.body)
    raise RemoteFault(fault.get("kind", "Error"), fault.get("detail", ""))


def resolve_context(
    context: Optional[CallContext],
    timeout: Optional[float],
    retries: Optional[int],
    ambient: Optional[CallContext],
    default_timeout: float,
    default_retries: int,
    now: float,
) -> CallContext:
    """Resolve the context governing one call.

    An explicit ``context`` wins outright.  Otherwise a shim context is
    built from the legacy kwargs (or the client's configured defaults) —
    and when this call happens *inside* an RPC handler, the ambient
    request context narrows it: the shim inherits the trace id, span
    chain (list and lock), hop budget, and scope, and its deadline is
    capped by the caller's remaining budget.  Local configuration still
    paces attempts; the inherited deadline bounds the total.
    """
    if context is not None:
        return context
    shim = CallContext.from_legacy(
        default_timeout if timeout is None else timeout,
        default_retries if retries is None else retries,
        now,
        trace_id=ambient.trace_id if ambient is not None else None,
    )
    if ambient is not None:
        shim.share_chain(ambient)
        if ambient.deadline is not None:
            shim.deadline = min(shim.deadline, ambient.deadline)
        shim.hops = ambient.hops
        shim.visited = ambient.visited
    return shim


class RpcClient:
    """Issues calls over a transport.

    Retransmits with the *same* xid on timeout so the server's at-most-once
    cache can suppress re-execution.  Timing is governed by a
    :class:`~repro.context.CallContext`: each attempt's wait is carved out
    of the context's *remaining* deadline budget
    (:meth:`CallContext.attempt_timeout`).  The legacy ``timeout``/
    ``retries`` kwargs remain as a shim that builds an equivalent context
    with total budget ``timeout * (retries + 1)``.

    Calls made while serving an RPC (e.g. a trader forwarding a federated
    import) inherit the ambient server-side context automatically, so one
    deadline and one trace id cover the whole cascade.
    """

    _xid_counter = itertools.count(1)

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
        retired_xid_capacity: int = 4096,
    ) -> None:
        self.transport = transport
        self.timeout = timeout
        self.retries = retries
        self._pending: Dict[int, RpcReply] = {}
        # Bounded memory of finished xids: late duplicate replies for them
        # are dropped instead of leaking into ``_pending`` forever.
        self._retired = RetiredXids(retired_xid_capacity)
        self.calls_sent = 0
        self.retransmissions = 0
        self.duplicate_replies_dropped = 0
        dispatcher_for(transport).client = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def handle_reply(self, source: Address, reply: RpcReply) -> None:
        """Entry point from the dispatcher."""
        if reply.xid in self._retired:
            self.duplicate_replies_dropped += 1
            METRICS.inc("rpc.client.duplicate_replies_dropped")
            return
        self._pending[reply.xid] = reply

    def retire_xid(self, xid: int) -> None:
        """Mark ``xid`` finished: later replies for it are dropped."""
        self._pending.pop(xid, None)
        self._retired.add(xid)

    def _effective_context(
        self,
        context: Optional[CallContext],
        timeout: Optional[float],
        retries: Optional[int],
        ambient: Optional[CallContext],
    ) -> CallContext:
        return resolve_context(
            context, timeout, retries, ambient,
            self.timeout, self.retries, self.transport.now(),
        )

    def call(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> Any:
        """Call and decode; raises a typed :class:`RpcError` on failure."""
        reply = self.call_raw(
            destination, prog, vers, proc, encode_value(args), timeout, retries,
            context,
        )
        return reply_to_result(reply, destination, prog, vers, proc)

    def call_raw(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> RpcReply:
        """Send pre-encoded bytes and return the raw reply."""
        ambient = current_context() if context is None else None
        ctx = self._effective_context(context, timeout, retries, ambient)
        # A shim built with no ambient request owns its chain: nobody
        # else will ever see it, so flush it at the reply boundary
        # (a no-op unless an exporter is installed).
        owns_chain = context is None and ambient is None
        try:
            with ctx.span("rpc", f"call {prog}:{proc}", self.transport.now) as span:
                return self._call_attempts(
                    ctx, destination, prog, vers, proc, body, span
                )
        finally:
            if owns_chain:
                flush_context(ctx)

    def _call_attempts(
        self,
        ctx: CallContext,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        span: Optional[SpanRecord] = None,
    ) -> RpcReply:
        now = self.transport.now()
        labels = (str(prog), str(proc))
        if ctx.expired(now):
            METRICS.inc("rpc.client.deadline_exceeded", labels)
            raise DeadlineExceeded(
                f"deadline expired before calling {destination} "
                f"(trace {ctx.trace_id})"
            )
        xid = next(self._xid_counter)
        call = RpcCall(
            xid, prog, vers, proc, body,
            deadline=ctx.deadline, trace_id=ctx.trace_id, hops=ctx.hops,
        )
        encoded = call.encode()
        attempts = ctx.retry.attempts
        try:
            for attempt in range(attempts):
                now = self.transport.now()
                if ctx.expired(now):
                    METRICS.inc("rpc.client.deadline_exceeded", labels)
                    raise DeadlineExceeded(
                        f"deadline expired after {attempt} attempt(s) to "
                        f"{destination} (trace {ctx.trace_id})"
                    )
                if attempt:
                    self.retransmissions += 1
                    METRICS.inc("rpc.client.retransmissions", labels)
                    if span is not None:
                        # Wire-level visibility: each extra attempt is an
                        # event on the rpc span, exported with the chain.
                        span.add_event("retransmission", at=now, attempt=attempt)
                self.calls_sent += 1
                wait = ctx.attempt_timeout(now, attempts - attempt)
                self.transport.send(destination, encoded)
                if self.transport.wait(lambda: xid in self._pending, wait):
                    reply = self._pending.pop(xid)
                    if reply.status is ReplyStatus.SHED:
                        METRICS.inc("rpc.client.shed_received", labels)
                        if span is not None:
                            span.add_event(
                                "shed", at=self.transport.now(), attempt=attempt
                            )
                    return reply
            if ctx.expired(self.transport.now()) and ctx.retry.attempt_timeout is None:
                METRICS.inc("rpc.client.deadline_exceeded", labels)
                raise DeadlineExceeded(
                    f"no reply from {destination} within the deadline "
                    f"(trace {ctx.trace_id})"
                )
            raise RpcTimeout(
                f"no reply from {destination} for prog={prog} proc={proc} "
                f"after {attempts} attempt(s)"
            )
        finally:
            self.retire_xid(xid)

    def ping(self, destination: Address, prog: int, vers: int = 1) -> bool:
        """True when the destination answers procedure 0 (NULL proc)."""
        try:
            self.call(destination, prog, vers, 0)
            return True
        except RpcError:
            return False

    def close(self) -> None:
        dispatcher_for(self.transport).client = None
