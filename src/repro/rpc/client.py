"""RPC client handle with retransmission and typed error surfacing."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.net.endpoints import Address
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import (
    GarbageArguments,
    ProcedureUnavailable,
    ProgramUnavailable,
    RemoteFault,
    RpcError,
    RpcTimeout,
)
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.transport import Transport
from repro.rpc.xdr import decode_value, encode_value


class RpcClient:
    """Issues calls over a transport.

    Retransmits with the *same* xid on timeout so the server's at-most-once
    cache can suppress re-execution; the total deadline is
    ``timeout * (retries + 1)``.
    """

    _xid_counter = itertools.count(1)

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
    ) -> None:
        self.transport = transport
        self.timeout = timeout
        self.retries = retries
        self._pending: Dict[int, RpcReply] = {}
        self.calls_sent = 0
        self.retransmissions = 0
        dispatcher_for(transport).client = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def handle_reply(self, source: Address, reply: RpcReply) -> None:
        """Entry point from the dispatcher."""
        # Late duplicates of an answered xid are simply overwritten/ignored.
        self._pending[reply.xid] = reply

    def call(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> Any:
        """Call and decode; raises a typed :class:`RpcError` on failure."""
        reply = self.call_raw(
            destination, prog, vers, proc, encode_value(args), timeout, retries
        )
        if reply.status is ReplyStatus.SUCCESS:
            return decode_value(reply.body)
        if reply.status is ReplyStatus.PROG_UNAVAIL:
            raise ProgramUnavailable(f"program {prog} v{vers} not at {destination}")
        if reply.status is ReplyStatus.PROC_UNAVAIL:
            raise ProcedureUnavailable(f"procedure {proc} of program {prog} not at {destination}")
        if reply.status is ReplyStatus.GARBAGE_ARGS:
            raise GarbageArguments(f"arguments rejected by {destination}")
        fault = decode_value(reply.body)
        raise RemoteFault(fault.get("kind", "Error"), fault.get("detail", ""))

    def call_raw(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> RpcReply:
        """Send pre-encoded bytes and return the raw reply."""
        timeout = self.timeout if timeout is None else timeout
        retries = self.retries if retries is None else retries
        xid = next(self._xid_counter)
        call = RpcCall(xid, prog, vers, proc, body)
        encoded = call.encode()
        attempts = retries + 1
        try:
            for attempt in range(attempts):
                if attempt:
                    self.retransmissions += 1
                self.calls_sent += 1
                self.transport.send(destination, encoded)
                if self.transport.wait(lambda: xid in self._pending, timeout):
                    return self._pending.pop(xid)
            raise RpcTimeout(
                f"no reply from {destination} for prog={prog} proc={proc} "
                f"after {attempts} attempt(s) of {timeout}s"
            )
        finally:
            self._pending.pop(xid, None)

    def ping(self, destination: Address, prog: int, vers: int = 1) -> bool:
        """True when the destination answers procedure 0 (NULL proc)."""
        try:
            self.call(destination, prog, vers, 0)
            return True
        except RpcError:
            return False

    def close(self) -> None:
        dispatcher_for(self.transport).client = None
