"""RPC client handles: retransmission, typed errors, and call batching.

:class:`RpcClient` is the one-call-per-write baseline.
:class:`BatchingClient` adds the wire fast lane: concurrent calls to the
same endpoint coalesce into a single BATCH payload (one ``send`` for
many CALL frames), flushed when a count, byte, or deadline-slack
watermark trips — see :class:`BatchBuffer`.  Batching never changes
call semantics: each call keeps its own xid, deadline, retransmission
schedule, and typed error surface.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.context import CallContext, SpanRecord, current_context
from repro.net.endpoints import Address
from repro.rpc.codec import CODECS
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import (
    DeadlineExceeded,
    GarbageArguments,
    ProcedureUnavailable,
    ProgramUnavailable,
    RemoteFault,
    RpcError,
    RpcTimeout,
    ServerShedding,
)
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.transport import Transport
from repro.rpc.xdr import decode_value
from repro.telemetry import sampling
from repro.telemetry.hub import flush_context
from repro.telemetry.metrics import METRICS


class RetiredXids:
    """Bounded memory of finished transaction ids.

    Late duplicate replies for a retired xid are dropped instead of
    accumulating in the pending table forever.  Shared by the sync and
    async clients; behaves enough like the original ``OrderedDict`` for
    introspection (``len``, ``in``, ``reversed``).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def add(self, xid: int) -> None:
        self._entries[xid] = None
        self._entries.move_to_end(xid)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __contains__(self, xid: int) -> bool:
        return xid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __reversed__(self):
        return reversed(self._entries)


def reply_to_result(
    reply: RpcReply, destination: Address, prog: int, vers: int, proc: int
) -> Any:
    """Decode a reply body or raise the typed error its status maps to.

    One mapping for every client flavour (sync, async, multicast), so a
    given status always surfaces as the same exception type.
    """
    if reply.status is ReplyStatus.SUCCESS:
        return CODECS.decode_result(prog, vers, proc, reply.body)
    if reply.status is ReplyStatus.PROG_UNAVAIL:
        raise ProgramUnavailable(f"program {prog} v{vers} not at {destination}")
    if reply.status is ReplyStatus.PROC_UNAVAIL:
        raise ProcedureUnavailable(
            f"procedure {proc} of program {prog} not at {destination}"
        )
    if reply.status is ReplyStatus.GARBAGE_ARGS:
        raise GarbageArguments(f"arguments rejected by {destination}")
    if reply.status is ReplyStatus.DEADLINE_EXCEEDED:
        raise DeadlineExceeded(
            f"{destination} rejected prog={prog} proc={proc}: deadline expired"
        )
    if reply.status is ReplyStatus.SHED:
        # The server declined under load while our budget was still
        # live.  Surface it as immediately retryable — the caller
        # should try an alternate offer, not hammer this server.
        raise ServerShedding(
            f"{destination} shed prog={prog} proc={proc} under load; "
            f"retry against an alternate offer"
        )
    fault = decode_value(reply.body)
    raise RemoteFault(fault.get("kind", "Error"), fault.get("detail", ""))


def resolve_context(
    context: Optional[CallContext],
    timeout: Optional[float],
    retries: Optional[int],
    ambient: Optional[CallContext],
    default_timeout: float,
    default_retries: int,
    now: float,
) -> CallContext:
    """Resolve the context governing one call.

    An explicit ``context`` wins outright.  Otherwise a shim context is
    built from the legacy kwargs (or the client's configured defaults) —
    and when this call happens *inside* an RPC handler, the ambient
    request context narrows it: the shim inherits the trace id, span
    chain (list and lock), hop budget, and scope, and its deadline is
    capped by the caller's remaining budget.  Local configuration still
    paces attempts; the inherited deadline bounds the total.
    """
    if context is not None:
        return context
    shim = CallContext.from_legacy(
        default_timeout if timeout is None else timeout,
        default_retries if retries is None else retries,
        now,
        trace_id=ambient.trace_id if ambient is not None else None,
    )
    if ambient is not None:
        shim.share_chain(ambient)
        if ambient.deadline is not None:
            shim.deadline = min(shim.deadline, ambient.deadline)
        shim.hops = ambient.hops
        shim.visited = ambient.visited
        shim.sampled = ambient.sampled
    return shim


class RpcClient:
    """Issues calls over a transport.

    Retransmits with the *same* xid on timeout so the server's at-most-once
    cache can suppress re-execution.  Timing is governed by a
    :class:`~repro.context.CallContext`: each attempt's wait is carved out
    of the context's *remaining* deadline budget
    (:meth:`CallContext.attempt_timeout`).  The legacy ``timeout``/
    ``retries`` kwargs remain as a shim that builds an equivalent context
    with total budget ``timeout * (retries + 1)``.

    Calls made while serving an RPC (e.g. a trader forwarding a federated
    import) inherit the ambient server-side context automatically, so one
    deadline and one trace id cover the whole cascade.
    """

    _xid_counter = itertools.count(1)

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
        retired_xid_capacity: int = 4096,
    ) -> None:
        self.transport = transport
        self.timeout = timeout
        self.retries = retries
        self._pending: Dict[int, RpcReply] = {}
        # Bounded memory of finished xids: late duplicate replies for them
        # are dropped instead of leaking into ``_pending`` forever.
        self._retired = RetiredXids(retired_xid_capacity)
        self.calls_sent = 0
        self.retransmissions = 0
        self.duplicate_replies_dropped = 0
        dispatcher_for(transport).client = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def handle_reply(self, source: Address, reply: RpcReply) -> None:
        """Entry point from the dispatcher."""
        if reply.xid in self._retired:
            self.duplicate_replies_dropped += 1
            METRICS.inc("rpc.client.duplicate_replies_dropped")
            return
        self._pending[reply.xid] = reply

    def retire_xid(self, xid: int) -> None:
        """Mark ``xid`` finished: later replies for it are dropped."""
        self._pending.pop(xid, None)
        self._retired.add(xid)

    def _effective_context(
        self,
        context: Optional[CallContext],
        timeout: Optional[float],
        retries: Optional[int],
        ambient: Optional[CallContext],
    ) -> CallContext:
        return resolve_context(
            context, timeout, retries, ambient,
            self.timeout, self.retries, self.transport.now(),
        )

    def call(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> Any:
        """Call and decode; raises a typed :class:`RpcError` on failure."""
        reply = self.call_raw(
            destination, prog, vers, proc,
            CODECS.encode_args(prog, vers, proc, args), timeout, retries,
            context,
        )
        return reply_to_result(reply, destination, prog, vers, proc)

    def call_raw(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> RpcReply:
        """Send pre-encoded bytes and return the raw reply."""
        ambient = current_context() if context is None else None
        ctx = self._effective_context(context, timeout, retries, ambient)
        # A shim built with no ambient request owns its chain: nobody
        # else will ever see it, so flush it at the reply boundary
        # (a no-op unless an exporter is installed).
        owns_chain = context is None and ambient is None
        try:
            with ctx.span("rpc", f"call {prog}:{proc}", self.transport.now) as span:
                return self._call_attempts(
                    ctx, destination, prog, vers, proc, body, span
                )
        finally:
            if owns_chain:
                flush_context(ctx)

    def _call_attempts(
        self,
        ctx: CallContext,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        span: Optional[SpanRecord] = None,
    ) -> RpcReply:
        now = self.transport.now()
        labels = (str(prog), str(proc))
        if ctx.expired(now):
            METRICS.inc("rpc.client.deadline_exceeded", labels)
            raise DeadlineExceeded(
                f"deadline expired before calling {destination} "
                f"(trace {ctx.trace_id})"
            )
        xid = next(self._xid_counter)
        call = RpcCall(
            xid, prog, vers, proc, body,
            deadline=ctx.deadline, trace_id=ctx.trace_id, hops=ctx.hops,
            sampled=sampling.mark(ctx),
        )
        encoded = call.encode()
        attempts = ctx.retry.attempts
        try:
            for attempt in range(attempts):
                now = self.transport.now()
                if ctx.expired(now):
                    METRICS.inc("rpc.client.deadline_exceeded", labels)
                    raise DeadlineExceeded(
                        f"deadline expired after {attempt} attempt(s) to "
                        f"{destination} (trace {ctx.trace_id})"
                    )
                if attempt:
                    self.retransmissions += 1
                    METRICS.inc("rpc.client.retransmissions", labels)
                    if span is not None:
                        # Wire-level visibility: each extra attempt is an
                        # event on the rpc span, exported with the chain.
                        span.add_event("retransmission", at=now, attempt=attempt)
                self.calls_sent += 1
                wait = ctx.attempt_timeout(now, attempts - attempt)
                self._send_call(destination, encoded, ctx.deadline)
                if self.transport.wait(lambda: xid in self._pending, wait):
                    reply = self._pending.pop(xid)
                    if reply.status is ReplyStatus.SHED:
                        METRICS.inc("rpc.client.shed_received", labels)
                        if span is not None:
                            span.add_event(
                                "shed", at=self.transport.now(), attempt=attempt
                            )
                    return reply
            if ctx.expired(self.transport.now()) and ctx.retry.attempt_timeout is None:
                METRICS.inc("rpc.client.deadline_exceeded", labels)
                raise DeadlineExceeded(
                    f"no reply from {destination} within the deadline "
                    f"(trace {ctx.trace_id})"
                )
            raise RpcTimeout(
                f"no reply from {destination} for prog={prog} proc={proc} "
                f"after {attempts} attempt(s)"
            )
        finally:
            self.retire_xid(xid)

    def _send_call(
        self, destination: Address, encoded: bytes, deadline: Optional[float]
    ) -> None:
        """Put one encoded CALL on the wire.

        The seam :class:`BatchingClient` overrides to coalesce writes;
        the base client writes immediately, one message per payload.
        """
        self.transport.send(destination, encoded)

    def ping(self, destination: Address, prog: int, vers: int = 1) -> bool:
        """True when the destination answers procedure 0 (NULL proc)."""
        try:
            self.call(destination, prog, vers, 0)
            return True
        except RpcError:
            return False

    def stats(self, destination: Address, **kwargs: Any) -> Dict[str, Any]:
        """Fetch the STATS snapshot from the server at ``destination``.

        Every :class:`~repro.rpc.server.RpcServer` serves the well-known
        stats program; this is the client-side one-liner for it.
        """
        from repro.rpc import stats as stats_mod

        return stats_mod.fetch(self, destination, **kwargs)

    def close(self) -> None:
        dispatcher_for(self.transport).client = None


class BatchBuffer:
    """Per-destination staging area for encoded CALL frames.

    Three flush watermarks, checked on every :meth:`add`:

    * ``max_batch`` — staged call count;
    * ``max_bytes`` — staged payload bytes (keeps one batch inside a
      sane write size);
    * ``flush_slack`` — earliest-deadline slack: the moment the most
      urgent staged call has less than this much budget left, the batch
      goes out now rather than waiting for stragglers.

    Flushes are tracked per destination by a generation counter so a
    lingering leader can tell "someone already flushed my batch" from
    "still mine to send" without holding the lock while sleeping.
    """

    def __init__(
        self,
        max_batch: int = 16,
        max_bytes: int = 64 * 1024,
        flush_slack: float = 0.005,
    ) -> None:
        self.max_batch = max_batch
        self.max_bytes = max_bytes
        self.flush_slack = flush_slack
        self._lock = threading.Lock()
        self._staged: Dict[Address, List[bytes]] = {}
        self._bytes: Dict[Address, int] = {}
        self._earliest: Dict[Address, float] = {}
        self._generation: Dict[Address, int] = {}

    def add(
        self,
        destination: Address,
        encoded: bytes,
        deadline: Optional[float],
        now: float,
    ) -> Tuple[str, Any]:
        """Stage one encoded CALL.

        Returns ``("flush", payloads)`` when a watermark tripped (the
        caller must send them), ``("lead", generation)`` when this entry
        opened an empty buffer (the caller should linger then
        :meth:`take`), or ``("wait", None)`` when an existing leader
        will flush it.
        """
        with self._lock:
            staged = self._staged.setdefault(destination, [])
            leader = not staged
            staged.append(encoded)
            self._bytes[destination] = self._bytes.get(destination, 0) + len(encoded)
            if deadline is not None:
                earliest = self._earliest.get(destination)
                if earliest is None or deadline < earliest:
                    self._earliest[destination] = deadline
            if (
                len(staged) >= self.max_batch
                or self._bytes[destination] >= self.max_bytes
                or (
                    destination in self._earliest
                    and self._earliest[destination] - now <= self.flush_slack
                )
            ):
                return "flush", self._pop(destination)
            if leader:
                return "lead", self._generation.get(destination, 0)
            return "wait", None

    def take(self, destination: Address, generation: int) -> List[bytes]:
        """Claim the staged batch if generation still matches, else []."""
        with self._lock:
            if self._generation.get(destination, 0) != generation:
                return []
            return self._pop(destination)

    def flushed(self, destination: Address, generation: int) -> bool:
        with self._lock:
            return self._generation.get(destination, 0) != generation

    def _pop(self, destination: Address) -> List[bytes]:
        payloads = self._staged.pop(destination, [])
        self._bytes.pop(destination, None)
        self._earliest.pop(destination, None)
        self._generation[destination] = self._generation.get(destination, 0) + 1
        return payloads


class BatchingClient(RpcClient):
    """RPC client that coalesces concurrent calls into BATCH writes.

    Two modes, freely mixed:

    * :meth:`call_many` — the explicit fast lane: hand over a sequence
      of calls for one endpoint and they ship as back-to-back CALL
      frames in watermark-sized payloads, wait collectively, and
      return per-call outcomes (result value or the typed error
      *instance*) in order.  No linger delay.
    * Transparent coalescing — plain :meth:`call` from concurrent
      threads routes through :class:`BatchBuffer`: the first call to
      touch an idle destination becomes the *leader*, lingers up to
      ``linger`` seconds for companions, then flushes everyone in one
      write.  Watermarks (count/bytes/deadline slack) cut the linger
      short.  ``linger=0`` disables coalescing entirely.

    Per-call semantics are untouched: same xids, same retransmission
    pacing, same at-most-once behaviour server-side, and the wire
    format is plain concatenated CALL frames, so a non-batching server
    reads them back-to-back.
    """

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
        retired_xid_capacity: int = 4096,
        max_batch: int = 16,
        max_bytes: int = 64 * 1024,
        linger: float = 0.001,
        flush_slack: float = 0.005,
    ) -> None:
        super().__init__(transport, timeout, retries, retired_xid_capacity)
        self.linger = linger
        self.batches_sent = 0
        self._buffer = BatchBuffer(max_batch, max_bytes, flush_slack)

    # -- transparent coalescing -------------------------------------------

    def _send_call(
        self, destination: Address, encoded: bytes, deadline: Optional[float]
    ) -> None:
        if self.linger <= 0:
            self.transport.send(destination, encoded)
            return
        action, data = self._buffer.add(
            destination, encoded, deadline, self.transport.now()
        )
        if action == "flush":
            self._send_batch(destination, data)
        elif action == "lead":
            generation = data
            self.transport.wait(
                lambda: self._buffer.flushed(destination, generation),
                self.linger,
            )
            payloads = self._buffer.take(destination, generation)
            if payloads:
                self._send_batch(destination, payloads)
        # "wait": the current leader (or a watermark) flushes it for us
        # within ``linger``.

    # -- explicit batch API -----------------------------------------------

    def call_many(
        self,
        destination: Address,
        calls: Sequence[Tuple[int, int, int, Any]],
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> List[Any]:
        """Issue many ``(prog, vers, proc, args)`` calls as batches.

        Returns outcomes in call order: the decoded result, or the
        typed :class:`RpcError` instance that call would have raised.
        All calls share one context (one deadline budget, one trace).
        """
        calls = list(calls)
        if not calls:
            return []
        ambient = current_context() if context is None else None
        ctx = self._effective_context(context, timeout, retries, ambient)
        owns_chain = context is None and ambient is None
        try:
            with ctx.span(
                "rpc", f"call_many x{len(calls)}", self.transport.now
            ):
                return self._batch_attempts(ctx, destination, calls)
        finally:
            if owns_chain:
                flush_context(ctx)

    def _batch_attempts(
        self,
        ctx: CallContext,
        destination: Address,
        calls: Sequence[Tuple[int, int, int, Any]],
    ) -> List[Any]:
        entries = []
        sampled = sampling.mark(ctx)
        for prog, vers, proc, args in calls:
            xid = next(self._xid_counter)
            call = RpcCall(
                xid, prog, vers, proc,
                CODECS.encode_args(prog, vers, proc, args),
                deadline=ctx.deadline, trace_id=ctx.trace_id, hops=ctx.hops,
                sampled=sampled,
            )
            entries.append((xid, prog, vers, proc, call.encode()))
        try:
            replies = self._collect_replies(ctx, destination, entries)
            expired = ctx.expired(self.transport.now())
            outcomes: List[Any] = []
            for xid, prog, vers, proc, __ in entries:
                reply = replies.get(xid)
                if reply is None:
                    if expired:
                        outcomes.append(DeadlineExceeded(
                            f"no reply from {destination} for prog={prog} "
                            f"proc={proc} within the deadline "
                            f"(trace {ctx.trace_id})"
                        ))
                    else:
                        outcomes.append(RpcTimeout(
                            f"no reply from {destination} for prog={prog} "
                            f"proc={proc} after {ctx.retry.attempts} attempt(s)"
                        ))
                    continue
                try:
                    outcomes.append(
                        reply_to_result(reply, destination, prog, vers, proc)
                    )
                except RpcError as error:
                    outcomes.append(error)
            return outcomes
        finally:
            for xid, *__ in entries:
                self.retire_xid(xid)

    def _collect_replies(
        self, ctx: CallContext, destination: Address, entries
    ) -> Dict[int, RpcReply]:
        """Send batches and gather replies, retransmitting only gaps."""
        replies: Dict[int, RpcReply] = {}
        outstanding = {
            xid: (prog, proc, encoded)
            for xid, prog, vers, proc, encoded in entries
        }
        attempts = ctx.retry.attempts
        for attempt in range(attempts):
            now = self.transport.now()
            if ctx.expired(now):
                break
            if attempt:
                for prog, proc, __ in outstanding.values():
                    self.retransmissions += 1
                    METRICS.inc(
                        "rpc.client.retransmissions", (str(prog), str(proc))
                    )
            self.calls_sent += len(outstanding)
            self._send_batches(
                destination, [encoded for __, __, encoded in outstanding.values()]
            )
            wait = ctx.attempt_timeout(now, attempts - attempt)
            self.transport.wait(
                lambda: all(xid in self._pending for xid in outstanding), wait
            )
            for xid in list(outstanding):
                reply = self._pending.pop(xid, None)
                if reply is not None:
                    replies[xid] = reply
                    del outstanding[xid]
            if not outstanding:
                break
        return replies

    def _send_batches(
        self, destination: Address, encoded_calls: List[bytes]
    ) -> None:
        """Ship encoded CALLs in watermark-sized BATCH payloads."""
        chunk: List[bytes] = []
        chunk_bytes = 0
        for encoded in encoded_calls:
            if chunk and (
                len(chunk) >= self._buffer.max_batch
                or chunk_bytes + len(encoded) > self._buffer.max_bytes
            ):
                self._send_batch(destination, chunk)
                chunk, chunk_bytes = [], 0
            chunk.append(encoded)
            chunk_bytes += len(encoded)
        if chunk:
            self._send_batch(destination, chunk)

    def _send_batch(self, destination: Address, payloads: List[bytes]) -> None:
        self.batches_sent += 1
        METRICS.inc("rpc.client.batches_sent")
        METRICS.observe("rpc.client.batch_size", float(len(payloads)))
        self.transport.send(destination, b"".join(payloads))
