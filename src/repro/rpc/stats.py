"""Wire-level STATS introspection: ask a live server what it is doing.

The registries of the related work expose their own operational state as
a first-class query interface (the Grid Market Directory ships a status
API next to its publication API; cooperating independent registries must
see each other's health to federate safely).  This module gives every
COSM RPC server the same property: each :class:`~repro.rpc.server.RpcServer`
— sync or asyncio — automatically serves the well-known **stats**
program, whose single procedure returns a versioned snapshot of the
process's observable state:

* server counters (calls handled, duplicates, deadline rejections,
  sheds) and the live admission picture — queue depth, queue capacity,
  in-flight set, reply-cache occupancy, the admission policy in force;
* the programs the server exports (``prog``/``vers``/procedure names);
* circuit-breaker state per endpoint, trader lease counters, compiled
  codec hit/fallback rates, the async in-flight gauge, batching health
  (per-payload reply histogram + per-endpoint queue-depth gauges), and
  the sampling policy with its drop accounting;
* the full :data:`~repro.telemetry.metrics.METRICS` snapshot, so a
  poller can compute anything the summary sections left out.

**Admission bypass.**  A stats probe is most valuable exactly when the
server is drowning — which is when normal admission would shed it (the
probe has no deadline and the queue is full of urgent work).  STATS
calls therefore bypass the admission queue and execute immediately,
rate-limited by a small fixed token bucket (:class:`StatsBudget`)
against the transport clock, so introspection can never *become* the
overload.  Probes beyond the budget are answered ``SHED`` with the
``stats_budget`` stage label.

Everything in the snapshot is built from the tagged-XDR-encodable types
(str/int/float/bool/list/dict), so it round-trips the wire codec
unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.telemetry import sampling
from repro.telemetry.metrics import METRICS

#: Well-known program number for the stats service — next free slot in
#: the 100x00 sequence after ifmgr (100700).  Served automatically by
#: every RpcServer, so any live process answers it.
STATS_PROGRAM = 100800
STATS_VERSION = 1

#: Procedure 1: return the versioned snapshot described above.
PROC_SNAPSHOT = 1

#: Version stamp inside the snapshot itself, independent of the RPC
#: program version: pollers gate field expectations on this.
SNAPSHOT_VERSION = 1

_BREAKER_STATES = {0: "closed", 1: "half-open", 2: "open"}


class StatsBudget:
    """Token bucket bounding admission-bypassing STATS executions.

    ``burst`` probes may land back-to-back; after that they refill at
    ``per_second`` against the transport clock (simulated or wall).
    Deliberately small: a dashboard polls a few times a second at most,
    while anything hammering the stats procedure during overload is
    itself part of the problem and gets ``SHED`` like everyone else.
    """

    def __init__(self, burst: int = 8, per_second: float = 16.0) -> None:
        self.burst = burst
        self.per_second = per_second
        self._tokens = float(burst)
        self._last: Optional[float] = None

    def take(self, now: float) -> bool:
        """Spend one token if available; refills from elapsed time."""
        if self._last is not None and now > self._last:
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last) * self.per_second
            )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


def _series_by_label(table: Dict[str, Dict[Any, float]], name: str) -> Dict[str, float]:
    """One metrics series as ``joined-label -> value`` (wire-encodable)."""
    series = table.get(name, {})
    return {"|".join(labels): value for labels, value in series.items()}


def build_snapshot(server: Any) -> Dict[str, Any]:
    """The versioned stats snapshot for ``server`` (duck-typed: anything
    with the RpcServer attribute surface works, including the asyncio
    subclass).  Pure read — never raises into the caller's dispatch."""
    transport = server.transport
    address = transport.local_address
    policy = server.admission
    programs: Dict[str, Any] = {}
    for (prog, vers), program in server._programs.items():
        programs[program.name] = {
            "prog": prog,
            "vers": vers,
            "procedures": {str(num): name for num, name in program.procedures().items()},
        }
    gauges = METRICS.gauges("rpc.")
    breakers = {
        "|".join(labels): _BREAKER_STATES.get(int(value), str(value))
        for labels, value in gauges.get("rpc.breaker.state", {}).items()
    }
    sampling_policy = sampling.get_policy()
    snapshot: Dict[str, Any] = {
        "stats_version": SNAPSHOT_VERSION,
        "address": f"{address.host}:{address.port}",
        "now": transport.now(),
        "server": {
            "calls_handled": server.calls_handled,
            "duplicates_suppressed": server.duplicates_suppressed,
            "duplicates_coalesced": server.duplicates_coalesced,
            "deadlines_rejected": server.deadlines_rejected,
            "calls_shed": server.calls_shed,
            "queue_depth": len(server._queue),
            "queue_capacity": server._queue.capacity,
            "in_flight": len(server._in_flight),
            "reply_cache": len(server._reply_cache),
            "reply_cache_limit": server._reply_cache_size,
            "admission": {
                "shed": policy.shed,
                "defer_while_busy": policy.defer_while_busy,
                "capacity": str(policy.capacity),
                "quantile": policy.quantile,
            },
            "programs": programs,
        },
        "async": {
            "inflight": METRICS.gauge("rpc.async.inflight"),
            "cancelled_on_deadline": getattr(server, "cancelled_on_deadline", 0),
        },
        "breakers": breakers,
        "leases": {
            "renewed": METRICS.counter_total("trader.offers.renewed"),
            "expired": _series_by_label(
                METRICS.counters("trader.offers.expired"), "trader.offers.expired"
            ),
            "live": _series_by_label(
                METRICS.gauges("trader.offers.live"), "trader.offers.live"
            ),
        },
        "codec": {
            "compiled_hits": METRICS.counter_total("rpc.codec.compiled_hits"),
            "fallbacks": METRICS.counter_total("rpc.codec.fallback"),
        },
        "batching": {
            "replies": METRICS.histogram("rpc.server.batch_replies") or {},
            "queue_depth": _series_by_label(gauges, "rpc.server.queue_depth"),
        },
        "sharding": {
            "map_version": _series_by_label(
                METRICS.gauges("sharding."), "sharding.map_version"
            ),
            "replication_seq": _series_by_label(
                METRICS.gauges("sharding."), "sharding.replication_seq"
            ),
            "routed": _series_by_label(
                METRICS.counters("sharding.routed"), "sharding.routed"
            ),
            "fanout": METRICS.counter_total("sharding.fanout"),
            "failovers": _series_by_label(
                METRICS.counters("sharding.failovers"), "sharding.failovers"
            ),
            "promotions": _series_by_label(
                METRICS.counters("sharding.promotions"), "sharding.promotions"
            ),
            "syncs": METRICS.counter_total("sharding.syncs"),
            "push_failed": METRICS.counter_total("sharding.push_failed"),
            "migration": {
                "phase": _series_by_label(
                    METRICS.gauges("sharding.migration."), "sharding.migration.phase"
                ),
                "offers_copied": METRICS.counter_total(
                    "sharding.migration.offers_copied"
                ),
                "deltas_replayed": METRICS.counter_total(
                    "sharding.migration.deltas_replayed"
                ),
                "forwarded_calls": METRICS.counter_total(
                    "sharding.migration.forwarded_calls"
                ),
            },
        },
        "sampling": {
            "rate": sampling_policy.rate,
            "keep_errors": sampling_policy.keep_errors,
            "spans_sampled_out": METRICS.counter_total("telemetry.spans_sampled_out"),
            "chains_sampled_out": METRICS.counter_total("telemetry.chains_sampled_out"),
            "chains_kept_tail": METRICS.counter_total("telemetry.chains_kept_tail"),
        },
        "metrics": METRICS.snapshot(),
    }
    return snapshot


def fetch(client: Any, destination: Any, **kwargs: Any) -> Dict[str, Any]:
    """Pull one snapshot from the server at ``destination``.

    ``client`` is a sync :class:`~repro.rpc.client.RpcClient`;
    keyword arguments (``ctx=``, ``timeout=``) pass through to
    :meth:`~repro.rpc.client.RpcClient.call`.
    """
    return client.call(destination, STATS_PROGRAM, STATS_VERSION, PROC_SNAPSHOT, **kwargs)


def _parse_endpoint(spec: str) -> Any:
    from repro.net.endpoints import Address

    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {spec!r}")
    return Address(host, int(port))


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """Human-oriented text rendering used by ``python -m repro stats``."""
    import json

    return json.dumps(snapshot, indent=2, sort_keys=True, default=str)


def main(argv: Any = None) -> int:
    """``python -m repro stats <host:port>`` — one-shot snapshot dump."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="Fetch one STATS snapshot from a live COSM RPC server.",
    )
    parser.add_argument("endpoint", help="server address as host:port")
    parser.add_argument(
        "--timeout", type=float, default=2.0, help="call timeout in seconds"
    )
    options = parser.parse_args(argv)

    from repro.rpc.client import RpcClient
    from repro.rpc.transport import TcpTransport

    destination = _parse_endpoint(options.endpoint)
    transport = TcpTransport()
    try:
        client = RpcClient(transport, timeout=options.timeout, retries=0)
        snapshot = client.stats(destination)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"stats: {options.endpoint}: {exc}", file=sys.stderr)
        return 1
    finally:
        transport.close()
    print(render_snapshot(snapshot))
    return 0
