"""Transactional RPC: a two-phase-commit coordinator over plain RPC.

The Fig. 6 architecture places a TP-monitor above the communication level
and "Transactional RPC" inside it.  This module provides the mechanism:
participants export PREPARE/COMMIT/ABORT procedures; a coordinator drives
the classic presumed-abort protocol across any number of participants.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional

from repro.context import CallContext
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.errors import RpcError
from repro.rpc.server import RpcProgram, RpcServer

TXN_PROGRAM = 100500
_PROC_PREPARE = 1
_PROC_COMMIT = 2
_PROC_ABORT = 3


class TxnOutcome(enum.Enum):
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionParticipant:
    """Server-side 2PC endpoint wrapping an application *resource*.

    The resource supplies three methods::

        prepare(txn_id: str, work: Any) -> bool   # vote yes/no
        commit(txn_id: str) -> None
        abort(txn_id: str) -> None

    A participant votes no for unknown work and tolerates repeated
    COMMIT/ABORT deliveries (the coordinator may retransmit).
    """

    def __init__(self, server: RpcServer, resource: Any) -> None:
        self.resource = resource
        self._prepared: Dict[str, bool] = {}
        program = RpcProgram(TXN_PROGRAM, 1, "txn-participant")
        program.register(_PROC_PREPARE, self._prepare, "prepare")
        program.register(_PROC_COMMIT, self._commit, "commit")
        program.register(_PROC_ABORT, self._abort, "abort")
        server.serve(program)

    def _prepare(self, args) -> bool:
        txn_id = args["txn_id"]
        if txn_id in self._prepared:
            return self._prepared[txn_id]
        try:
            vote = bool(self.resource.prepare(txn_id, args.get("work")))
        except Exception:  # noqa: BLE001 - a crashing resource votes no
            vote = False
        if not vote:
            # Presumed abort: the coordinator never sends ABORT to a
            # no-voter, so release any partially staged work right here.
            try:
                self.resource.abort(txn_id)
            except Exception:  # noqa: BLE001
                pass
        self._prepared[txn_id] = vote
        return vote

    def _commit(self, args) -> bool:
        txn_id = args["txn_id"]
        if self._prepared.pop(txn_id, None):
            self.resource.commit(txn_id)
        return True

    def _abort(self, args) -> bool:
        txn_id = args["txn_id"]
        if self._prepared.pop(txn_id, False):
            self.resource.abort(txn_id)
        return True


class TransactionCoordinator:
    """Drives 2PC over a set of participants."""

    _txn_counter = itertools.count(1)

    def __init__(self, client: RpcClient, timeout: float = 1.0) -> None:
        self._client = client
        self._timeout = timeout
        self.committed = 0
        self.aborted = 0

    def execute(
        self, work: Dict[Address, Any], ctx: Optional[CallContext] = None
    ) -> TxnOutcome:
        """Run one distributed transaction.

        ``work`` maps each participant address to the work item passed to
        its resource's ``prepare``.  Aborts on any no-vote, fault, or
        timeout (presumed abort).  With a ``ctx``, both the PREPARE and
        the COMMIT/ABORT rounds inherit the caller's deadline and trace:
        a transaction whose budget expires mid-vote aborts instead of
        overrunning the caller.
        """
        txn_id = f"txn-{self._client.address}-{next(self._txn_counter)}"
        voted_yes: List[Address] = []
        decision = TxnOutcome.COMMITTED
        now = self._client.transport.now
        for address, item in work.items():
            if ctx is not None and ctx.expired(now()):
                decision = TxnOutcome.ABORTED
                break
            try:
                vote = self._call(
                    ctx, address, _PROC_PREPARE, {"txn_id": txn_id, "work": item}
                )
            except RpcError:
                vote = False
            if vote:
                voted_yes.append(address)
            else:
                decision = TxnOutcome.ABORTED
                break

        if decision is TxnOutcome.COMMITTED:
            self._finish(voted_yes, txn_id, _PROC_COMMIT, ctx)
            self.committed += 1
        else:
            self._finish(voted_yes, txn_id, _PROC_ABORT, ctx)
            self.aborted += 1
        return decision

    def _call(
        self, ctx: Optional[CallContext], address: Address, proc: int, args: Any
    ) -> Any:
        if ctx is not None:
            with ctx.span("txn", f"proc {proc}", self._client.transport.now):
                return self._client.call(
                    address, TXN_PROGRAM, 1, proc, args, context=ctx
                )
        return self._client.call(
            address, TXN_PROGRAM, 1, proc, args, timeout=self._timeout
        )

    def _finish(
        self,
        participants: List[Address],
        txn_id: str,
        proc: int,
        ctx: Optional[CallContext] = None,
    ) -> None:
        # The decision phase keeps the caller's trace but sheds the
        # deadline: once voted, participants must hear the outcome even if
        # the caller's budget ran out mid-protocol — otherwise yes-voters
        # would stay prepared forever.
        if ctx is not None and ctx.deadline is not None:
            ctx = ctx.derive(deadline=None)
        for address in participants:
            try:
                self._call(ctx, address, proc, {"txn_id": txn_id})
            except RpcError:
                # Presumed abort: an unreachable participant will learn the
                # outcome when it asks; nothing more the coordinator can do.
                pass
