"""Portmapper: maps (program, version) to a port on each host.

Faithful to the ONC RPC model the prototype used: servers register their
dynamically bound port under their program number at the host's portmapper
on well-known port 111; clients ask the portmapper where a program lives
before calling it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.errors import RpcError
from repro.rpc.server import RpcProgram, RpcServer
from repro.rpc.transport import Transport

PORTMAP_PORT = 111
PORTMAP_PROGRAM = 100000

_PROC_SET = 1
_PROC_UNSET = 2
_PROC_GETPORT = 3
_PROC_DUMP = 4


class Portmapper:
    """The registry service; one per simulated host."""

    def __init__(self, transport: Transport) -> None:
        if transport.local_address.port != PORTMAP_PORT:
            raise RpcError(
                f"portmapper must listen on port {PORTMAP_PORT}, "
                f"got {transport.local_address.port}"
            )
        self._mappings: Dict[Tuple[int, int], int] = {}
        self.server = RpcServer(transport)
        program = RpcProgram(PORTMAP_PROGRAM, 1, "portmap")
        program.register(_PROC_SET, self._set, "set")
        program.register(_PROC_UNSET, self._unset, "unset")
        program.register(_PROC_GETPORT, self._getport, "getport")
        program.register(_PROC_DUMP, self._dump, "dump")
        self.server.serve(program)

    @property
    def address(self) -> Address:
        return self.server.address

    # -- handlers ---------------------------------------------------------

    def _set(self, args) -> bool:
        key = (args["prog"], args["vers"])
        if key in self._mappings:
            return False
        self._mappings[key] = args["port"]
        return True

    def _unset(self, args) -> bool:
        return self._mappings.pop((args["prog"], args["vers"]), None) is not None

    def _getport(self, args):
        # Port 0 means "not registered", as in the real portmapper.
        return self._mappings.get((args["prog"], args["vers"]), 0)

    def _dump(self, args):
        return [
            {"prog": prog, "vers": vers, "port": port}
            for (prog, vers), port in sorted(self._mappings.items())
        ]

    # -- local convenience --------------------------------------------------

    def register_local(self, prog: int, vers: int, port: int) -> None:
        """Direct registration for servers co-located with the portmapper."""
        self._mappings[(prog, vers)] = port


def portmap_register(
    client: RpcClient, host: str, prog: int, vers: int, port: int
) -> bool:
    """Register a program at ``host``'s portmapper; True on success."""
    return client.call(
        Address(host, PORTMAP_PORT),
        PORTMAP_PROGRAM,
        1,
        _PROC_SET,
        {"prog": prog, "vers": vers, "port": port},
    )


def portmap_unregister(client: RpcClient, host: str, prog: int, vers: int) -> bool:
    return client.call(
        Address(host, PORTMAP_PORT),
        PORTMAP_PROGRAM,
        1,
        _PROC_UNSET,
        {"prog": prog, "vers": vers},
    )


def portmap_lookup(
    client: RpcClient, host: str, prog: int, vers: int
) -> Optional[Address]:
    """Resolve a program to a concrete address, or ``None`` if unknown."""
    port = client.call(
        Address(host, PORTMAP_PORT),
        PORTMAP_PROGRAM,
        1,
        _PROC_GETPORT,
        {"prog": prog, "vers": vers},
    )
    if not port:
        return None
    return Address(host, port)
