"""Transports: how RPC messages reach peers.

The RPC client/server code is transport-agnostic; a :class:`Transport`
provides datagram-style send/receive plus a ``wait`` primitive that blocks
(simulated or real time) until a predicate holds.  Two implementations:

* :class:`SimTransport` — over :class:`repro.net.SimNetwork`; ``wait``
  advances the shared virtual clock, keeping tests deterministic.
* :class:`TcpTransport` — real TCP sockets with length-prefixed frames,
  demonstrating that the stack also runs over a genuine network.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import CommunicationError
from repro.net.endpoints import Address, Datagram
from repro.net.sim import SimNetwork

Receiver = Callable[[Address, bytes], None]


def enable_nodelay(sock: Optional[socket.socket]) -> None:
    """Set ``TCP_NODELAY`` on a TCP socket, quietly skipping non-sockets.

    The RPC wire path is lockstep request/reply: with Nagle on, a small
    CALL sits in the kernel until the previous segment is ACKed, adding
    up to an RTT (or a 40 ms delayed-ACK stall) per call.  Batching
    makes its *own* flush decisions (count/byte/slack watermarks), so
    every TCP transport — sync and asyncio, connect and accept side —
    disables Nagle and owns its write boundaries.
    """
    if sock is None:
        return
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        # Not a TCP socket (e.g. a test double); nothing to disable.
        pass


class Transport:
    """Abstract datagram transport."""

    local_address: Address

    def send(self, destination: Address, payload: bytes) -> None:
        raise NotImplementedError

    def set_receiver(self, receiver: Receiver) -> None:
        raise NotImplementedError

    def wait(self, predicate: Callable[[], bool], timeout: float) -> bool:
        """Block until ``predicate()`` is true or ``timeout`` seconds pass."""
        raise NotImplementedError

    def now(self) -> float:
        """Current time on this transport's clock (virtual or wall)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SimTransport(Transport):
    """Datagram transport over the simulated network."""

    def __init__(self, network: SimNetwork, host: str, port: Optional[int] = None) -> None:
        #: Public so peers of this transport (async side-cars, the event
        #: loop integration) can join the same simulated world.
        self.network = network
        self._endpoint = network.bind(host, port)
        self.local_address = self._endpoint.address
        self._receiver: Optional[Receiver] = None
        self._endpoint.on_receive = self._on_datagram

    def send(self, destination: Address, payload: bytes) -> None:
        self._endpoint.send(destination, payload)

    def set_receiver(self, receiver: Receiver) -> None:
        self._receiver = receiver

    def wait(self, predicate: Callable[[], bool], timeout: float) -> bool:
        deadline = self.network.clock.now + timeout
        return self.network.clock.run_until(predicate, deadline)

    def now(self) -> float:
        return self.network.clock.now

    def close(self) -> None:
        self._endpoint.close()

    def _on_datagram(self, datagram: Datagram) -> None:
        if self._receiver is not None:
            self._receiver(datagram.source, datagram.payload)


class TcpTransport(Transport):
    """Datagram semantics over real TCP connections on localhost.

    Every transport runs one accept loop; each frame is ``u32 length`` +
    ``source host string frame`` + payload.  Outgoing connections are cached
    per destination.  Receive callbacks run on reader threads; a shared
    condition lets :meth:`wait` sleep until state changes.
    """

    _HEADER = struct.Struct(">I")

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        # Deep backlog: benchmark fleets open thousands of connections in
        # one burst, and a SYN dropped by a full backlog costs the caller
        # a full kernel retransmission timeout.
        self._listener.listen(1024)
        self.local_address = Address(host, self._listener.getsockname()[1])
        self._receiver: Optional[Receiver] = None
        self._connections: Dict[Address, socket.socket] = {}
        self._lock = threading.Lock()
        self.condition = threading.Condition(self._lock)
        self._closed = False
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def send(self, destination: Address, payload: bytes) -> None:
        frame = self._frame(payload)
        with self._lock:
            conn = self._connections.get(destination)
        if conn is None:
            conn = socket.create_connection((destination.host, destination.port), timeout=5)
            enable_nodelay(conn)
            # Announce who we are so replies can come back over a fresh
            # connection to our listener (datagram semantics, not stream).
            hello = self._frame(str(self.local_address.port).encode("ascii"))
            conn.sendall(hello)
            with self._lock:
                self._connections[destination] = conn
            threading.Thread(
                target=self._read_loop, args=(conn, destination), daemon=True
            ).start()
        try:
            conn.sendall(frame)
        except OSError as exc:
            with self._lock:
                self._connections.pop(destination, None)
            raise CommunicationError(f"send to {destination} failed: {exc}")

    def set_receiver(self, receiver: Receiver) -> None:
        self._receiver = receiver

    def wait(self, predicate: Callable[[], bool], timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self.condition:
            while not predicate():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self.condition.wait(remaining)
            return True

    def now(self) -> float:
        return time.monotonic()

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    # -- internals --------------------------------------------------------

    def _frame(self, payload: bytes) -> bytes:
        return self._HEADER.pack(len(payload)) + payload

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return
            enable_nodelay(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn, peer), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        # First frame is the peer's listener port (its stable address).
        first = self._read_frame(conn)
        if first is None:
            return
        source = Address(peer[0], int(first.decode("ascii")))
        self._read_loop(conn, source, skip_hello=True)

    def _read_loop(self, conn: socket.socket, source: Address, skip_hello: bool = False) -> None:
        while not self._closed:
            payload = self._read_frame(conn)
            if payload is None:
                return
            receiver = self._receiver
            if receiver is not None:
                receiver(source, payload)
            with self.condition:
                self.condition.notify_all()

    def _read_frame(self, conn: socket.socket) -> Optional[bytes]:
        header = self._read_exact(conn, self._HEADER.size)
        if header is None:
            return None
        (length,) = self._HEADER.unpack(header)
        return self._read_exact(conn, length)

    @staticmethod
    def _read_exact(conn: socket.socket, count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = conn.recv(remaining)
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)
