"""XDR-style binary marshalling.

Two layers:

* :class:`XdrEncoder` / :class:`XdrDecoder` — the primitive wire formats of
  RFC 1014-era XDR: big-endian 4-byte words, 8-byte hypers, IEEE doubles,
  length-prefixed opaques padded to 4-byte boundaries.
* :func:`encode_value` / :func:`decode_value` — a *tagged* self-describing
  encoding of Python values built on the primitives.  This is what makes
  the paper's **dynamic marshalling** possible: a generic client that has
  just downloaded a SID can marshal parameters for a service it has never
  seen, because values carry their own structure on the wire.

The decoder runs on a :class:`memoryview` of the input: primitives are
read with precompiled ``struct`` ``unpack_from`` at an offset, and only
the leaves (opaque/string payloads) ever copy bytes — nested values no
longer re-slice the buffer at every level.  Truncated input raises
:class:`~repro.rpc.errors.XdrTruncated` with offset context instead of
surfacing short reads, and :func:`decode_value` bounds nesting depth so
adversarial payloads fail with a clean :class:`XdrError` rather than
exhausting the interpreter's recursion limit.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List

from repro.net.endpoints import Address
from repro.rpc.errors import XdrError, XdrTruncated

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
_U32_MAX = 2**32 - 1
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
#: Cache of ``>{n}I`` structs for :meth:`XdrDecoder.unpack_u32s`.
_U32_RUNS: Dict[int, struct.Struct] = {2: struct.Struct(">2I"), 4: struct.Struct(">4I")}

#: Maximum nesting depth :func:`decode_value` accepts.  Deep enough for
#: any real SID-shaped value, shallow enough that an adversarially
#: nested payload (a list-of-list-of-... bomb) fails with an
#: :class:`XdrError` long before Python's recursion limit.
MAX_VALUE_DEPTH = 64


class XdrEncoder:
    """Accumulates XDR primitives into a byte buffer."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def pack_u32(self, value: int) -> None:
        if not 0 <= value <= _U32_MAX:
            raise XdrError(f"u32 out of range: {value!r}")
        self._chunks.append(_U32.pack(value))

    def pack_i32(self, value: int) -> None:
        if not _I32_MIN <= value <= _I32_MAX:
            raise XdrError(f"i32 out of range: {value!r}")
        self._chunks.append(_I32.pack(value))

    def pack_i64(self, value: int) -> None:
        if not _I64_MIN <= value <= _I64_MAX:
            raise XdrError(f"i64 out of range: {value!r}")
        self._chunks.append(_I64.pack(value))

    def pack_double(self, value: float) -> None:
        self._chunks.append(_F64.pack(value))

    def pack_bool(self, value: bool) -> None:
        self.pack_u32(1 if value else 0)

    def pack_opaque(self, data: bytes) -> None:
        """Variable-length opaque: u32 length, bytes, zero pad to 4."""
        self.pack_u32(len(data))
        self._chunks.append(data)
        pad = (-len(data)) % 4
        if pad:
            self._chunks.append(b"\x00" * pad)

    def pack_string(self, text: str) -> None:
        self.pack_opaque(text.encode("utf-8"))


class XdrDecoder:
    """Consumes XDR primitives from a byte buffer without copying.

    The input is wrapped in a :class:`memoryview`; fixed-width reads go
    through ``unpack_from`` at the running offset and opaque payloads
    are materialised as ``bytes`` only at the leaf.  Every read is
    bounds-checked: running past the end raises :class:`XdrTruncated`
    naming the offending offset.
    """

    def __init__(self, data) -> None:
        self._view = memoryview(data)
        self._length = len(self._view)
        self._offset = 0

    def remaining(self) -> int:
        return self._length - self._offset

    def done(self) -> bool:
        return self._offset >= self._length

    @property
    def offset(self) -> int:
        return self._offset

    def _require(self, count: int) -> None:
        if self._offset + count > self._length:
            raise XdrTruncated(
                f"truncated XDR data at offset {self._offset}: wanted "
                f"{count} bytes, have {self._length - self._offset}"
            )

    def _take(self, count: int) -> memoryview:
        self._require(count)
        chunk = self._view[self._offset : self._offset + count]
        self._offset += count
        return chunk

    def unpack_u32(self) -> int:
        self._require(4)
        (value,) = _U32.unpack_from(self._view, self._offset)
        self._offset += 4
        return value

    def unpack_u32s(self, count: int):
        """Read ``count`` consecutive u32 words with one unpack.

        The message-frame fast path: fixed headers are several u32s in a
        row, and one precompiled multi-word unpack replaces ``count``
        bounds checks and method calls.
        """
        size = 4 * count
        self._require(size)
        fmt = _U32_RUNS.get(count)
        if fmt is None:
            fmt = _U32_RUNS[count] = struct.Struct(f">{count}I")
        values = fmt.unpack_from(self._view, self._offset)
        self._offset += size
        return values

    def unpack_i32(self) -> int:
        self._require(4)
        (value,) = _I32.unpack_from(self._view, self._offset)
        self._offset += 4
        return value

    def unpack_i64(self) -> int:
        self._require(8)
        (value,) = _I64.unpack_from(self._view, self._offset)
        self._offset += 8
        return value

    def unpack_double(self) -> float:
        self._require(8)
        (value,) = _F64.unpack_from(self._view, self._offset)
        self._offset += 8
        return value

    def unpack_bool(self) -> bool:
        value = self.unpack_u32()
        if value not in (0, 1):
            raise XdrError(f"bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_opaque(self) -> bytes:
        length = self.unpack_u32()
        data = bytes(self._take(length))
        pad = (-length) % 4
        if pad:
            padding = self._take(pad)
            if padding != b"\x00" * pad:
                raise XdrError("non-zero XDR padding")
        return data

    def unpack_string(self) -> str:
        return self.unpack_opaque().decode("utf-8")


# -- tagged generic values -----------------------------------------------

_TAG_NULL = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STRING = 4
_TAG_BYTES = 5
_TAG_LIST = 6
_TAG_DICT = 7
_TAG_ADDRESS = 8


def encode_value(value: Any) -> bytes:
    """Encode a Python value into self-describing XDR bytes.

    Supported: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
    :class:`~repro.net.endpoints.Address`, and (nested) lists/tuples and
    string-keyed dicts of the above.  Dict key order is preserved, so two
    structurally equal values encode identically.
    """
    encoder = XdrEncoder()
    _encode_into(value, encoder)
    return encoder.getvalue()


def _encode_into(value: Any, enc: XdrEncoder) -> None:
    if value is None:
        enc.pack_u32(_TAG_NULL)
    elif value is True or value is False:
        enc.pack_u32(_TAG_BOOL)
        enc.pack_bool(value)
    elif isinstance(value, Address):
        # Must precede the tuple check: Address is a NamedTuple.
        enc.pack_u32(_TAG_ADDRESS)
        enc.pack_string(value.host)
        enc.pack_u32(value.port)
    elif isinstance(value, int):
        enc.pack_u32(_TAG_INT)
        enc.pack_i64(value)
    elif isinstance(value, float):
        enc.pack_u32(_TAG_FLOAT)
        enc.pack_double(value)
    elif isinstance(value, str):
        enc.pack_u32(_TAG_STRING)
        enc.pack_string(value)
    elif isinstance(value, (bytes, bytearray)):
        enc.pack_u32(_TAG_BYTES)
        enc.pack_opaque(bytes(value))
    elif isinstance(value, (list, tuple)):
        enc.pack_u32(_TAG_LIST)
        enc.pack_u32(len(value))
        for item in value:
            _encode_into(item, enc)
    elif isinstance(value, dict):
        enc.pack_u32(_TAG_DICT)
        enc.pack_u32(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise XdrError(f"dict keys must be strings, got {key!r}")
            enc.pack_string(key)
            _encode_into(item, enc)
    else:
        raise XdrError(f"cannot marshal value of type {type(value).__name__}")


def decode_value(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode_value`.

    Raises :class:`~repro.rpc.errors.XdrError` on malformed or trailing
    data, and on values nested deeper than :data:`MAX_VALUE_DEPTH`.
    """
    decoder = XdrDecoder(data)
    value = _decode_from(decoder, 0)
    if not decoder.done():
        raise XdrError(f"{decoder.remaining()} trailing bytes after value")
    return value


def _decode_from(dec: XdrDecoder, depth: int) -> Any:
    if depth > MAX_VALUE_DEPTH:
        raise XdrError(
            f"value nesting exceeds MAX_VALUE_DEPTH={MAX_VALUE_DEPTH} "
            f"at offset {dec.offset}"
        )
    tag = dec.unpack_u32()
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_BOOL:
        return dec.unpack_bool()
    if tag == _TAG_INT:
        return dec.unpack_i64()
    if tag == _TAG_FLOAT:
        return dec.unpack_double()
    if tag == _TAG_STRING:
        return dec.unpack_string()
    if tag == _TAG_BYTES:
        return dec.unpack_opaque()
    if tag == _TAG_LIST:
        length = dec.unpack_u32()
        if length > dec.remaining():
            raise XdrTruncated(
                f"implausible list length {length} at offset {dec.offset}"
            )
        return [_decode_from(dec, depth + 1) for __ in range(length)]
    if tag == _TAG_DICT:
        length = dec.unpack_u32()
        if length > dec.remaining():
            raise XdrTruncated(
                f"implausible dict length {length} at offset {dec.offset}"
            )
        result: Dict[str, Any] = {}
        for __ in range(length):
            key = dec.unpack_string()
            result[key] = _decode_from(dec, depth + 1)
        return result
    if tag == _TAG_ADDRESS:
        host = dec.unpack_string()
        port = dec.unpack_u32()
        return Address(host, port)
    raise XdrError(f"unknown XDR value tag {tag}")
