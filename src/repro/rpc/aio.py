"""Async-first RPC: asyncio transport, client, and server.

The sync stack in :mod:`repro.rpc.client` / :mod:`repro.rpc.server`
blocks a thread per in-flight call — on real TCP that means a thread per
connection, and on the simulator it forces *serial* operation because
the calling thread is also the one advancing the virtual clock.  This
module keeps every wire artefact identical (message format, xdr bodies,
at-most-once cache, admission control, SHED) and swaps only the
concurrency substrate:

* :class:`AsyncTcpTransport` — one event loop serves every connection;
  framing is byte-compatible with :class:`~repro.rpc.transport.TcpTransport`
  (``u32`` length prefix, first frame on a fresh connection announces
  the sender's stable address).  Unlike the threaded transport it
  answers over the *inbound* connection when one exists, halving socket
  count for request/reply traffic.
* :class:`AsyncRpcClient` — any number of concurrent calls per client;
  each in-flight xid owns a future, retransmission keeps the same xid
  (and the same future) across attempts so the server's at-most-once
  cache still coalesces.
* :class:`AsyncRpcServer` — reuses the sync server's admission queue and
  reply cache verbatim but executes each admitted call as its own task,
  so slow handlers overlap; ``async def`` handlers are awaited and
  cancelled when their wire deadline expires.

Over a :class:`~repro.rpc.transport.SimTransport` the same client and
server run in *virtual* time on a :class:`~repro.net.aioclock.SimEventLoop`:
thousands of calls in flight, deterministic interleaving, microseconds
of wall clock.
"""

from __future__ import annotations

import asyncio
import inspect
import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.context import CallContext, SpanRecord, current_context, use_context
from repro.errors import CommunicationError
from repro.net.endpoints import Address
from repro.rpc.client import (
    RetiredXids,
    RpcClient,
    reply_to_result,
    resolve_context,
)
from repro.rpc.codec import CODECS
from repro.rpc.dispatch import dispatcher_for
from repro.rpc.errors import DeadlineExceeded, RpcError, RpcTimeout
from repro.rpc.message import ReplyStatus, RpcCall, RpcReply
from repro.rpc.server import AdmissionPolicy, RpcServer
from repro.rpc.transport import SimTransport, Transport, enable_nodelay
from repro.telemetry import sampling
from repro.telemetry.hub import flush_context, spans_wanted
from repro.telemetry.metrics import METRICS

__all__ = [
    "AsyncBatchingClient",
    "AsyncRpcClient",
    "AsyncRpcServer",
    "AsyncTcpTransport",
]


#: Process-wide count of calls currently awaiting a reply across *all*
#: async clients — the saturation signal the telemetry report surfaces.
_inflight_total = 0


def _inflight(delta: int) -> None:
    global _inflight_total
    _inflight_total += delta
    METRICS.set_gauge("rpc.async.inflight", _inflight_total)


class AsyncTcpTransport(Transport):
    """Datagram semantics over asyncio TCP streams.

    Wire-compatible with the threaded :class:`TcpTransport`: each frame
    is a big-endian ``u32`` length followed by the payload, and the
    first frame of every outgoing connection carries the sender's
    advertised port in ASCII so the peer learns a stable reply address.

    Build with :meth:`create` (binding a listener needs a running
    loop).  Pure clients may pass ``listen=False``: no listener socket
    is bound and the hello frame advertises the *connection's* local
    port instead — unique per connection, so the peer's reply routing
    (which prefers the inbound connection) still finds its way back.
    ``send`` never blocks: when no connection exists yet the payload is
    queued and a connect task drains the queue once established.
    """

    _HEADER = struct.Struct(">I")

    def __init__(self) -> None:
        raise TypeError("use 'await AsyncTcpTransport.create(...)'")

    @classmethod
    async def create(
        cls, host: str = "127.0.0.1", port: int = 0, listen: bool = True,
        backlog: int = 4096,
    ) -> "AsyncTcpTransport":
        self = cls.__new__(cls)
        self._loop = asyncio.get_running_loop()
        self._receiver: Optional[Callable[[Address, bytes], None]] = None
        self._writers: Dict[Address, asyncio.StreamWriter] = {}
        self._connecting: Dict[Address, List[bytes]] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        self.connections_opened = 0
        self.connections_accepted = 0
        if listen:
            self._server = await asyncio.start_server(
                self._accepted, host, port, backlog=backlog
            )
            bound = self._server.sockets[0].getsockname()[1]
            self.local_address = Address(host, bound)
        else:
            self.local_address = Address(host, 0)
        return self

    # -- Transport interface ----------------------------------------------

    def send(self, destination: Address, payload: bytes) -> None:
        if self._closed:
            raise CommunicationError("transport closed")
        writer = self._writers.get(destination)
        if writer is not None:
            writer.write(self._frame(payload))
            return
        queue = self._connecting.get(destination)
        if queue is not None:
            queue.append(payload)
            return
        self._connecting[destination] = [payload]
        self._spawn(self._connect(destination))

    def set_receiver(self, receiver: Callable[[Address, bytes], None]) -> None:
        self._receiver = receiver

    def wait(self, predicate: Callable[[], bool], timeout: float) -> bool:
        raise CommunicationError(
            "AsyncTcpTransport has no blocking wait; use AsyncRpcClient"
        )

    def now(self) -> float:
        return self._loop.time()

    def close(self) -> None:
        self._closed = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()
        self._connecting.clear()
        for task in list(self._tasks):
            task.cancel()

    async def aclose(self) -> None:
        """Graceful close: also waits for the listener to release."""
        self.close()
        if self._server is not None:
            await self._server.wait_closed()

    # -- internals --------------------------------------------------------

    def _frame(self, payload: bytes) -> bytes:
        return self._HEADER.pack(len(payload)) + payload

    def _spawn(self, coro) -> None:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _connect(self, destination: Address) -> None:
        try:
            reader, writer = await asyncio.open_connection(
                destination.host, destination.port
            )
        except OSError:
            # Unreachable peer: drop what was queued.  Callers observe a
            # timeout and surface it through their retry budget, exactly
            # as a lost datagram would.
            self._connecting.pop(destination, None)
            return
        enable_nodelay(writer.get_extra_info("socket"))
        self.connections_opened += 1
        advertised = self.local_address.port
        if advertised == 0:  # listen=False: per-connection reply address
            advertised = writer.get_extra_info("sockname")[1]
        writer.write(self._frame(str(advertised).encode("ascii")))
        self._writers[destination] = writer
        for payload in self._connecting.pop(destination, []):
            writer.write(self._frame(payload))
        await self._read_loop(reader, writer, destination)

    async def _accepted(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # First frame is the peer's advertised port (its reply address).
        try:
            hello = await self._read_frame(reader)
            source = Address(
                writer.get_extra_info("peername")[0], int(hello.decode("ascii"))
            )
        except (asyncio.IncompleteReadError, ValueError, OSError):
            writer.close()
            return
        enable_nodelay(writer.get_extra_info("socket"))
        self.connections_accepted += 1
        # Replies to this peer ride the inbound connection — no second
        # socket pair per client, unlike the threaded transport.
        self._writers.setdefault(source, writer)
        await self._read_loop(reader, writer, source)

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        source: Address,
    ) -> None:
        try:
            while not self._closed:
                payload = await self._read_frame(reader)
                receiver = self._receiver
                if receiver is not None:
                    receiver(source, payload)
        except (asyncio.IncompleteReadError, asyncio.CancelledError, OSError):
            # Peer hung up or the transport is tearing down: either way
            # this connection is done; exit without propagating so the
            # stream server's bookkeeping callback stays quiet.
            pass
        finally:
            if self._writers.get(source) is writer:
                self._writers.pop(source, None)
            writer.close()

    async def _read_frame(self, reader: asyncio.StreamReader) -> bytes:
        header = await reader.readexactly(self._HEADER.size)
        (length,) = self._HEADER.unpack(header)
        return await reader.readexactly(length)


class AsyncRpcClient:
    """Coroutine RPC client: many concurrent calls over one transport.

    Semantics mirror :class:`~repro.rpc.client.RpcClient` exactly —
    same-xid retransmission carved out of the context's remaining
    deadline budget, ambient-context inheritance, retired-xid duplicate
    suppression — but each in-flight call awaits its own future instead
    of blocking the transport's wait loop, so calls overlap freely.
    Works over :class:`AsyncTcpTransport` in wall time and over
    :class:`~repro.rpc.transport.SimTransport` in virtual time when
    driven by a :class:`~repro.net.aioclock.SimEventLoop`.
    """

    #: Shared with the sync client: a process mixing both flavours never
    #: reuses a live xid against the same server's reply cache.
    _xid_counter = RpcClient._xid_counter

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
        retired_xid_capacity: int = 4096,
    ) -> None:
        self.transport = transport
        self.timeout = timeout
        self.retries = retries
        self._waiters: Dict[int, asyncio.Future] = {}
        self._retired = RetiredXids(retired_xid_capacity)
        self.calls_sent = 0
        self.retransmissions = 0
        self.duplicate_replies_dropped = 0
        dispatcher_for(transport).client = self

    @property
    def address(self) -> Address:
        return self.transport.local_address

    def handle_reply(self, source: Address, reply: RpcReply) -> None:
        """Entry point from the dispatcher (runs on the event loop)."""
        if reply.xid in self._retired:
            self.duplicate_replies_dropped += 1
            METRICS.inc("rpc.client.duplicate_replies_dropped")
            return
        waiter = self._waiters.get(reply.xid)
        if waiter is None or waiter.done():
            self.duplicate_replies_dropped += 1
            METRICS.inc("rpc.client.duplicate_replies_dropped")
            return
        waiter.set_result(reply)

    def retire_xid(self, xid: int) -> None:
        """Mark ``xid`` finished: later replies for it are dropped."""
        waiter = self._waiters.pop(xid, None)
        if waiter is not None and not waiter.done():
            waiter.cancel()
        self._retired.add(xid)

    async def call(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        args: Any = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> Any:
        """Call and decode; raises a typed :class:`RpcError` on failure."""
        reply = await self.call_raw(
            destination, prog, vers, proc,
            CODECS.encode_args(prog, vers, proc, args), timeout, retries,
            context,
        )
        return reply_to_result(reply, destination, prog, vers, proc)

    async def call_raw(
        self,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> RpcReply:
        """Send pre-encoded bytes and return the raw reply."""
        ambient = current_context() if context is None else None
        ctx = resolve_context(
            context, timeout, retries, ambient,
            self.timeout, self.retries, self.transport.now(),
        )
        owns_chain = context is None and ambient is None
        try:
            with ctx.span("rpc", f"call {prog}:{proc}", self.transport.now) as span:
                return await self._call_attempts(
                    ctx, destination, prog, vers, proc, body, span
                )
        finally:
            if owns_chain:
                flush_context(ctx)

    async def _call_attempts(
        self,
        ctx: CallContext,
        destination: Address,
        prog: int,
        vers: int,
        proc: int,
        body: bytes,
        span: Optional[SpanRecord] = None,
    ) -> RpcReply:
        now = self.transport.now()
        labels = (str(prog), str(proc))
        if ctx.expired(now):
            METRICS.inc("rpc.client.deadline_exceeded", labels)
            raise DeadlineExceeded(
                f"deadline expired before calling {destination} "
                f"(trace {ctx.trace_id})"
            )
        xid = next(self._xid_counter)
        call = RpcCall(
            xid, prog, vers, proc, body,
            deadline=ctx.deadline, trace_id=ctx.trace_id, hops=ctx.hops,
            sampled=sampling.mark(ctx),
        )
        encoded = call.encode()
        # One future per xid, shared across attempts: retransmissions
        # re-await the *same* future, so whichever attempt's reply lands
        # first resolves the call and later duplicates are dropped.
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[xid] = waiter
        attempts = ctx.retry.attempts
        _inflight(+1)
        try:
            for attempt in range(attempts):
                now = self.transport.now()
                if ctx.expired(now):
                    METRICS.inc("rpc.client.deadline_exceeded", labels)
                    raise DeadlineExceeded(
                        f"deadline expired after {attempt} attempt(s) to "
                        f"{destination} (trace {ctx.trace_id})"
                    )
                if attempt:
                    self.retransmissions += 1
                    METRICS.inc("rpc.client.retransmissions", labels)
                    if span is not None:
                        span.add_event("retransmission", at=now, attempt=attempt)
                self.calls_sent += 1
                wait = ctx.attempt_timeout(now, attempts - attempt)
                self._send_call(destination, encoded, ctx.deadline)
                try:
                    # shield: a per-attempt timeout must not cancel the
                    # waiter — the xid (and its future) live on into the
                    # next attempt.
                    reply = await asyncio.wait_for(asyncio.shield(waiter), wait)
                except asyncio.TimeoutError:
                    continue
                if reply.status is ReplyStatus.SHED:
                    METRICS.inc("rpc.client.shed_received", labels)
                    if span is not None:
                        span.add_event(
                            "shed", at=self.transport.now(), attempt=attempt
                        )
                return reply
            if ctx.expired(self.transport.now()) and ctx.retry.attempt_timeout is None:
                METRICS.inc("rpc.client.deadline_exceeded", labels)
                raise DeadlineExceeded(
                    f"no reply from {destination} within the deadline "
                    f"(trace {ctx.trace_id})"
                )
            raise RpcTimeout(
                f"no reply from {destination} for prog={prog} proc={proc} "
                f"after {attempts} attempt(s)"
            )
        finally:
            _inflight(-1)
            self.retire_xid(xid)

    def _send_call(
        self, destination: Address, encoded: bytes, deadline: Optional[float]
    ) -> None:
        """Put one encoded CALL on the wire.

        The seam :class:`AsyncBatchingClient` overrides to coalesce
        same-tick writes; the base client writes immediately.
        """
        self.transport.send(destination, encoded)

    async def ping(self, destination: Address, prog: int, vers: int = 1) -> bool:
        """True when the destination answers procedure 0 (NULL proc)."""
        try:
            await self.call(destination, prog, vers, 0)
            return True
        except RpcError:
            return False

    async def stats(self, destination: Address, **kwargs: Any) -> Dict[str, Any]:
        """Fetch the STATS snapshot from the server at ``destination``."""
        from repro.rpc import stats as stats_mod

        return await self.call(
            destination,
            stats_mod.STATS_PROGRAM,
            stats_mod.STATS_VERSION,
            stats_mod.PROC_SNAPSHOT,
            **kwargs,
        )

    def close(self) -> None:
        dispatcher_for(self.transport).client = None


class AsyncBatchingClient(AsyncRpcClient):
    """Async client that coalesces same-tick calls into BATCH writes.

    Calls issued in the same event-loop tick — the natural shape of an
    ``asyncio.gather`` fan-out — stage their CALL frames per
    destination; a ``call_soon`` callback flushes each destination's
    stage as one transport write before the loop goes back to I/O.  No
    linger delay is ever added: the flush runs in the *current* tick, so
    a lone call leaves exactly as fast as with the base client, and a
    thousand-call gather leaves as ``ceil(1000 / max_batch)`` writes.
    Count and byte watermarks cut oversized batches early.
    """

    def __init__(
        self,
        transport: Transport,
        timeout: float = 1.0,
        retries: int = 3,
        retired_xid_capacity: int = 4096,
        max_batch: int = 16,
        max_bytes: int = 64 * 1024,
    ) -> None:
        super().__init__(transport, timeout, retries, retired_xid_capacity)
        self.max_batch = max_batch
        self.max_bytes = max_bytes
        self.batches_sent = 0
        self._staged: Dict[Address, List[bytes]] = {}
        self._staged_bytes: Dict[Address, int] = {}
        self._flush_scheduled: Set[Address] = set()

    def _send_call(
        self, destination: Address, encoded: bytes, deadline: Optional[float]
    ) -> None:
        staged = self._staged.setdefault(destination, [])
        staged.append(encoded)
        total = self._staged_bytes.get(destination, 0) + len(encoded)
        self._staged_bytes[destination] = total
        if len(staged) >= self.max_batch or total >= self.max_bytes:
            self._flush(destination)
            return
        if destination not in self._flush_scheduled:
            self._flush_scheduled.add(destination)
            asyncio.get_running_loop().call_soon(self._flush, destination)

    def _flush(self, destination: Address) -> None:
        self._flush_scheduled.discard(destination)
        staged = self._staged.pop(destination, None)
        self._staged_bytes.pop(destination, None)
        if staged:
            self._send_batch(destination, staged)

    def _send_batch(self, destination: Address, payloads: List[bytes]) -> None:
        self.batches_sent += 1
        METRICS.inc("rpc.client.batches_sent")
        METRICS.observe("rpc.client.batch_size", float(len(payloads)))
        self.transport.send(destination, b"".join(payloads))

    def _send_batches(
        self, destination: Address, encoded_calls: List[bytes]
    ) -> None:
        """Ship encoded CALLs in watermark-sized BATCH payloads."""
        chunk: List[bytes] = []
        chunk_bytes = 0
        for encoded in encoded_calls:
            if chunk and (
                len(chunk) >= self.max_batch
                or chunk_bytes + len(encoded) > self.max_bytes
            ):
                self._send_batch(destination, chunk)
                chunk, chunk_bytes = [], 0
            chunk.append(encoded)
            chunk_bytes += len(encoded)
        if chunk:
            self._send_batch(destination, chunk)

    # -- explicit batch API -----------------------------------------------

    async def call_many(
        self,
        destination: Address,
        calls: Sequence[Tuple[int, int, int, Any]],
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        context: Optional[CallContext] = None,
    ) -> List[Any]:
        """Issue many ``(prog, vers, proc, args)`` calls as batches.

        The coroutine twin of
        :meth:`repro.rpc.client.BatchingClient.call_many`: one shared
        context (one deadline budget, one trace) covers the whole
        batch, replies are awaited collectively instead of through a
        per-call future+timeout pair, and outcomes come back in call
        order — the decoded result or the typed :class:`RpcError`
        *instance* that call would have raised.
        """
        calls = list(calls)
        if not calls:
            return []
        ambient = current_context() if context is None else None
        ctx = resolve_context(
            context, timeout, retries, ambient,
            self.timeout, self.retries, self.transport.now(),
        )
        owns_chain = context is None and ambient is None
        try:
            with ctx.span(
                "rpc", f"call_many x{len(calls)}", self.transport.now
            ):
                return await self._batch_attempts(ctx, destination, calls)
        finally:
            if owns_chain:
                flush_context(ctx)

    async def _batch_attempts(
        self,
        ctx: CallContext,
        destination: Address,
        calls: Sequence[Tuple[int, int, int, Any]],
    ) -> List[Any]:
        loop = asyncio.get_running_loop()
        entries = []
        sampled = sampling.mark(ctx)
        for prog, vers, proc, args in calls:
            xid = next(self._xid_counter)
            call = RpcCall(
                xid, prog, vers, proc,
                CODECS.encode_args(prog, vers, proc, args),
                deadline=ctx.deadline, trace_id=ctx.trace_id, hops=ctx.hops,
                sampled=sampled,
            )
            self._waiters[xid] = loop.create_future()
            entries.append((xid, prog, vers, proc, call.encode()))
        _inflight(+len(entries))
        try:
            replies = await self._collect_replies(ctx, destination, entries)
            expired = ctx.expired(self.transport.now())
            outcomes: List[Any] = []
            for xid, prog, vers, proc, __ in entries:
                reply = replies.get(xid)
                if reply is None:
                    if expired:
                        outcomes.append(DeadlineExceeded(
                            f"no reply from {destination} for prog={prog} "
                            f"proc={proc} within the deadline "
                            f"(trace {ctx.trace_id})"
                        ))
                    else:
                        outcomes.append(RpcTimeout(
                            f"no reply from {destination} for prog={prog} "
                            f"proc={proc} after "
                            f"{ctx.retry.attempts} attempt(s)"
                        ))
                    continue
                try:
                    outcomes.append(
                        reply_to_result(reply, destination, prog, vers, proc)
                    )
                except RpcError as error:
                    outcomes.append(error)
            return outcomes
        finally:
            _inflight(-len(entries))
            for xid, *__ in entries:
                self.retire_xid(xid)

    async def _collect_replies(
        self, ctx: CallContext, destination: Address, entries
    ) -> Dict[int, RpcReply]:
        """Send batches and gather replies, retransmitting only gaps."""
        replies: Dict[int, RpcReply] = {}
        outstanding = {
            xid: (prog, proc, encoded)
            for xid, prog, vers, proc, encoded in entries
        }
        attempts = ctx.retry.attempts
        for attempt in range(attempts):
            now = self.transport.now()
            if ctx.expired(now):
                break
            if attempt:
                for prog, proc, __ in outstanding.values():
                    self.retransmissions += 1
                    METRICS.inc(
                        "rpc.client.retransmissions", (str(prog), str(proc))
                    )
            self.calls_sent += len(outstanding)
            self._send_batches(
                destination,
                [encoded for __, __, encoded in outstanding.values()],
            )
            wait = ctx.attempt_timeout(now, attempts - attempt)
            waiting = [
                self._waiters[xid]
                for xid in outstanding
                if not self._waiters[xid].done()
            ]
            if waiting:
                # One collective timeout; pending futures are left
                # un-cancelled so the next attempt re-awaits them.
                await asyncio.wait(waiting, timeout=wait)
            for xid in list(outstanding):
                waiter = self._waiters.get(xid)
                if waiter is not None and waiter.done() and not waiter.cancelled():
                    replies[xid] = waiter.result()
                    del outstanding[xid]
            if not outstanding:
                break
        return replies


class AsyncRpcServer(RpcServer):
    """Task-per-call RPC server sharing the sync server's admission core.

    Arrival-time admission, the deadline-ordered queue, the at-most-once
    reply cache, and every counter are inherited unchanged from
    :class:`~repro.rpc.server.RpcServer`; only the drain differs —
    calls bound for ``async def`` handlers become event-loop tasks, so
    they overlap and are awaited, while plain sync handlers (which
    would hold the loop for their whole body regardless) execute inline
    during the drain, skipping per-call task overhead.

    Cancellation on deadline expiry: an awaitable handler result runs
    under ``asyncio.wait_for`` bounded by the call's remaining wire
    budget.  When the budget lapses mid-execution the task is cancelled
    and the caller gets ``DEADLINE_EXCEEDED`` — the async analogue of
    the sync server's wasted-handler-seconds accounting, except the
    waste itself is clawed back.
    """

    def __init__(
        self,
        transport: Transport,
        at_most_once: bool = True,
        reply_cache_size: int = 2048,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        super().__init__(transport, at_most_once, reply_cache_size, admission)
        self._handler_tasks: Set[asyncio.Task] = set()
        self.cancelled_on_deadline = 0
        self.reply_max_batch = 16
        self._reply_staged: Dict[Address, List[bytes]] = {}
        self._reply_flush_scheduled: Set[Address] = set()

    def handle_call(self, source: Address, call: RpcCall) -> None:
        """Entry point from the dispatcher; spawns a task per admitted call."""
        if not self._receive(source, call):
            return
        self._pump()

    def handle_batch(self, source: Address, calls: List[RpcCall]) -> None:
        """BATCH entry point: admit every call, then start tasks once.

        All calls join the deadline-ordered queue before any task is
        created, so the batch's most urgent call starts first regardless
        of wire position.  Reply coalescing needs no batch scope here —
        :meth:`_send_reply` tick-coalesces every reply.
        """
        for call in calls:
            self._receive(source, call)
        self._pump()

    def _send_reply(self, source: Address, reply: RpcReply) -> None:
        """Stage a reply; one write flushes everything ready this tick.

        Handler tasks that complete in the same event-loop tick (common
        for fast handlers fed by one BATCH payload) share a single
        transport write.  Outside a running loop — the sim fallback
        path — replies send immediately, matching the sync server.
        """
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            self.transport.send(source, reply.encode())
            return
        staged = self._reply_staged.setdefault(source, [])
        staged.append(reply.encode())
        if len(staged) >= self.reply_max_batch:
            self._flush_replies(source)
            return
        if source not in self._reply_flush_scheduled:
            self._reply_flush_scheduled.add(source)
            loop.call_soon(self._flush_replies, source)

    def _flush_replies(self, source: Address) -> None:
        self._reply_flush_scheduled.discard(source)
        staged = self._reply_staged.pop(source, None)
        if not staged:
            return
        METRICS.observe("rpc.server.batch_replies", float(len(staged)))
        try:
            self.transport.send(source, b"".join(staged))
        except CommunicationError:
            # Transport torn down while replies were staged; nobody is
            # left to read them.
            pass

    def _pump(self) -> None:
        """Drain the admission queue: inline for sync handlers, tasks else.

        Entries leave the queue in deadline order.  ``async def``
        handlers become event-loop tasks (so they overlap and can be
        cancelled at their deadline); plain sync handlers — which would
        monopolise the loop for their whole body either way — run
        *inline* right here, skipping task creation, scheduling ticks,
        and done-callback bookkeeping per call.  A caller outside the
        event loop (a sync test driving a sim clock by hand) falls back
        to running each entry to completion, mirroring the sync
        server's serial drain.
        """
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None
        try:
            while True:
                entry = self._queue.pop()
                if entry is None:
                    return
                source, call = entry
                self._start_entry(source, call, loop)
        finally:
            METRICS.set_gauge(
                "rpc.server.queue_depth", len(self._queue), self._gauge_label
            )

    def _start_entry(self, source: Address, call: RpcCall, loop) -> None:
        if loop is None:
            self._fallback_loop().run_until_complete(self._run_entry(source, call))
        elif self._wants_task(call):
            task = loop.create_task(self._run_entry(source, call))
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
        else:
            self._start_inline(source, call, loop)

    def _wants_task(self, call: RpcCall) -> bool:
        """True when the call's handler needs the task path (async def)."""
        program = self._programs.get((call.prog, call.vers))
        if program is None:
            return False
        handler = program.lookup(call.proc)
        return handler is not None and inspect.iscoroutinefunction(handler)

    def _start_inline(self, source: Address, call: RpcCall, loop) -> None:
        """Sync-handler fast lane: dequeue checks + execution, no task."""
        now = self.transport.now()
        if call.deadline is not None and now >= call.deadline:
            self._finish(source, call, self._reject_deadline(call), cacheable=True)
            return
        if self._shedding_needed(call, now):
            self._finish(source, call, self._shed(call, "dequeue"), cacheable=False)
            return
        cache_key = (source, call.xid)
        self._in_flight.add(cache_key)
        reply: Optional[RpcReply] = None
        handed_off = False
        try:
            reply = self._execute_inline(source, call, loop)
            handed_off = reply is None
        finally:
            if not handed_off:
                self._in_flight.discard(cache_key)
        if reply is not None:
            try:
                self._finish(source, call, reply, cacheable=True)
            except CommunicationError:
                pass

    def _execute_inline(
        self, source: Address, call: RpcCall, loop
    ) -> Optional[RpcReply]:
        """Run a (presumed) sync handler without leaving this tick.

        Returns the reply, or ``None`` when the handler turned out to
        return an awaitable after all (a partial or wrapper the
        ``iscoroutinefunction`` gate cannot see) — then a task finishes
        the call and owns the in-flight key.
        """
        program, handler, args, early = self._prepare(call)
        if early is not None:
            return early
        ctx = self._context_for(call)
        started = self.transport.now()
        try:
            if ctx is not None:
                # Server-built context, dropped after the dispatch:
                # span bookkeeping only pays off with an exporter.
                if spans_wanted():
                    with ctx.span(
                        "server", f"{program.name}:{call.proc}", self.transport.now
                    ):
                        with use_context(ctx):
                            result = handler(args)
                else:
                    with use_context(ctx):
                        result = handler(args)
            else:
                result = handler(args)
        except Exception as exc:  # noqa: BLE001 - faults cross the wire as data
            self._observe(call, program, ctx, started)
            return self._fault_reply(call.xid, exc)
        if inspect.isawaitable(result):
            task = loop.create_task(
                self._finish_awaited(source, call, program, ctx, started, result)
            )
            self._handler_tasks.add(task)
            task.add_done_callback(self._handler_tasks.discard)
            return None
        self._observe(call, program, ctx, started)
        return self._success_reply(call, result)

    async def _finish_awaited(
        self, source: Address, call: RpcCall, program, ctx, started, awaitable
    ) -> None:
        """Complete an inline call whose sync handler returned an awaitable."""
        try:
            try:
                value = await self._bounded(awaitable, call)
            except asyncio.TimeoutError:
                self.cancelled_on_deadline += 1
                METRICS.inc(
                    "rpc.server.cancelled_on_deadline",
                    (program.name, str(call.proc)),
                )
                reply = self._reject_deadline(call)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - faults cross the wire as data
                reply = self._fault_reply(call.xid, exc)
            else:
                reply = self._success_reply(call, value)
        finally:
            self._observe(call, program, ctx, started)
            self._in_flight.discard((source, call.xid))
        try:
            self._finish(source, call, reply, cacheable=True)
        except CommunicationError:
            pass

    def _fallback_loop(self) -> asyncio.AbstractEventLoop:
        if isinstance(self.transport, SimTransport):
            from repro.net.aioclock import loop_for

            return loop_for(self.transport.network.clock)
        raise CommunicationError(
            "AsyncRpcServer needs a running event loop on this transport"
        )

    async def _run_entry(self, source: Address, call: RpcCall) -> None:
        """Dequeue-time re-check, execution, reply — one task per call."""
        now = self.transport.now()
        if call.deadline is not None and now >= call.deadline:
            self._finish(source, call, self._reject_deadline(call), cacheable=True)
            return
        if self._shedding_needed(call, now):
            self._finish(source, call, self._shed(call, "dequeue"), cacheable=False)
            return
        cache_key = (source, call.xid)
        self._in_flight.add(cache_key)
        try:
            reply = await self._execute_async(call)
        finally:
            self._in_flight.discard(cache_key)
        try:
            self._finish(source, call, reply, cacheable=True)
        except CommunicationError:
            # Transport torn down while the handler ran; nobody is left
            # to read the reply.
            pass

    async def _execute_async(self, call: RpcCall) -> RpcReply:
        program, handler, args, early = self._prepare(call)
        if early is not None:
            return early
        ctx = self._context_for(call)
        started = self.transport.now()
        try:
            try:
                if ctx is not None and spans_wanted():
                    with ctx.span(
                        "server", f"{program.name}:{call.proc}", self.transport.now
                    ):
                        with use_context(ctx):
                            result = handler(args)
                            if inspect.isawaitable(result):
                                result = await self._bounded(result, call)
                elif ctx is not None:
                    with use_context(ctx):
                        result = handler(args)
                        if inspect.isawaitable(result):
                            result = await self._bounded(result, call)
                else:
                    result = handler(args)
                    if inspect.isawaitable(result):
                        result = await self._bounded(result, call)
            except asyncio.TimeoutError:
                # The wire deadline lapsed mid-execution and the handler
                # task was cancelled: answer DEADLINE_EXCEEDED instead
                # of burning further handler time on a dead budget.
                self.cancelled_on_deadline += 1
                METRICS.inc(
                    "rpc.server.cancelled_on_deadline",
                    (program.name, str(call.proc)),
                )
                return self._reject_deadline(call)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - faults cross the wire as data
                return self._fault_reply(call.xid, exc)
            return self._success_reply(call, result)
        finally:
            self._observe(call, program, ctx, started)

    async def _bounded(self, awaitable, call: RpcCall):
        """Await a handler's result, cancelling at the wire deadline."""
        if call.deadline is None:
            return await awaitable
        remaining = call.deadline - self.transport.now()
        return await asyncio.wait_for(awaitable, max(0.0, remaining))

    async def drain_tasks(self) -> None:
        """Wait for every in-flight handler task (test/shutdown helper)."""
        while self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)
