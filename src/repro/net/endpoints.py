"""Network endpoints and datagrams for the simulated network."""

from __future__ import annotations

from typing import Callable, Deque, NamedTuple, Optional
from collections import deque

from repro.errors import CommunicationError


class Address(NamedTuple):
    """Host/port pair identifying an endpoint on a :class:`SimNetwork`.

    Hosts are symbolic names ("sparc1", "rs6000-a"); ports are integers.
    The tuple form lets addresses be used directly as dict keys and be
    marshalled like any other value.
    """

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.host}:{self.port}"


class Datagram(NamedTuple):
    """A single message in flight."""

    source: Address
    destination: Address
    payload: bytes


ReceiveCallback = Callable[[Datagram], None]


class Endpoint:
    """A bound network endpoint.

    Incoming datagrams are either delivered to an ``on_receive`` callback
    (server style) or queued in an inbox for polling (client style).  Both
    modes may be mixed; the callback, when set, takes precedence.
    """

    def __init__(self, network: "SimNetwork", address: Address) -> None:  # noqa: F821
        self._network = network
        self.address = address
        self.inbox: Deque[Datagram] = deque()
        self.on_receive: Optional[ReceiveCallback] = None
        self.closed = False
        self.sent_count = 0
        self.received_count = 0

    def send(self, destination: Address, payload: bytes) -> None:
        """Send ``payload`` to ``destination`` via the owning network."""
        if self.closed:
            raise CommunicationError(f"endpoint {self.address} is closed")
        self.sent_count += 1
        self._network.transmit(Datagram(self.address, destination, payload))

    def deliver(self, datagram: Datagram) -> None:
        """Called by the network when a datagram arrives."""
        if self.closed:
            return
        self.received_count += 1
        if self.on_receive is not None:
            self.on_receive(datagram)
        else:
            self.inbox.append(datagram)

    def poll(self) -> Optional[Datagram]:
        """Pop the oldest queued datagram, or ``None`` when empty."""
        if self.inbox:
            return self.inbox.popleft()
        return None

    def close(self) -> None:
        """Unbind; subsequent sends raise, arriving datagrams are dropped."""
        if not self.closed:
            self.closed = True
            self._network.unbind(self.address)
