"""The simulated network: endpoint registry plus datagram switching."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.errors import CommunicationError, ConfigurationError
from repro.net.clock import SimClock
from repro.net.endpoints import Address, Datagram, Endpoint
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency, LatencyModel


class SimNetwork:
    """Deterministic message-passing network.

    Binds endpoints at ``Address(host, port)``, transmits datagrams through
    a latency model and fault plan, and delivers them as scheduled clock
    events.  One instance plays the role of the whole 1994 workstation
    cluster network.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: int = 1994,
    ) -> None:
        self.clock = clock or SimClock()
        self.latency = latency or FixedLatency()
        self.faults = faults or FaultPlan()
        self.rng = random.Random(seed)
        self._endpoints: Dict[Address, Endpoint] = {}
        self._ephemeral_port = 49152
        self.transmitted_count = 0
        self.delivered_count = 0

    # -- binding ---------------------------------------------------------

    def bind(self, host: str, port: Optional[int] = None) -> Endpoint:
        """Create an endpoint; ``port=None`` picks an ephemeral port."""
        if port is None:
            port = self._next_ephemeral()
        address = Address(host, port)
        if address in self._endpoints:
            raise ConfigurationError(f"address already bound: {address}")
        endpoint = Endpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def unbind(self, address: Address) -> None:
        self._endpoints.pop(address, None)

    def endpoint_at(self, address: Address) -> Optional[Endpoint]:
        return self._endpoints.get(address)

    def addresses(self) -> List[Address]:
        return sorted(self._endpoints)

    def hosts(self) -> Iterable[str]:
        return sorted({address.host for address in self._endpoints})

    # -- transmission ----------------------------------------------------

    def transmit(self, datagram: Datagram) -> None:
        """Queue a datagram for delivery subject to faults and latency."""
        self.transmitted_count += 1
        if self.faults.should_drop(datagram, self.rng):
            return
        copies = 2 if self.faults.should_duplicate(datagram, self.rng) else 1
        for __ in range(copies):
            delay = self.latency.delay(datagram, self.rng)
            self.clock.schedule(delay, lambda d=datagram: self._deliver(d))

    def broadcast(self, source: Address, port: int, payload: bytes) -> int:
        """Send to every bound endpoint on ``port`` except the source.

        Models the prototype's broadcast function at the communication
        level; returns the number of datagrams transmitted.
        """
        count = 0
        for address in list(self._endpoints):
            if address.port == port and address != source:
                self.transmit(Datagram(source, address, payload))
                count += 1
        return count

    def _deliver(self, datagram: Datagram) -> None:
        if self.faults.crashed(datagram.destination.host):
            return
        endpoint = self._endpoints.get(datagram.destination)
        if endpoint is None:
            return  # port unreachable: silently dropped, like UDP
        self.delivered_count += 1
        endpoint.deliver(datagram)

    def _next_ephemeral(self) -> int:
        while True:
            port = self._ephemeral_port
            self._ephemeral_port += 1
            if self._ephemeral_port > 65535:
                raise CommunicationError("ephemeral port space exhausted")
            if all(addr.port != port for addr in self._endpoints):
                return port
