"""Simulated network substrate.

The 1994 prototype ran on a heterogeneous Sun/IBM workstation cluster over
Sun RPC.  This package substitutes a deterministic discrete-event network:
virtual clock, addressable endpoints, datagram delivery through pluggable
latency models, and fault injection (loss, duplication, partitions,
crashes).  The RPC layer in :mod:`repro.rpc` runs unchanged over either this
simulator or real TCP sockets, so every higher layer (naming, trading,
mediation) exercises identical code paths.
"""

from repro.net.aioclock import SimEventLoop, loop_for
from repro.net.clock import SimClock
from repro.net.endpoints import Address, Datagram, Endpoint
from repro.net.faults import FaultPlan
from repro.net.latency import (
    FixedLatency,
    JitteredLatency,
    LanWanLatency,
    LatencyModel,
)
from repro.net.sim import SimNetwork

__all__ = [
    "Address",
    "Datagram",
    "Endpoint",
    "FaultPlan",
    "FixedLatency",
    "JitteredLatency",
    "LanWanLatency",
    "LatencyModel",
    "SimClock",
    "SimEventLoop",
    "SimNetwork",
    "loop_for",
]
