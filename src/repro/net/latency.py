"""Latency models for the simulated network.

The 1994 testbed mixed a local Ethernet segment (sub-millisecond) with
campus links; :class:`LanWanLatency` models that split so benchmarks can
show where network cost dominates (e.g. remote vs. local FSM rejection).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.net.endpoints import Datagram


class LatencyModel:
    """Base class: maps a datagram to a one-way delay in seconds."""

    def delay(self, datagram: Datagram, rng: random.Random) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every datagram takes exactly ``seconds`` to arrive."""

    def __init__(self, seconds: float = 0.001) -> None:
        self.seconds = seconds

    def delay(self, datagram: Datagram, rng: random.Random) -> float:
        return self.seconds


class JitteredLatency(LatencyModel):
    """Uniform delay in ``[base, base + jitter]`` seconds."""

    def __init__(self, base: float = 0.001, jitter: float = 0.002) -> None:
        self.base = base
        self.jitter = jitter

    def delay(self, datagram: Datagram, rng: random.Random) -> float:
        return self.base + rng.random() * self.jitter


class LanWanLatency(LatencyModel):
    """Cheap delivery inside a site, expensive across sites.

    A *site* is the part of the hostname before the first ``.``, or the
    whole hostname when there is no dot; explicit overrides take
    precedence.
    """

    def __init__(
        self,
        lan: float = 0.0005,
        wan: float = 0.040,
        overrides: Dict[Tuple[str, str], float] = None,
    ) -> None:
        self.lan = lan
        self.wan = wan
        self.overrides = dict(overrides or {})

    @staticmethod
    def _site(host: str) -> str:
        return host.split(".", 1)[-1] if "." in host else host

    def delay(self, datagram: Datagram, rng: random.Random) -> float:
        pair = (datagram.source.host, datagram.destination.host)
        if pair in self.overrides:
            return self.overrides[pair]
        if self._site(pair[0]) == self._site(pair[1]):
            return self.lan
        return self.wan
