"""Fault injection for the simulated network.

A :class:`FaultPlan` decides, per datagram, whether to drop or duplicate it
and whether the two hosts are currently partitioned.  Crashed hosts receive
nothing and cannot send.  All decisions use the network's seeded RNG so
failure scenarios replay identically.
"""

from __future__ import annotations

import random
from typing import Set, Tuple

from repro.net.endpoints import Datagram


class FaultPlan:
    """Mutable description of current network pathologies."""

    def __init__(
        self,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._partitions: Set[Tuple[str, str]] = set()
        self._crashed: Set[str] = set()
        self.dropped_count = 0
        self.duplicated_count = 0

    # -- partitions ------------------------------------------------------

    def partition(self, host_a: str, host_b: str) -> None:
        """Cut all traffic between two hosts (both directions)."""
        self._partitions.add(self._key(host_a, host_b))

    def heal(self, host_a: str, host_b: str) -> None:
        """Restore traffic between two hosts."""
        self._partitions.discard(self._key(host_a, host_b))

    def heal_all(self) -> None:
        self._partitions.clear()

    def partitioned(self, host_a: str, host_b: str) -> bool:
        return self._key(host_a, host_b) in self._partitions

    # -- crashes ---------------------------------------------------------

    def crash(self, host: str) -> None:
        """Silently stop a host: its datagrams vanish in both directions."""
        self._crashed.add(host)

    def recover(self, host: str) -> None:
        self._crashed.discard(host)

    def crashed(self, host: str) -> bool:
        return host in self._crashed

    # -- per-datagram decisions -----------------------------------------

    def should_drop(self, datagram: Datagram, rng: random.Random) -> bool:
        """True when this datagram must not be delivered."""
        if self.crashed(datagram.source.host) or self.crashed(datagram.destination.host):
            self.dropped_count += 1
            return True
        if self.partitioned(datagram.source.host, datagram.destination.host):
            self.dropped_count += 1
            return True
        if self.drop_probability and rng.random() < self.drop_probability:
            self.dropped_count += 1
            return True
        return False

    def should_duplicate(self, datagram: Datagram, rng: random.Random) -> bool:
        """True when an extra copy of this datagram should be delivered."""
        if self.duplicate_probability and rng.random() < self.duplicate_probability:
            self.duplicated_count += 1
            return True
        return False

    @staticmethod
    def _key(host_a: str, host_b: str) -> Tuple[str, str]:
        return (host_a, host_b) if host_a <= host_b else (host_b, host_a)
