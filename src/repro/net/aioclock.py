"""Event-loop-driven virtual time: asyncio on a :class:`SimClock`.

The historical stack advances the virtual clock from whichever *thread*
is blocked in ``transport.wait`` — which forces one call at a time and
made federated fan-out serial on simulated stacks.  A
:class:`SimEventLoop` inverts that: it is a real asyncio event loop
whose idea of time **is** the shared :class:`~repro.net.clock.SimClock`.
Whenever every task is blocked, the loop — instead of sleeping on the OS
selector — either runs the next due simulation event (a datagram
delivery, a scheduled fault) or jumps the virtual clock forward to its
own next timer.  Thousands of coroutines can therefore be in flight at
once, all sharing one deterministically-advancing clock:

* ``await asyncio.sleep(1.0)`` completes after one *virtual* second, in
  microseconds of wall time;
* ``asyncio.wait_for`` / ``loop.call_later`` deadlines fire in virtual
  time, so RPC retransmission pacing and cancellation-on-deadline behave
  identically to the wall-clock stack;
* simulation events and loop timers interleave in strict time order
  (ties: the simulation event runs first), one event per loop cycle, so
  a run is reproducible for a given seed — the chaos fingerprints hold.

The integration is a custom selector, not a patched loop: asyncio's
``BaseEventLoop._run_once`` computes "how long may I sleep" and hands it
to ``selector.select(timeout)``; :class:`_SimSelector` treats that span
as *virtual* seconds to advance instead of wall seconds to sleep.  Real
file descriptors (the loop's self-pipe, any sockets a test sneaks in)
are still polled, just without blocking.
"""

from __future__ import annotations

import asyncio
import selectors
import weakref
from typing import Any, Awaitable, List, Optional, Tuple, TypeVar

from repro.net.clock import SimClock

T = TypeVar("T")

#: When the loop has nothing scheduled at all (no timers, no ready
#: callbacks, no simulation events) it must still poll real FDs so
#: thread-safe wakeups can arrive; this bounds that real-time nap.
_IDLE_POLL_SECONDS = 0.02


class _SimSelector(selectors.BaseSelector):
    """A selector that converts "sleep time" into virtual-clock advance.

    Registration calls delegate to a real selector (the event loop
    registers its self-pipe at startup), but :meth:`select` never blocks
    on it while the simulation still has work: real FDs are polled with
    a zero timeout, then at most one simulation event runs — or, when
    none is due, the virtual clock jumps to the loop's next timer.
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._real = selectors.DefaultSelector()

    # -- delegation --------------------------------------------------------

    def register(self, fileobj, events, data=None):
        return self._real.register(fileobj, events, data)

    def unregister(self, fileobj):
        return self._real.unregister(fileobj)

    def modify(self, fileobj, events, data=None):
        return self._real.modify(fileobj, events, data)

    def get_map(self):
        return self._real.get_map()

    def get_key(self, fileobj):
        return self._real.get_key(fileobj)

    def close(self) -> None:
        self._real.close()

    # -- the virtual-time select ------------------------------------------

    def select(self, timeout: Optional[float] = None) -> List[Tuple[Any, int]]:
        ready = self._real.select(0)
        if ready:
            return ready
        if timeout is not None and timeout <= 0:
            # The loop has ready callbacks queued; do not advance time.
            return []
        if timeout is None:
            # No loop timers and nothing ready: the only possible
            # progress is a simulation event.  If even the simulation is
            # idle, nap briefly on real FDs so call_soon_threadsafe (and
            # run_in_executor completions) can still wake us.
            if not self._clock.advance_toward(None):
                return self._real.select(_IDLE_POLL_SECONDS)
            return []
        self._clock.advance_toward(self._clock.now + timeout)
        return []


class SimEventLoop(asyncio.SelectorEventLoop):
    """An asyncio event loop that runs on a :class:`SimClock`.

    ``loop.time()`` *is* the virtual clock, so every asyncio timing
    primitive — ``sleep``, ``wait_for``, ``call_later`` — operates in
    virtual seconds.  Use :func:`run` (or ``loop.run_until_complete``)
    to drive a coroutine to completion; wall-clock elapsed is bounded by
    the work done, not the virtual time simulated.
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.sim_clock = clock if clock is not None else SimClock()
        super().__init__(selector=_SimSelector(self.sim_clock))
        # Virtual time is exact: do not let the wall-clock resolution
        # fudge factor delay timer callbacks past their due time.
        self._clock_resolution = 1e-9

    def time(self) -> float:
        return self.sim_clock.now


#: One loop per clock, so every component of one simulated world — sync
#: callers driving ``run_until_complete``, async servers creating tasks —
#: schedules onto the same ready queue.  Weak keys: a dropped network
#: drops its loop; the finalizer closes the loop's real FDs.
_loops: "weakref.WeakKeyDictionary[SimClock, SimEventLoop]" = (
    weakref.WeakKeyDictionary()
)


def loop_for(clock: SimClock) -> SimEventLoop:
    """The shared :class:`SimEventLoop` driving ``clock`` (created once)."""
    loop = _loops.get(clock)
    if loop is None:
        loop = SimEventLoop(clock)
        _loops[clock] = loop
        weakref.finalize(clock, _close_quietly, loop)
    return loop


def _close_quietly(loop: SimEventLoop) -> None:
    try:
        if not loop.is_running():
            loop.close()
    except Exception:  # noqa: BLE001 - finalizers must never raise
        pass


def run(coro: Awaitable[T], clock: Optional[SimClock] = None) -> T:
    """Run ``coro`` to completion on the clock's shared loop.

    The virtual-time analogue of :func:`asyncio.run` — but the loop (and
    the clock's accumulated state) survives, so successive calls continue
    the same simulated world.  Must not be called while that loop is
    already running (e.g. from inside one of its own callbacks).
    """
    loop = loop_for(clock) if clock is not None else SimEventLoop()
    return loop.run_until_complete(coro)
