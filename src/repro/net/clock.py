"""Virtual clock and event queue for the discrete-event network simulator.

All simulated components share one :class:`SimClock`.  Time is a float in
seconds and only advances when events run, which makes every test and
benchmark deterministic and independent of wall-clock speed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError

EventCallback = Callable[[], None]


class ScheduledEvent:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: EventCallback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call twice."""
        self.cancelled = True


class SimClock:
    """Priority-queue driven virtual clock.

    Events scheduled for the same instant run in scheduling order, which
    keeps multi-endpoint interleavings reproducible.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: EventCallback) -> ScheduledEvent:
        """Run ``callback`` ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run on the next
        :meth:`step` in FIFO order.
        """
        if delay < 0:
            raise ConfigurationError(f"cannot schedule into the past: {delay!r}")
        event = ScheduledEvent(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule_at(self, when: float, callback: EventCallback) -> ScheduledEvent:
        """Run ``callback`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback)

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return sum(1 for __, __, ev in self._queue if not ev.cancelled)

    def step(self) -> bool:
        """Run the next event; return ``False`` when the queue is empty."""
        while self._queue:
            time, __, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time
            event.callback()
            return True
        return False

    def run_until(
        self,
        predicate: Callable[[], bool],
        deadline: Optional[float] = None,
    ) -> bool:
        """Run events until ``predicate()`` is true.

        Returns ``True`` when the predicate held, ``False`` when the event
        queue drained or virtual time passed ``deadline`` first.  The
        deadline is an absolute virtual time.
        """
        while True:
            if predicate():
                return True
            if deadline is not None and self._now >= deadline:
                return False
            if not self._peek_within(deadline):
                return predicate()
            self.step()

    def advance_toward(self, target: Optional[float]) -> bool:
        """Advance virtual time by at most one event, bounded by ``target``.

        The primitive the event-loop integration
        (:mod:`repro.net.aioclock`) drives: run the earliest runnable
        event when it is due at or before ``target`` (advancing ``now``
        to its time) and return ``True``; otherwise jump ``now`` straight
        to ``target`` and return ``False``.  ``target=None`` means "no
        bound": run one event if any exists.  Stepping one event at a
        time lets the caller interleave its own timers with simulation
        events deterministically.
        """
        while self._queue:
            time, __, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if target is not None and time > target:
                self._now = max(self._now, target)
                return False
            self.step()
            return True
        if target is not None:
            self._now = max(self._now, target)
        return False

    def run_for(self, duration: float) -> None:
        """Run all events scheduled within the next ``duration`` seconds."""
        target = self._now + duration
        while self._queue:
            time, __, event = self._queue[0]
            if time > target:
                break
            self.step()
        self._now = max(self._now, target)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run events until none remain; returns the number executed.

        ``max_events`` guards against accidentally unbounded simulations.
        """
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise ConfigurationError(
                    f"simulation did not quiesce within {max_events} events"
                )
        return count

    def _peek_within(self, deadline: Optional[float]) -> bool:
        """True when a runnable event exists at or before ``deadline``.

        When nothing runnable remains before the deadline, virtual time
        jumps *to* the deadline, so callers waiting with a timeout always
        observe it elapse — even on an otherwise idle network.
        """
        while self._queue:
            time, __, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if deadline is not None and time > deadline:
                self._now = deadline
                return False
            return True
        if deadline is not None:
            self._now = max(self._now, deadline)
        return False
