"""``python -m repro`` — a two-minute tour of the COSM infrastructure.

Runs a compact end-to-end narrative on a simulated network: an innovative
service registers at a browser, a generic client drives it through a
generated UI, the service matures into a trader offer, and an importer
selects and books through the trader — the whole arc of the paper.

Subcommands::

    python -m repro                     # the tour (default)
    python -m repro telemetry-report …  # per-layer latency report
    python -m repro telemetry-dash …    # live RED dashboard (tail + STATS)
    python -m repro stats HOST:PORT     # one-shot STATS snapshot dump
    python -m repro sharded-trader …    # sharded trader: placement, failover
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional, Sequence, Tuple


def _run_tour(argv: Sequence[str]) -> int:
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0
    tour()
    return 0


def _run_telemetry_report(argv: Sequence[str]) -> int:
    from repro.telemetry import report

    return report.main(list(argv))


def _run_telemetry_dash(argv: Sequence[str]) -> int:
    from repro.telemetry import live

    return live.main(list(argv))


def _run_stats(argv: Sequence[str]) -> int:
    from repro.rpc import stats

    return stats.main(list(argv))


def _run_sharded_trader(argv: Sequence[str]) -> int:
    from repro.trader.sharding import cli

    return cli.main(list(argv))


#: subcommand -> (runner, one-line help).  ``tour`` is also the default
#: when no subcommand is given.
COMMANDS: Dict[str, Tuple[Callable[[Sequence[str]], int], str]] = {
    "tour": (_run_tour, "end-to-end narrative on a simulated network (default)"),
    "telemetry-report": (_run_telemetry_report, "per-layer latency report from a JSONL trace"),
    "telemetry-dash": (_run_telemetry_dash, "live RED dashboard: tail a JSONL trace and/or poll STATS"),
    "stats": (_run_stats, "fetch one STATS snapshot from a live server"),
    "sharded-trader": (
        _run_sharded_trader,
        "sharded/replicated trader walkthrough: placement, fan-out, failover",
    ),
}


def _usage(stream) -> None:
    print("usage: python -m repro [SUBCOMMAND] [OPTIONS]", file=stream)
    print("\nsubcommands:", file=stream)
    width = max(len(name) for name in COMMANDS)
    for name, (_, help_text) in COMMANDS.items():
        print(f"  {name:<{width}}  {help_text}", file=stream)
    print(
        "\nrun 'python -m repro SUBCOMMAND --help' for subcommand options",
        file=stream,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        return _run_tour([])
    head, rest = argv[0], argv[1:]
    if head in ("-h", "--help", "help"):
        _usage(sys.stdout)
        return 0
    entry = COMMANDS.get(head)
    if entry is None:
        print(f"unknown subcommand {head!r}", file=sys.stderr)
        _usage(sys.stderr)
        return 2
    return entry[0](rest)


def tour() -> None:
    from repro.core import BrowserService, CosmMediator, GenericClient, make_tradable
    from repro.net import SimNetwork
    from repro.rpc import RpcClient, RpcServer
    from repro.rpc.transport import SimTransport
    from repro.services import start_car_rental, start_stock_quotes
    from repro.sidl.fsm import FsmViolation
    from repro.trader.trader import TraderClient, TraderService
    from repro.uims.session import UiSession

    print(__doc__.strip().splitlines()[0])
    print("=" * 64)
    net = SimNetwork()

    print("\n[1] providers start and register their SIDs at the browser")
    rental = start_car_rental(RpcServer(SimTransport(net, "rental-host")))
    quotes = start_stock_quotes(RpcServer(SimTransport(net, "quotes-host")))
    browser = BrowserService(RpcServer(SimTransport(net, "browser-host")))
    browser.register_local(rental)
    browser.register_local(quotes)
    print(f"    browser now lists {browser.entries()} services")

    print("\n[2] a generic client browses and binds — no stubs, no foreknowledge")
    generic = GenericClient(RpcClient(SimTransport(net, "user-host")))
    session = UiSession(generic)
    session.open(browser.ref)
    session.fill("Search.query", "rental")
    session.click("Search")
    session.click_bind("Search")
    print(f"    bound to {session.current.title}; "
          f"state {session.state()}, enabled: {session.current.enabled_operations()}")

    print("\n[3] the FSM guards the protocol locally")
    try:
        session.click("BookCar")
    except FsmViolation as violation:
        print(f"    rejected without network traffic: {violation}")

    print("\n[4] the generated form drives the service")
    session.fill("SelectCar.selection.CarModel", "VW-Golf")
    session.fill("SelectCar.selection.BookingDate", "1994-08-01")
    session.fill("SelectCar.selection.Days", 3)
    quote = session.click("SelectCar")
    booking = session.click("BookCar")
    print(f"    quoted {quote['charge']} {quote['currency']}, "
          f"confirmation {booking['confirmation']}")

    print("\n[5] the service matures: its export embedding becomes a trader offer")
    trader_service = TraderService(RpcServer(SimTransport(net, "trader-host")))
    trader = TraderClient(RpcClient(SimTransport(net, "exporter-host")), trader_service.address)
    offer_id = make_tradable(rental.sid, rental.ref, trader)
    print(f"    exported as {offer_id}")

    print("\n[6] an importer selects by constraint and binds directly")
    mediator = CosmMediator(
        RpcClient(SimTransport(net, "importer-host")),
        trader_address=trader_service.address,
        browser_refs=[browser.ref],
    )
    binding = mediator.bind_best("CarRentalService", "ChargePerDay < 100")
    result = binding.invoke(
        "SelectCar",
        {"selection": {"CarModel": "AUDI", "BookingDate": "1994-08-02", "Days": 1}},
    )
    print(f"    via trader: {result.value}")
    print("\nall layers exercised — see examples/ for the full walkthroughs.")


if __name__ == "__main__":
    raise SystemExit(main())
