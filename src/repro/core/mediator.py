"""The COSM mediator: one façade over both cooperation schemas (§3.3).

Given a user need, the mediator

* asks the trader when the need names a *standardised service type*
  (attribute constraints, best-fit selection), and
* browses the registered browsers when the need is a free-text query
  about *innovative* services,

and in both cases hands back generic bindings, so the calling application
never distinguishes how the service was found — exactly the integration
argument of chapter 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.browser import BrowserClient, BrowserEntry
from repro.core.generic_client import GenericBinding, GenericClient
from repro.errors import LookupFailure
from repro.naming.refs import ServiceRef
from repro.rpc.client import RpcClient
from repro.net.endpoints import Address
from repro.trader.trader import ImportRequest, TraderClient


@dataclass
class DiscoveryResult:
    """One discovered service, however it was found."""

    ref: ServiceRef
    via: str  # "trader" or "browser"
    detail: str  # offer id / browser service id


class CosmMediator:
    """Combines trader import and browser mediation behind one API."""

    def __init__(
        self,
        client: RpcClient,
        trader_address: Optional[Address] = None,
        browser_refs: Sequence[ServiceRef] = (),
    ) -> None:
        self._client = client
        self.generic = GenericClient(client)
        self.trader: Optional[TraderClient] = (
            TraderClient(client, trader_address) if trader_address else None
        )
        self._browser_refs = list(browser_refs)

    def add_browser(self, ref: ServiceRef) -> None:
        self._browser_refs.append(ref)

    # -- discovery --------------------------------------------------------------

    def import_from_trader(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        max_matches: int = 0,
    ) -> List[DiscoveryResult]:
        """Trader cooperation schema: by type + constraints (Fig. 1)."""
        if self.trader is None:
            raise LookupFailure("no trader configured for this mediator")
        offers = self.trader.import_(
            ImportRequest(service_type, constraint, preference, max_matches)
        )
        return [
            DiscoveryResult(offer.service_ref(), "trader", offer.offer_id)
            for offer in offers
        ]

    def browse(self, query: str = "") -> List[DiscoveryResult]:
        """Browser mediation schema: free-text over registered SIDs."""
        results: List[DiscoveryResult] = []
        for browser_ref in self._browser_refs:
            browser = BrowserClient(self._client, browser_ref)
            try:
                entries = browser.search(query) if query else browser.list()
            finally:
                browser.close()
            results.extend(
                DiscoveryResult(entry.ref, "browser", entry.service_id)
                for entry in entries
            )
        unique = {}
        for result in results:
            unique.setdefault(result.ref.service_id, result)
        return list(unique.values())

    def discover(
        self,
        query: str,
        service_type: Optional[str] = None,
        constraint: str = "",
        preference: str = "",
    ) -> List[DiscoveryResult]:
        """Integrated lookup: trader first when a type is known, then
        browsers; duplicates (same service id) collapse to the trader hit."""
        results: List[DiscoveryResult] = []
        if service_type and self.trader is not None:
            try:
                results.extend(
                    self.import_from_trader(service_type, constraint, preference)
                )
            except LookupFailure:
                pass
        seen = {result.ref.service_id for result in results}
        results.extend(
            hit for hit in self.browse(query) if hit.ref.service_id not in seen
        )
        return results

    # -- binding -----------------------------------------------------------------

    def bind(self, result: DiscoveryResult) -> GenericBinding:
        return self.generic.bind(result.ref)

    def bind_best(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
    ) -> GenericBinding:
        """Select the trader's best offer and bind it in one step."""
        hits = self.import_from_trader(service_type, constraint, preference, 1)
        if not hits:
            raise LookupFailure(
                f"no offer for type {service_type!r} with {constraint!r}"
            )
        return self.bind(hits[0])
