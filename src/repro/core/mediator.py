"""The COSM mediator: one façade over both cooperation schemas (§3.3).

Given a user need, the mediator

* asks the trader when the need names a *standardised service type*
  (attribute constraints, best-fit selection), and
* browses the registered browsers when the need is a free-text query
  about *innovative* services,

and in both cases hands back generic bindings, so the calling application
never distinguishes how the service was found — exactly the integration
argument of chapter 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.context import CallContext
from repro.core.browser import BrowserClient
from repro.core.generic_client import GenericBinding, GenericClient
from repro.errors import BindingError, LookupFailure
from repro.rpc.errors import DeadlineExceeded
from repro.naming.refs import ServiceRef
from repro.rpc.client import RpcClient
from repro.net.endpoints import Address
from repro.trader.trader import ImportRequest, TraderClient


@dataclass
class DiscoveryResult:
    """One discovered service, however it was found."""

    ref: ServiceRef
    via: str  # "trader" or "browser"
    detail: str  # offer id / browser service id


class CosmMediator:
    """Combines trader import and browser mediation behind one API."""

    def __init__(
        self,
        client: RpcClient,
        trader_address: Optional[Address] = None,
        browser_refs: Sequence[ServiceRef] = (),
    ) -> None:
        self._client = client
        self.generic = GenericClient(client)
        self.trader: Optional[TraderClient] = (
            TraderClient(client, trader_address) if trader_address else None
        )
        self._browser_refs = list(browser_refs)

    def add_browser(self, ref: ServiceRef) -> None:
        self._browser_refs.append(ref)

    # -- discovery --------------------------------------------------------------

    def import_from_trader(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        max_matches: int = 0,
        ctx: Optional[CallContext] = None,
    ) -> List[DiscoveryResult]:
        """Trader cooperation schema: by type + constraints (Fig. 1)."""
        if self.trader is None:
            raise LookupFailure("no trader configured for this mediator")
        offers = self.trader.import_(
            ImportRequest(service_type, constraint, preference, max_matches),
            ctx=ctx,
        )
        return [
            DiscoveryResult(offer.service_ref(), "trader", offer.offer_id)
            for offer in offers
        ]

    def browse(
        self, query: str = "", ctx: Optional[CallContext] = None
    ) -> List[DiscoveryResult]:
        """Browser mediation schema: free-text over registered SIDs.

        With a ``ctx``, the sweep over browsers stops cleanly once the
        budget runs out: whatever was gathered so far is returned instead
        of starting another doomed round trip.
        """
        results: List[DiscoveryResult] = []
        for browser_ref in self._browser_refs:
            if ctx is not None and ctx.expired(self._client.transport.now()):
                break
            try:
                browser = BrowserClient(self._client, browser_ref, ctx=ctx)
                try:
                    entries = browser.search(query) if query else browser.list()
                finally:
                    browser.close()
            except (DeadlineExceeded, BindingError):
                if ctx is not None and ctx.expired(self._client.transport.now()):
                    # The budget ran out mid-sweep: partial results beat
                    # an exception that throws away what was gathered.
                    break
                raise
            results.extend(
                DiscoveryResult(entry.ref, "browser", entry.service_id)
                for entry in entries
            )
        unique = {}
        for result in results:
            unique.setdefault(result.ref.service_id, result)
        return list(unique.values())

    def discover(
        self,
        query: str,
        service_type: Optional[str] = None,
        constraint: str = "",
        preference: str = "",
        ctx: Optional[CallContext] = None,
    ) -> List[DiscoveryResult]:
        """Integrated lookup: trader first when a type is known, then
        browsers; duplicates (same service id) collapse to the trader hit.

        One context (freshly created when none is given) covers the whole
        sweep, so the per-layer cost of a mediated lookup is visible in
        its span chain."""
        if ctx is None:
            ctx = CallContext.background()
        results: List[DiscoveryResult] = []
        with ctx.span("mediator", f"discover {query or service_type or '*'}",
                      self._client.transport.now):
            if service_type and self.trader is not None:
                try:
                    results.extend(
                        self.import_from_trader(
                            service_type, constraint, preference, ctx=ctx
                        )
                    )
                except LookupFailure:
                    pass
            seen = {result.ref.service_id for result in results}
            results.extend(
                hit
                for hit in self.browse(query, ctx=ctx)
                if hit.ref.service_id not in seen
            )
        return results

    # -- binding -----------------------------------------------------------------

    def bind(
        self, result: DiscoveryResult, ctx: Optional[CallContext] = None
    ) -> GenericBinding:
        return self.generic.bind(result.ref, ctx=ctx)

    def bind_best(
        self,
        service_type: str,
        constraint: str = "",
        preference: str = "",
        ctx: Optional[CallContext] = None,
    ) -> GenericBinding:
        """Select the trader's best offer and bind it in one step.

        The selection and the binding share ``ctx``'s budget — the Fig. 4
        browse→bind→invoke path with one deadline end to end."""
        hits = self.import_from_trader(
            service_type, constraint, preference, 1, ctx=ctx
        )
        if not hits:
            raise LookupFailure(
                f"no offer for type {service_type!r} with {constraint!r}"
            )
        return self.bind(hits[0], ctx=ctx)
