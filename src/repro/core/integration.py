"""Integrating innovative and tradable services (§4.1).

The maturation path: an innovative service starts browsable-only; once a
service type is agreed, its SID's ``COSM_TraderExport`` embedding supplies
everything the trader needs — the type (derived or pre-registered) and the
offer's property values — while the service *stays accessible to generic
clients* unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.errors import CosmError
from repro.naming.refs import ServiceRef
from repro.rpc.errors import RemoteFault
from repro.sidl.sid import ServiceDescription
from repro.trader.errors import DuplicateServiceType
from repro.trader.service_types import ServiceType, service_type_from_sid
from repro.trader.trader import LocalTrader, TraderClient

_RESERVED_EXPORT_KEYS = ("ServiceID", "TOD", "ServiceType")


def export_properties(sid: ServiceDescription) -> Dict[str, Any]:
    """The offer properties a SID's trader export carries (§4.1)."""
    export = sid.trader_export or {}
    return {
        key: value for key, value in export.items() if key not in _RESERVED_EXPORT_KEYS
    }


def make_tradable(
    sid: ServiceDescription,
    ref: ServiceRef,
    trader: Union[LocalTrader, TraderClient],
    service_type: Optional[ServiceType] = None,
    now: float = 0.0,
) -> str:
    """Register a SID-described service at a trader; returns the offer id.

    * When the trader does not yet know the service type, it is derived
      from the SID (``service_type_from_sid``) and registered first —
      modelling the standardisation step of §2.2.
    * When the type already exists, only the offer is exported, which is
      the cheap steady-state transition the paper argues for.

    Raises :class:`CosmError` when the SID has no ``COSM_TraderExport``
    embedding: a purely innovative SID is not tradable yet.
    """
    if sid.trader_export is None:
        raise CosmError(
            f"SID {sid.name!r} carries no COSM_TraderExport; "
            f"it can only be mediated via browsers"
        )
    derived = service_type or service_type_from_sid(sid)
    if isinstance(trader, LocalTrader):
        if not trader.types.has(derived.name):
            trader.add_type(derived, now)
        return trader.export(derived.name, ref, export_properties(sid), now)
    # Remote trader via RPC stub.
    if derived.name not in trader.list_types():
        try:
            trader.add_type(derived)
        except DuplicateServiceType:
            pass  # registration race with another exporter
        except RemoteFault as exc:
            if exc.kind != "DuplicateServiceType":
                raise
    return trader.export(derived.name, ref, export_properties(sid))
