"""Integrating innovative and tradable services (§4.1).

The maturation path: an innovative service starts browsable-only; once a
service type is agreed, its SID's ``COSM_TraderExport`` embedding supplies
everything the trader needs — the type (derived or pre-registered) and the
offer's property values — while the service *stays accessible to generic
clients* unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.errors import CosmError
from repro.naming.refs import ServiceRef
from repro.rpc.errors import RemoteFault
from repro.sidl.sid import ServiceDescription
from repro.trader.errors import DuplicateServiceType
from repro.trader.leases import LeaseHeartbeat, keep_alive
from repro.trader.service_types import ServiceType, service_type_from_sid
from repro.trader.trader import LocalTrader, TraderClient

_RESERVED_EXPORT_KEYS = ("ServiceID", "TOD", "ServiceType")


def export_properties(sid: ServiceDescription) -> Dict[str, Any]:
    """The offer properties a SID's trader export carries (§4.1)."""
    export = sid.trader_export or {}
    return {
        key: value for key, value in export.items() if key not in _RESERVED_EXPORT_KEYS
    }


def make_tradable(
    sid: ServiceDescription,
    ref: ServiceRef,
    trader: Union[LocalTrader, TraderClient],
    service_type: Optional[ServiceType] = None,
    now: float = 0.0,
    lease_seconds: Optional[float] = None,
) -> str:
    """Register a SID-described service at a trader; returns the offer id.

    * When the trader does not yet know the service type, it is derived
      from the SID (``service_type_from_sid``) and registered first —
      modelling the standardisation step of §2.2.
    * When the type already exists, only the offer is exported, which is
      the cheap steady-state transition the paper argues for.

    ``lease_seconds`` asks the trader for a liveness lease instead of an
    until-withdrawn offer; pair it with :func:`keep_tradable` (or
    :func:`repro.trader.leases.keep_alive`) so the offer stays matchable
    while the service lives.

    Raises :class:`CosmError` when the SID has no ``COSM_TraderExport``
    embedding: a purely innovative SID is not tradable yet.
    """
    if sid.trader_export is None:
        raise CosmError(
            f"SID {sid.name!r} carries no COSM_TraderExport; "
            f"it can only be mediated via browsers"
        )
    derived = service_type or service_type_from_sid(sid)
    if isinstance(trader, LocalTrader):
        if not trader.types.has(derived.name):
            trader.add_type(derived, now)
        return trader.export(
            derived.name, ref, export_properties(sid), now,
            lease_seconds=lease_seconds,
        )
    # Remote trader via RPC stub.
    if derived.name not in trader.list_types():
        try:
            trader.add_type(derived)
        except DuplicateServiceType:
            pass  # registration race with another exporter
        except RemoteFault as exc:
            if exc.kind != "DuplicateServiceType":
                raise
    return trader.export(
        derived.name, ref, export_properties(sid), lease_seconds=lease_seconds
    )


def keep_tradable(
    sid: ServiceDescription,
    ref: ServiceRef,
    trader: Union[LocalTrader, TraderClient],
    lease_seconds: float,
    clock: Optional[Any] = None,
    service_type: Optional[ServiceType] = None,
    now: float = 0.0,
) -> LeaseHeartbeat:
    """Export with a liveness lease and keep heartbeating it.

    The combination a service runtime wants at startup: the offer is
    registered via :func:`make_tradable`, then a
    :class:`~repro.trader.leases.LeaseHeartbeat` renews it at the default
    cadence — on ``clock`` (a :class:`~repro.net.clock.SimClock`) in
    simulations, or via ``heartbeat.start_thread()`` on the wall clock.
    Should the trader sweep the offer anyway (the host was partitioned
    past its lease), the heartbeat **re-exports** it with the same SID and
    reference, so a recovered service re-enters the market on its own.
    """

    def current() -> float:
        # SimClock exposes ``now`` as a property; other clock-likes may
        # provide a callable.  No clock means the caller's fixed ``now``.
        value = getattr(clock, "now", None) if clock is not None else None
        if value is None:
            return now
        return value() if callable(value) else value

    def export() -> str:
        return make_tradable(
            sid, ref, trader,
            service_type=service_type, now=current(),
            lease_seconds=lease_seconds,
        )

    offer_id = export()
    if isinstance(trader, LocalTrader):
        renew = lambda oid: trader.renew(oid, current())  # noqa: E731
    else:
        renew = trader.renew
    return keep_alive(renew, offer_id, lease_seconds, clock=clock, reexport=export)
