"""The Generic Client (§3.2, Figs. 3 & 4).

Binds to arbitrary services it has never seen: the SID is transferred at
bind time, and everything else — marshalling, protocol checking, the user
interface — is derived from it:

* **dynamic marshalling**: arguments are validated against the SID's
  types before they cross the wire (no generated stubs anywhere),
* **local FSM interception** (§4.2): invocations that do not conform to
  the current communication state are "rejected locally", saving the
  round trip — the client keeps a mirror FSM session in lock-step with
  the server's,
* **cascade binding** (Fig. 4): every SERVICEREFERENCE found in a result
  can be bound in turn; each binding knows its cascade depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.context import CallContext
from repro.errors import BindingError
from repro.naming.binder import Binder, Binding
from repro.naming.refs import ServiceRef, find_refs
from repro.rpc.client import RpcClient
from repro.sidl.fsm import FsmSession, FsmViolation
from repro.sidl.sid import ServiceDescription
from repro.sidl.types import OperationType


@dataclass
class InvocationResult:
    """Outcome of one dynamic invocation."""

    operation: str
    value: Any
    state: Optional[str] = None  # FSM state after the call, if any
    references: List[ServiceRef] = field(default_factory=list)

    @property
    def has_references(self) -> bool:
        return bool(self.references)


class GenericClient:
    """Creates generic bindings; one per human user / application."""

    def __init__(
        self,
        client: RpcClient,
        enforce_fsm: bool = True,
        check_types: bool = True,
    ) -> None:
        self._client = client
        self._binder = Binder(client)
        self.enforce_fsm = enforce_fsm
        self.check_types = check_types
        self.bindings_opened = 0
        self.local_rejections = 0

    def bind(
        self,
        ref: ServiceRef,
        _depth: int = 0,
        ctx: Optional[CallContext] = None,
    ) -> "GenericBinding":
        """Bind and transfer the SID (Fig. 3, steps "SID Transfer")."""
        binding = self._binder.bind(ref, fetch_sid=True, ctx=ctx)
        self.bindings_opened += 1
        return GenericBinding(self, binding, depth=_depth, ctx=ctx)

    def bind_wire(
        self, ref_wire: Dict[str, Any], ctx: Optional[CallContext] = None
    ) -> "GenericBinding":
        return self.bind(ServiceRef.from_wire(ref_wire), ctx=ctx)


class GenericBinding:
    """A SID-driven session with one service."""

    def __init__(
        self,
        owner: GenericClient,
        binding: Binding,
        depth: int = 0,
        ctx: Optional[CallContext] = None,
    ) -> None:
        self._owner = owner
        self._binding = binding
        self.depth = depth
        self.ctx = ctx  # shared across the whole cascade (Fig. 4)
        self.sid: ServiceDescription = binding.fetch_sid()
        self.fsm: Optional[FsmSession] = self.sid.new_session()
        self.discovered: List[ServiceRef] = []
        self.invocations = 0
        self.local_rejections = 0

    # -- introspection (everything the generated UI needs) --------------------

    @property
    def ref(self) -> ServiceRef:
        return self._binding.ref

    @property
    def service_name(self) -> str:
        return self.sid.name

    def operations(self) -> List[str]:
        return self.sid.operation_names()

    def operation(self, name: str) -> OperationType:
        return self.sid.interface.operation(name)

    def allowed_operations(self) -> List[str]:
        """Operations legal in the current FSM state (all, if no FSM)."""
        names = self.operations()
        if self.fsm is None:
            return names
        return [name for name in names if self.fsm.allows(name)]

    def describe(self, operation_name: str) -> str:
        """Signature plus the SID's natural-language annotation, if any."""
        signature = self.operation(operation_name).describe()
        annotation = self.sid.annotation_for(operation_name)
        if annotation:
            return f"{signature}  -- {annotation}"
        return signature

    def state(self) -> Optional[str]:
        return self.fsm.state if self.fsm is not None else None

    # -- invocation ------------------------------------------------------------

    def invoke(
        self,
        operation_name: str,
        arguments: Optional[Dict[str, Any]] = None,
        ctx: Optional[CallContext] = None,
    ) -> InvocationResult:
        """Dynamically marshalled, FSM-guarded invocation."""
        ctx = ctx if ctx is not None else self.ctx
        operation = self.operation(operation_name)
        arguments = arguments or {}
        if self._owner.check_types:
            arguments = operation.check_arguments(arguments)
        if self._owner.enforce_fsm and self.fsm is not None:
            if not self.fsm.allows(operation_name):
                # Rejected locally (§4.2): no network traffic happens.
                self.local_rejections += 1
                self._owner.local_rejections += 1
                self.fsm.rejections += 1
                raise FsmViolation(
                    self.fsm.state,
                    operation_name,
                    self.fsm.spec.allowed_in(self.fsm.state),
                )
        if ctx is not None:
            with ctx.span("generic", operation_name,
                          self._owner._client.transport.now):
                value = self._binding.invoke(operation_name, arguments, ctx=ctx)
        else:
            value = self._binding.invoke(operation_name, arguments)
        self.invocations += 1
        if self.fsm is not None:
            self.fsm.advance(operation_name)
        references = find_refs(value)
        self.discovered.extend(references)
        return InvocationResult(
            operation=operation_name,
            value=value,
            state=self.state(),
            references=references,
        )

    # -- cascade binding (Fig. 4) -------------------------------------------------

    def bind_reference(self, ref: ServiceRef) -> "GenericBinding":
        """Bind a reference obtained from this service; depth increases.

        The child binding inherits this binding's context, so the whole
        Fig. 4 cascade drains one deadline budget under one trace id.
        """
        return self._owner.bind(ref, _depth=self.depth + 1, ctx=self.ctx)

    def bind_discovered(self, index: int = 0) -> "GenericBinding":
        if not self.discovered:
            raise BindingError("no service references discovered yet")
        return self.bind_reference(self.discovered[index])

    # -- lifecycle ---------------------------------------------------------------

    def unbind(self) -> None:
        self._binding.unbind()

    def __enter__(self) -> "GenericBinding":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unbind()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GenericBinding {self.service_name} depth={self.depth} "
            f"state={self.state()}>"
        )
