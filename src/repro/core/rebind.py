"""Rebind-on-failure: the client half of end-to-end failure recovery.

Leases (:mod:`repro.trader.leases`) guarantee the *trader* forgets dead
exporters; :class:`~repro.rpc.resilience.ResilientCaller` guarantees a
*call* fails over across the offers an import returned.  What is still
missing after both is the refresh step: when every cached offer is
exhausted — the whole cohort crashed, or the leases lapsed while the
client sat idle — the client must go **back to the trader** and import
afresh, because a recovered exporter re-enters the market as a *new*
offer the old offer list knows nothing about.

:class:`RebindingClient` closes that loop.  It caches the ranked offer
list per import request, invokes through the generic client with
failover across it, drops the cache and re-imports when the list is
spent or lease-expired, and only then gives up.  A service that crashes
and re-exports is therefore picked up by running clients without a
restart — the paper's "best possible service *at bind time*" promise
extended over failures.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.context import CallContext
from repro.core.generic_client import GenericBinding, GenericClient
from repro.errors import BindingError, CommunicationError, LookupFailure
from repro.naming.binder import PROC_BIND, PROC_INVOKE
from repro.rpc.client import RpcClient
from repro.rpc.errors import DeadlineExceeded, RpcError
from repro.rpc.resilience import CircuitOpen, ResilientCaller, transient
from repro.telemetry.metrics import METRICS
from repro.trader.offers import ServiceOffer
from repro.trader.trader import ImportRequest

_CacheKey = Tuple[str, str, str]


class RebindingClient:
    """Invoke-by-service-type with failover and trader re-import.

    ``trader`` is anything with ``import_(request, ctx=...)`` returning
    offers — a :class:`~repro.trader.trader.TraderClient` normally, or a
    co-located :class:`~repro.trader.trader.LocalTrader` in tests.

    One instance serves many service types; offer lists and open bindings
    are cached per ``(service_type, constraint, preference)`` request and
    per offer respectively, so steady-state invocations cost exactly one
    INVOKE round trip.
    """

    def __init__(
        self,
        client: RpcClient,
        trader: Any,
        resilient: Optional[ResilientCaller] = None,
        generic: Optional[GenericClient] = None,
        max_matches: int = 0,
        max_rebinds: int = 2,
        async_client: Any = None,
    ) -> None:
        self._client = client
        self._trader = trader
        self.generic = generic or GenericClient(client)
        self.resilient = resilient or ResilientCaller(client)
        # 0 = "all matches": the deeper the ranked list, the more crashes
        # a single invocation can ride out before a re-import is needed.
        self.max_matches = max_matches
        self.max_rebinds = max(0, max_rebinds)
        # An AsyncRpcClient enables invoke_async; the async path keeps
        # raw session ids instead of GenericBinding objects (no SID/FSM
        # mirror: async invocations are for data-plane calls, not the
        # generated UI).
        self._async_client = async_client
        self._async_sessions: Dict[str, Any] = {}
        self._offers: Dict[_CacheKey, List[ServiceOffer]] = {}
        self._bindings: Dict[str, GenericBinding] = {}
        self._lock = threading.Lock()
        self.rebinds = 0
        self.imports = 0

    # -- invocation --------------------------------------------------------

    def invoke(
        self,
        service_type: str,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        constraint: str = "",
        preference: str = "",
        ctx: Optional[CallContext] = None,
    ) -> Any:
        """Invoke ``operation`` on the best live offer of ``service_type``.

        Failover order is the trader's ranking.  When every candidate
        fails transiently (or every lease in the cache has lapsed), the
        offer cache is dropped and a fresh import runs — up to
        ``max_rebinds`` times — so offers exported *after* the cache was
        filled (a crashed server that came back) are found.  Each round
        runs on a slice of the remaining deadline (``remaining /
        rounds_left``) so a dead cohort cannot eat the budget a
        re-import needs; once the *overall* budget lapses,
        :class:`DeadlineExceeded` propagates — re-importing cannot buy a
        request more time.
        """
        key: _CacheKey = (service_type, constraint, preference)
        last_error: Optional[BaseException] = None
        rounds = 1 + self.max_rebinds
        for attempt in range(rounds):
            offers = self._usable_offers(key, ctx, refresh=attempt > 0)
            if not offers:
                if last_error is not None:
                    raise last_error
                raise LookupFailure(
                    f"no live offer for type {service_type!r}"
                    + (f" with {constraint!r}" if constraint else "")
                )
            try:
                return self.resilient.run(
                    offers,
                    lambda offer, child: self._attempt(offer, operation,
                                                       arguments, child),
                    ctx=self._round_context(ctx, rounds - attempt),
                    key=_endpoint,
                    operation=f"{service_type}.{operation}",
                )
            except DeadlineExceeded:
                if ctx is None or ctx.expired(self._client.transport.now()):
                    raise  # truly out of budget
                last_error = None  # only this round's slice lapsed
            except (CommunicationError, CircuitOpen, BindingError) as exc:
                if not transient(exc):
                    raise
                last_error = exc
            # The whole ranked list is dead or shedding: forget it and
            # ask the trader again — recovery may have re-exported.
            self._evict(key, offers)
            self.rebinds += 1
            METRICS.inc("client.rebinds", (service_type,))
        if last_error is not None:
            raise last_error
        raise DeadlineExceeded(
            f"budget spent across {rounds} bind round(s) for {service_type!r}"
        )

    async def invoke_async(
        self,
        service_type: str,
        operation: str,
        arguments: Optional[Dict[str, Any]] = None,
        constraint: str = "",
        preference: str = "",
        ctx: Optional[CallContext] = None,
    ) -> Any:
        """Coroutine twin of :meth:`invoke` for the async RPC stack.

        Identical failover / re-import semantics, driven through
        :meth:`~repro.rpc.resilience.ResilientCaller.run_async` so backoff
        pauses never block the event loop.  Each offer attempt is a raw
        BIND + INVOKE over the ``async_client`` given at construction —
        session ids are cached per offer, but no SID is transferred and no
        FSM mirror is kept (use the sync :meth:`invoke` for the guarded,
        UI-generating path).  Re-imports go through the sync trader stub
        inline; on a virtual-time stack the sim loop absorbs the wait, on
        wall clocks a re-import briefly parks the loop (they are rare —
        only when a whole cohort died).
        """
        if self._async_client is None:
            raise BindingError(
                "RebindingClient.invoke_async needs an async_client"
            )
        key: _CacheKey = (service_type, constraint, preference)
        last_error: Optional[BaseException] = None
        rounds = 1 + self.max_rebinds
        for attempt in range(rounds):
            offers = self._usable_offers(key, ctx, refresh=attempt > 0)
            if not offers:
                if last_error is not None:
                    raise last_error
                raise LookupFailure(
                    f"no live offer for type {service_type!r}"
                    + (f" with {constraint!r}" if constraint else "")
                )
            try:
                return await self.resilient.run_async(
                    offers,
                    lambda offer, child: self._attempt_async(
                        offer, operation, arguments, child
                    ),
                    ctx=self._round_context(ctx, rounds - attempt),
                    key=_endpoint,
                    operation=f"{service_type}.{operation}",
                )
            except DeadlineExceeded:
                if ctx is None or ctx.expired(self._client.transport.now()):
                    raise
                last_error = None
            except (CommunicationError, CircuitOpen, BindingError) as exc:
                if not transient(exc):
                    raise
                last_error = exc
            self._evict(key, offers)
            self.rebinds += 1
            METRICS.inc("client.rebinds", (service_type,))
        if last_error is not None:
            raise last_error
        raise DeadlineExceeded(
            f"budget spent across {rounds} bind round(s) for {service_type!r}"
        )

    def _round_context(
        self, ctx: Optional[CallContext], rounds_left: int
    ) -> Optional[CallContext]:
        """A deadline slice for one bind-and-invoke round.

        The last round gets the true deadline — nothing is held back
        when no rebind can follow.
        """
        if ctx is None or ctx.deadline is None or rounds_left <= 1:
            return ctx
        now = self._client.transport.now()
        share = ctx.remaining(now) / rounds_left
        return ctx.derive(deadline=min(ctx.deadline, now + share))

    # -- cache maintenance -------------------------------------------------

    def _usable_offers(
        self, key: _CacheKey, ctx: Optional[CallContext], refresh: bool
    ) -> List[ServiceOffer]:
        with self._lock:
            cached = None if refresh else self._offers.get(key)
        if cached is not None:
            live = self._live(cached)
            if live:
                return live
            # Every cached lease lapsed while we sat idle — the cohort is
            # presumed dead; fall through to a fresh import.
            METRICS.inc("client.rebind.cache_expired", (key[0],))
        offers = self._import(key, ctx)
        with self._lock:
            self._offers[key] = offers
        return self._live(offers)

    def _live(self, offers: List[ServiceOffer]) -> List[ServiceOffer]:
        now = self._client.transport.now()
        return [offer for offer in offers if not offer.expired(now)]

    def _import(
        self, key: _CacheKey, ctx: Optional[CallContext]
    ) -> List[ServiceOffer]:
        service_type, constraint, preference = key
        request = ImportRequest(
            service_type, constraint, preference, self.max_matches
        )
        self.imports += 1
        METRICS.inc("client.rebind.imports", (service_type,))
        return self._trader.import_(request, ctx=ctx)

    def _evict(self, key: _CacheKey, offers: List[ServiceOffer]) -> None:
        with self._lock:
            self._offers.pop(key, None)
            for offer in offers:
                binding = self._bindings.pop(offer.offer_id, None)
                if binding is not None:
                    _quiet_unbind(binding)
                # Async sessions are simply dropped: the cohort is
                # presumed dead, and the server-side session dies with
                # its endpoint (or is reaped by the runtime's own GC).
                self._async_sessions.pop(offer.offer_id, None)

    # -- one failover attempt ----------------------------------------------

    def _attempt(
        self,
        offer: ServiceOffer,
        operation: str,
        arguments: Optional[Dict[str, Any]],
        ctx: Optional[CallContext],
    ) -> Any:
        with self._lock:
            binding = self._bindings.get(offer.offer_id)
        try:
            if binding is None:
                binding = self.generic.bind(offer.service_ref(), ctx=ctx)
                with self._lock:
                    self._bindings[offer.offer_id] = binding
            return binding.invoke(operation, arguments, ctx=ctx).value
        except BaseException as exc:
            if transient(exc) or isinstance(exc, BindingError):
                # The cached binding (and its FSM mirror) may be stale on a
                # dead endpoint; the next attempt rebinds from scratch.
                with self._lock:
                    self._bindings.pop(offer.offer_id, None)
            raise

    async def _attempt_async(
        self,
        offer: ServiceOffer,
        operation: str,
        arguments: Optional[Dict[str, Any]],
        ctx: Optional[CallContext],
    ) -> Any:
        """One async failover attempt: (cached) BIND, then INVOKE."""
        ref = offer.service_ref()
        with self._lock:
            session = self._async_sessions.get(offer.offer_id)
        try:
            if session is None:
                try:
                    session = await self._async_client.call(
                        ref.address, ref.prog, ref.vers, PROC_BIND, {},
                        context=ctx,
                    )
                except RpcError as exc:
                    raise BindingError(
                        f"cannot bind to {ref.name} at {ref.address}: {exc}"
                    ) from exc
                with self._lock:
                    self._async_sessions[offer.offer_id] = session
            return await self._async_client.call(
                ref.address,
                ref.prog,
                ref.vers,
                PROC_INVOKE,
                {
                    "session": session,
                    "operation": operation,
                    "arguments": arguments or {},
                },
                context=ctx,
            )
        except BaseException as exc:
            if transient(exc) or isinstance(exc, BindingError):
                # A stale session on a dead endpoint: rebind from scratch
                # on the next attempt, exactly like the sync path.
                with self._lock:
                    self._async_sessions.pop(offer.offer_id, None)
            raise

    # -- lifecycle ---------------------------------------------------------

    def refresh(self, service_type: Optional[str] = None) -> int:
        """Drop cached ranked cohorts so the next invoke re-imports.

        With ``service_type`` only that type's cohorts (any constraint or
        preference) are dropped; without it, all of them.  Open bindings
        are *kept* — the cached endpoints may still be the best ones, and
        an unchanged ranking will keep reusing them — this only forces
        the ranking itself to be recomputed, e.g. after a trader-side
        topology change (shard failover, rebalance) or an offer-watch
        event.  Returns how many cohorts were dropped.
        """
        with self._lock:
            if service_type is None:
                dropped = len(self._offers)
                self._offers.clear()
            else:
                stale = [key for key in self._offers if key[0] == service_type]
                dropped = len(stale)
                for key in stale:
                    del self._offers[key]
        if dropped:
            METRICS.inc(
                "client.rebind.refreshed", (service_type or "*",), amount=dropped
            )
        return dropped

    def close(self) -> None:
        with self._lock:
            bindings = list(self._bindings.values())
            self._bindings.clear()
            self._async_sessions.clear()
            self._offers.clear()
        for binding in bindings:
            _quiet_unbind(binding)


def _endpoint(offer: ServiceOffer) -> str:
    """Breaker key: the offer's network endpoint, shared across offers
    hosted by one server so its breaker state is learned once."""
    ref = offer.ref
    return f"{ref['host']}:{ref['port']}"


def _quiet_unbind(binding: GenericBinding) -> None:
    try:
        binding.unbind()
    except CommunicationError:
        pass  # the endpoint is likely dead; that is why we are evicting
