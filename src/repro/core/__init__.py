"""COSM mediation core — the paper's primary contribution (§3, §4).

* :class:`ServiceRuntime` — hosts any application implementation behind
  the uniform four-procedure COSM protocol (GET_SID / BIND / UNBIND /
  INVOKE) with per-session FSM enforcement; "developing new server
  applications just requires to implement service operations and to
  describe them" (§4.2),
* :class:`BrowserService` / :class:`BrowserClient` — the well-known
  Browser where innovative services register their SIDs (§3.2); itself a
  COSM service with its own SID, so browsers can register at browsers,
* :class:`GenericClient` — binds to arbitrary unknown services, transfers
  the SID, performs dynamic type-checked marshalling, enforces the FSM
  locally, surfaces returned service references for cascade binding
  (Figs. 3 & 4),
* :class:`CosmMediator` — one façade over both cooperation schemas:
  trader import for standardised types, browser mediation for innovative
  services,
* :func:`make_tradable` — the §4.1 maturation path: derive a service type
  from a SID's ``COSM_TraderExport`` and register the offer at a trader
  while the service stays browsable,
* :class:`RebindingClient` — invoke-by-service-type with failover across
  the trader's ranked offers and automatic re-import when the cached
  offers are exhausted or their leases lapse (failure recovery end to
  end).
"""

from repro.core.browser import BROWSER_SIDL, BrowserClient, BrowserEntry, BrowserService
from repro.core.generic_client import GenericBinding, GenericClient, InvocationResult
from repro.core.integration import keep_tradable, make_tradable
from repro.core.mediator import CosmMediator, DiscoveryResult
from repro.core.rebind import RebindingClient
from repro.core.service_runtime import ServiceRuntime

__all__ = [
    "BROWSER_SIDL",
    "BrowserClient",
    "BrowserEntry",
    "BrowserService",
    "CosmMediator",
    "DiscoveryResult",
    "GenericBinding",
    "GenericClient",
    "InvocationResult",
    "RebindingClient",
    "ServiceRuntime",
    "keep_tradable",
    "make_tradable",
]
