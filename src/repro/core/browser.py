"""The Browser: where innovative services register their SIDs (§3.2).

The browser is itself an ordinary COSM service — its own interface is
described by :data:`BROWSER_SIDL` and hosted on a
:class:`~repro.core.service_runtime.ServiceRuntime`.  Consequences the
paper calls out explicitly:

* a generic client can *browse the browser* with zero special-case code,
* browse results carry SERVICEREFERENCE values, so selecting an entry and
  binding to it is the seamless UI cascade of Fig. 4,
* "the browser may also act as an application service as well and
  register its own SID at yet another browser" — see
  :meth:`BrowserService.register_at`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.context import CallContext
from repro.errors import LookupFailure
from repro.naming.binder import Binder
from repro.naming.refs import ServiceRef
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.sidl.builder import load_service_description
from repro.sidl.sid import ServiceDescription
from repro.core.service_runtime import ServiceRuntime

BROWSER_SIDL = """
module CosmBrowser {
  typedef BrowserEntry_t struct {
    string name;
    string service_id;
    service_reference ref;
  };
  typedef EntryList_t sequence<BrowserEntry_t>;
  interface COSM_Operations {
    boolean Register(in sid description, in service_reference ref);
    boolean Withdraw(in string service_id);
    EntryList_t List();
    EntryList_t Search(in string query);
    EntryList_t FindConforming(in sid base);
    sid FetchSid(in string service_id);
  };
  module COSM_Annotations {
    annotation Register "Register a service interface description.";
    annotation List "List every registered service.";
    annotation Search "Find services whose description mentions the query.";
    annotation FindConforming "Find services structurally usable as the given base.";
    annotation FetchSid "Transfer the full interface description of one entry.";
  };
};
"""


@dataclass(frozen=True)
class BrowserEntry:
    """One row of a browse result."""

    name: str
    service_id: str
    ref: ServiceRef

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "service_id": self.service_id,
            "ref": self.ref.to_wire(),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "BrowserEntry":
        return cls(data["name"], data["service_id"], ServiceRef.from_wire(data["ref"]))


class _BrowserImplementation:
    """The browser's registry, written like any COSM service impl."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}

    def Register(self, description: Any, ref: Any) -> bool:
        sid = ServiceDescription.from_wire(description)
        service_ref = ServiceRef.from_wire(ref)
        self._entries[service_ref.service_id] = {
            "sid": sid,
            "ref": service_ref,
        }
        return True

    def Withdraw(self, service_id: str) -> bool:
        return self._entries.pop(service_id, None) is not None

    def List(self) -> List[Dict[str, Any]]:
        return [
            BrowserEntry(entry["sid"].name, service_id, entry["ref"]).to_wire()
            for service_id, entry in sorted(self._entries.items())
        ]

    def Search(self, query: str) -> List[Dict[str, Any]]:
        needle = query.lower()
        matches = []
        for service_id, entry in sorted(self._entries.items()):
            if self._matches(entry["sid"], needle):
                matches.append(
                    BrowserEntry(entry["sid"].name, service_id, entry["ref"]).to_wire()
                )
        return matches

    def FindConforming(self, base: Any) -> List[Dict[str, Any]]:
        """Structural lookup: every registered SID usable as ``base``.

        This is browsing by *shape* instead of by text — the §3.1
        subtype-polymorphic SIDs applied to discovery: a client holding
        only a base description finds all richer services that conform.
        """
        base_sid = ServiceDescription.from_wire(base)
        matches = []
        for service_id, entry in sorted(self._entries.items()):
            if entry["sid"].conforms_to(base_sid):
                matches.append(
                    BrowserEntry(entry["sid"].name, service_id, entry["ref"]).to_wire()
                )
        return matches

    def FetchSid(self, service_id: str) -> Dict[str, Any]:
        entry = self._entries.get(service_id)
        if entry is None:
            raise LookupFailure(f"no registered service {service_id!r}")
        return entry["sid"].to_wire()

    @staticmethod
    def _matches(sid: ServiceDescription, needle: str) -> bool:
        """Search name, operation names, annotations, and export values."""
        if needle in sid.name.lower():
            return True
        for operation_name in sid.operation_names():
            if needle in operation_name.lower():
                return True
        for subject, text in sid.annotations.items():
            if needle in subject.lower() or needle in text.lower():
                return True
        for value in (sid.trader_export or {}).values():
            if isinstance(value, str) and needle in value.lower():
                return True
        return False


class BrowserService:
    """A running browser: a :class:`ServiceRuntime` over the registry."""

    def __init__(self, server: RpcServer, prog: Optional[int] = None) -> None:
        sid = load_service_description(BROWSER_SIDL)
        self._implementation = _BrowserImplementation()
        self.runtime = ServiceRuntime(server, sid, self._implementation, prog=prog)

    @property
    def ref(self) -> ServiceRef:
        return self.runtime.ref

    @property
    def sid(self) -> ServiceDescription:
        return self.runtime.sid

    def entries(self) -> int:
        return len(self._implementation._entries)

    def register_local(self, runtime: ServiceRuntime) -> None:
        """Register a co-located service without a network round trip."""
        self._implementation.Register(runtime.sid.to_wire(), runtime.ref.to_wire())

    def register_at(self, peer_ref: ServiceRef, client: RpcClient) -> bool:
        """Register this browser's own SID at another browser (§3.2)."""
        peer = BrowserClient(client, peer_ref)
        try:
            return peer.register(self.sid, self.ref)
        finally:
            peer.close()


class BrowserClient:
    """Typed convenience stub over the browser's uniform COSM protocol.

    Note there is nothing privileged here: every call goes through the
    same BIND/INVOKE procedures a generic client would use.
    """

    def __init__(
        self,
        client: RpcClient,
        ref: ServiceRef,
        ctx: Optional[CallContext] = None,
    ) -> None:
        self._binder = Binder(client)
        # The binding keeps the ctx, so every stub call below shares it.
        self._binding = self._binder.bind(ref, ctx=ctx)
        self.ref = ref

    def register(self, sid: ServiceDescription, ref: ServiceRef) -> bool:
        return self._binding.invoke(
            "Register", {"description": sid.to_wire(), "ref": ref.to_wire()}
        )

    def withdraw(self, service_id: str) -> bool:
        return self._binding.invoke("Withdraw", {"service_id": service_id})

    def list(self) -> List[BrowserEntry]:
        return [BrowserEntry.from_wire(item) for item in self._binding.invoke("List")]

    def search(self, query: str) -> List[BrowserEntry]:
        raw = self._binding.invoke("Search", {"query": query})
        return [BrowserEntry.from_wire(item) for item in raw]

    def find_conforming(self, base: ServiceDescription) -> List[BrowserEntry]:
        raw = self._binding.invoke("FindConforming", {"base": base.to_wire()})
        return [BrowserEntry.from_wire(item) for item in raw]

    def fetch_sid(self, service_id: str) -> ServiceDescription:
        return ServiceDescription.from_wire(
            self._binding.invoke("FetchSid", {"service_id": service_id})
        )

    def close(self) -> None:
        self._binding.unbind()
