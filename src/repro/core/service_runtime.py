"""The COSM service runtime: any implementation + a SID = a service.

Hosts an application object behind the uniform protocol of
:mod:`repro.naming.binder` (GET_SID, BIND, UNBIND, INVOKE).  The runtime

* transfers the SID on request (Fig. 3's "SID Transfer"),
* opens one FSM session per binding and rejects out-of-protocol calls
  server-side (the client usually rejects them locally first — both
  checks exist, and the benchmark ``bench_fsm_guard`` measures the
  difference),
* dynamically checks argument and result values against the SID's types,
  so type conformance between client and server "is always given
  implicitly" (§4.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.errors import BindingError
from repro.naming.binder import PROC_BIND, PROC_GET_SID, PROC_INVOKE, PROC_UNBIND
from repro.naming.refs import ServiceRef
from repro.rpc.server import RpcProgram, RpcServer
from repro.sidl.errors import SidlTypeError
from repro.sidl.fsm import FsmSession
from repro.sidl.sid import ServiceDescription

Implementation = Union[object, Mapping[str, Callable[..., Any]]]

_AUTO_PROG_BASE = 200000
_auto_prog_counter = itertools.count(_AUTO_PROG_BASE)


def _next_auto_prog() -> int:
    return next(_auto_prog_counter)


class ServiceRuntime:
    """One running COSM application service."""

    def __init__(
        self,
        server: RpcServer,
        sid: ServiceDescription,
        implementation: Implementation,
        prog: Optional[int] = None,
        enforce_fsm: bool = True,
        check_types: bool = True,
    ) -> None:
        self.sid = sid
        self.implementation = implementation
        self.enforce_fsm = enforce_fsm
        self.check_types = check_types
        if prog is None:
            exported = (sid.trader_export or {}).get("ServiceID")
            prog = exported if isinstance(exported, int) else _next_auto_prog()
        self.prog = prog
        self.ref = ServiceRef.create(sid.name, server.address, prog)
        self._sessions: Dict[str, Optional[FsmSession]] = {}
        self._session_counter = itertools.count(1)
        self.invocations = 0
        self.fsm_rejections = 0
        program = RpcProgram(prog, self.ref.vers, sid.name)
        program.register(PROC_GET_SID, self._get_sid, "get_sid")
        program.register(PROC_BIND, self._bind, "bind")
        program.register(PROC_UNBIND, self._unbind, "unbind")
        program.register(PROC_INVOKE, self._invoke, "invoke")
        server.serve(program)
        self._server = server
        self._program = program

    # -- handlers ----------------------------------------------------------

    def _get_sid(self, args: Any) -> Dict[str, Any]:
        return self.sid.to_wire()

    def _bind(self, args: Any) -> str:
        session_id = f"{self.sid.name}-session-{next(self._session_counter)}"
        self._sessions[session_id] = self.sid.new_session()
        return session_id

    def _unbind(self, args: Any) -> bool:
        session_id = (args or {}).get("session", "")
        return self._sessions.pop(session_id, None) is not None

    def _invoke(self, args: Any) -> Any:
        session_id = args.get("session", "")
        if session_id not in self._sessions:
            raise BindingError(f"unknown session {session_id!r}")
        operation_name = args.get("operation", "")
        operation = self.sid.interface.operation(operation_name)
        arguments = args.get("arguments") or {}
        if self.check_types:
            arguments = operation.check_arguments(arguments)
        fsm_session = self._sessions[session_id]
        if self.enforce_fsm and fsm_session is not None:
            if not fsm_session.allows(operation_name):
                self.fsm_rejections += 1
                fsm_session.rejections += 1
                raise _fsm_violation(fsm_session, operation_name)
        handler = self._handler_for(operation_name)
        result = handler(**arguments)
        if self.check_types:
            try:
                result = operation.result.check(result)
            except SidlTypeError as exc:
                raise SidlTypeError(
                    f"{self.sid.name}.{operation_name} returned a value "
                    f"outside its declared result type: {exc}"
                )
        if fsm_session is not None:
            fsm_session.advance(operation_name)
        self.invocations += 1
        return result

    def _handler_for(self, operation_name: str) -> Callable[..., Any]:
        if isinstance(self.implementation, Mapping):
            handler = self.implementation.get(operation_name)
        else:
            handler = getattr(self.implementation, operation_name, None)
        if handler is None or not callable(handler):
            raise SidlTypeError(
                f"service {self.sid.name} declares {operation_name!r} "
                f"but its implementation does not provide it"
            )
        return handler

    # -- lifecycle ------------------------------------------------------------

    def sessions(self) -> int:
        return len(self._sessions)

    def shutdown(self) -> None:
        """Withdraw the program; in-flight sessions become invalid."""
        self._server.withdraw(self._program)
        self._sessions.clear()


def _fsm_violation(session: FsmSession, operation: str):
    from repro.sidl.fsm import FsmViolation

    return FsmViolation(session.state, operation, session.spec.allowed_in(session.state))
