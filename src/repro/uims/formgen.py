"""Generation of typed forms from SIDL descriptions (Fig. 7).

The "well-defined relationship of linguistic service description elements
to corresponding user interface components" (§3.2), one rule per type
constructor:

==================  ==========================================
SIDL type            widget
==================  ==========================================
string               TextField
short/long/octet     NumberField (integral, range from bits)
float/double         NumberField
boolean              CheckBox
enum                 ChoiceField
struct               GroupBox of nested widgets
sequence             ListEditor
union                UnionEditor (tag choice + active arm)
service_reference    BindButton
any / sid            AnyField
==================  ==========================================
"""

from __future__ import annotations

from typing import Optional

from repro.sidl.sid import ServiceDescription
from repro.sidl.types import (
    AnyType,
    BooleanType,
    EnumType,
    FloatType,
    IntegerType,
    OctetsType,
    OperationType,
    SequenceType,
    ServiceReferenceType,
    SidValueType,
    SidlType,
    StringType,
    StructType,
    UnionType,
    VoidType,
)
from repro.uims.widgets import (
    AnyField,
    BindButton,
    CheckBox,
    ChoiceField,
    Form,
    GroupBox,
    ListEditor,
    NumberField,
    TextField,
    UnionEditor,
    Widget,
)


def widget_for_type(sidl_type: SidlType, label: str, path: str) -> Widget:
    """The SID-element → UI-component mapping, recursively applied."""
    if isinstance(sidl_type, StringType):
        return TextField(label, path=path, bound=sidl_type.bound)
    if isinstance(sidl_type, BooleanType):
        return CheckBox(label, path=path)
    if isinstance(sidl_type, IntegerType):
        return NumberField(
            label,
            path=path,
            integral=True,
            minimum=sidl_type.minimum,
            maximum=sidl_type.maximum,
        )
    if isinstance(sidl_type, FloatType):
        return NumberField(label, path=path, integral=False)
    if isinstance(sidl_type, EnumType):
        return ChoiceField(label, list(sidl_type.labels), path=path)
    if isinstance(sidl_type, StructType):
        fields = [
            widget_for_type(field_type, field_name, f"{path}.{field_name}")
            for field_name, field_type in sidl_type.fields
        ]
        return GroupBox(label, fields, path=path)
    if isinstance(sidl_type, SequenceType):
        element_type = sidl_type.element

        def make_element(item_path: str) -> Widget:
            index = item_path.rsplit(".", 1)[-1]
            return widget_for_type(element_type, f"[{index}]", item_path)

        return ListEditor(label, make_element, path=path, bound=sidl_type.bound)
    if isinstance(sidl_type, UnionType):
        arms = {label_: arm for label_, __, arm in sidl_type.cases if label_ is not None}
        default_arm = next(
            (arm for label_, __, arm in sidl_type.cases if label_ is None), None
        )

        def make_arm(tag: str, arm_path: str) -> Widget:
            arm_type = arms.get(tag, default_arm)
            if arm_type is None:
                return AnyField("value", path=arm_path)
            return widget_for_type(arm_type, "value", arm_path)

        return UnionEditor(label, list(sidl_type.discriminator.labels), make_arm, path=path)
    if isinstance(sidl_type, ServiceReferenceType):
        return BindButton(label, ref=None, path=path)
    if isinstance(sidl_type, (AnyType, SidValueType, OctetsType, VoidType)):
        return AnyField(label, path=path)
    return AnyField(label, path=path)


def form_for_operation(
    sid: ServiceDescription,
    operation: OperationType,
    path_prefix: Optional[str] = None,
) -> Form:
    """Generate the value-entry form for one operation.

    One widget per in-parameter; textual annotations from the SID become
    the form's caption, so the generated dialogue is self-explaining.
    """
    base = path_prefix if path_prefix is not None else operation.name
    fields = [
        widget_for_type(param_type, param_name, f"{base}.{param_name}")
        for param_name, param_type in operation.in_params()
    ]
    annotation = sid.annotation_for(operation.name) or ""
    form = Form(operation.name, fields, path=base, annotation=annotation)
    return form


def prefill_defaults(form: Form, operation: OperationType) -> None:
    """Populate a form with each parameter type's neutral value."""
    for (param_name, param_type), field in zip(operation.in_params(), form.fields):
        default = param_type.default()
        if default is None and not isinstance(field, AnyField):
            continue  # reference-like parameters have no neutral value
        field.set_value(default)
