"""Controllers: wiring generated widgets to remote invocations (§3.2).

"Controller elements (e.g. buttons, list items), that can be activated by
mouse events are related to respective remote operation invocations" —
here, clicking a form's submit button collects the typed values, runs the
generic binding's guarded invoke, displays the result, and turns every
returned service reference into a live :class:`BindButton` whose click
opens the next binding in the cascade (Fig. 4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.generic_client import GenericBinding
from repro.sidl.fsm import FsmViolation
from repro.uims.formgen import form_for_operation
from repro.uims.widgets import BindButton, Form, Label


class OperationController:
    """One operation's form, bound to a live service session."""

    def __init__(self, binding: GenericBinding, operation_name: str) -> None:
        self.binding = binding
        self.operation = binding.operation(operation_name)
        self.form: Form = form_for_operation(binding.sid, self.operation)
        self.form.submit.on_click = self.submit
        self.last_error: Optional[str] = None
        self.refresh_enabled()

    def refresh_enabled(self) -> None:
        """Mirror the FSM: disable the submit button when not allowed."""
        allowed = self.binding.fsm is None or self.binding.fsm.allows(
            self.operation.name
        )
        self.form.submit.enabled = allowed

    def arguments(self) -> Dict[str, Any]:
        return {field.label: field.get_value() for field in self.form.fields}

    def submit(self) -> Any:
        """Collect values, invoke, populate the result panel."""
        self.last_error = None
        try:
            result = self.binding.invoke(self.operation.name, self.arguments())
        except FsmViolation as violation:
            self.last_error = str(violation)
            self.refresh_enabled()
            raise
        panel = self.form.result
        panel.value = result.value
        panel.state = result.state
        panel.bind_buttons = [
            BindButton(
                f"bind {reference.name}",
                ref=reference,
                path=f"{self.form.path}.result.bind.{index}",
                on_click=(lambda r=reference: self.binding.bind_reference(r)),
            )
            for index, reference in enumerate(result.references)
        ]
        self.refresh_enabled()
        return result.value


class ServicePanel:
    """The whole generated user interface for one binding (Fig. 7).

    One :class:`OperationController` per operation, a state label, and the
    SID's annotations as captions.  Enabled/disabled states track the FSM
    after every invocation.
    """

    def __init__(self, binding: GenericBinding) -> None:
        self.binding = binding
        self.title = binding.service_name
        self.controllers: Dict[str, OperationController] = {
            name: OperationController(binding, name)
            for name in binding.operations()
        }
        self.state_label = Label("state", self._state_text(), path="state")

    def _state_text(self) -> str:
        state = self.binding.state()
        return f"communication state: {state}" if state else "stateless service"

    def controller(self, operation_name: str) -> OperationController:
        return self.controllers[operation_name]

    def forms(self) -> List[Form]:
        return [controller.form for controller in self.controllers.values()]

    def submit(self, operation_name: str) -> Any:
        value = self.controllers[operation_name].submit()
        self.refresh()
        return value

    def refresh(self) -> None:
        self.state_label.text = self._state_text()
        for controller in self.controllers.values():
            controller.refresh_enabled()

    def enabled_operations(self) -> List[str]:
        return [
            name
            for name, controller in self.controllers.items()
            if controller.form.submit.enabled
        ]
