"""HTML rendering of widget trees — a second UIMS backend.

The paper's claim (§3.2) is the *mapping* from SID elements to UI
components, independent of the window system.  The text renderer stands
in for the 1994 X-window output; this module proves backend independence
by rendering the same widget trees as self-contained HTML (static forms:
state is shown, interaction stays with the programmatic session).
"""

from __future__ import annotations

import html as _html
from typing import List

from repro.uims.widgets import (
    AnyField,
    BindButton,
    Button,
    CheckBox,
    ChoiceField,
    Form,
    GroupBox,
    Label,
    ListEditor,
    NumberField,
    ResultPanel,
    Table,
    TextField,
    UnionEditor,
    Widget,
)

_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 1.5em; }}
 fieldset {{ margin-bottom: 1em; border: 1px solid #999; }}
 legend {{ font-weight: bold; }}
 .annotation {{ color: #555; font-style: italic; }}
 .disabled {{ color: #aaa; }}
 .state {{ color: #064; font-weight: bold; }}
 .result {{ background: #f4f4f4; padding: .5em; font-family: monospace; }}
 label {{ display: inline-block; min-width: 10em; }}
 .widget {{ margin: .25em 0; }}
 table {{ border-collapse: collapse; margin: .5em 0; }}
 th, td {{ border: 1px solid #999; padding: .25em .6em; text-align: right; }}
 th:first-child, td:first-child {{ text-align: left; }}
 caption {{ font-weight: bold; text-align: left; padding-bottom: .25em; }}
</style></head>
<body>
<h1>{title}</h1>
<p class="state">{state}</p>
{body}
</body></html>
"""


def escape(text: str) -> str:
    return _html.escape(str(text), quote=True)


def _cell(value) -> str:
    """Table-cell formatting: compact fixed-point for floats."""
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def render_html(widget: Widget) -> str:
    """Render one widget subtree as an HTML fragment."""
    return "\n".join(_render(widget))


def render_panel_html(panel) -> str:
    """Render a whole :class:`~repro.uims.controller.ServicePanel` page."""
    body = "\n".join(render_html(form) for form in panel.forms())
    return _PAGE.format(
        title=escape(panel.title),
        state=escape(panel.state_label.text),
        body=body,
    )


def render_page_html(title: str, widgets: List[Widget], state: str = "") -> str:
    """Render arbitrary widget trees as one self-contained page.

    The telemetry report uses this to publish result tables through the
    same backend that renders generated service forms.
    """
    body = "\n".join(render_html(widget) for widget in widgets)
    return _PAGE.format(title=escape(title), state=escape(state), body=body)


def _render(widget: Widget) -> List[str]:
    if isinstance(widget, Form):
        lines = [f'<fieldset id="{escape(widget.path)}"><legend>{escape(widget.label)}</legend>']
        if widget.annotation:
            lines.append(f'<p class="annotation">{escape(widget.annotation)}</p>')
        for field in widget.fields:
            lines.extend(_render(field))
        state = "" if widget.submit.enabled else ' class="disabled" disabled'
        lines.append(f"<button{state}>{escape(widget.label)}</button>")
        if widget.result.value is not None or widget.result.bind_buttons:
            lines.extend(_render(widget.result))
        lines.append("</fieldset>")
        return lines
    if isinstance(widget, GroupBox):
        lines = [f"<fieldset><legend>{escape(widget.label)}</legend>"]
        for field in widget.fields:
            lines.extend(_render(field))
        lines.append("</fieldset>")
        return lines
    if isinstance(widget, ListEditor):
        lines = [f"<fieldset><legend>{escape(widget.label)} ({len(widget.items)})</legend><ol>"]
        for item in widget.items:
            lines.append("<li>")
            lines.extend(_render(item))
            lines.append("</li>")
        lines.append("</ol><button>+ add</button></fieldset>")
        return lines
    if isinstance(widget, UnionEditor):
        lines = [f"<fieldset><legend>{escape(widget.label)} (union)</legend>"]
        lines.extend(_render(widget.tag_field))
        lines.extend(_render(widget.arm))
        lines.append("</fieldset>")
        return lines
    if isinstance(widget, ChoiceField):
        options = "".join(
            f'<option{" selected" if option == widget.value else ""}>'
            f"{escape(option)}</option>"
            for option in widget.options
        )
        return [
            f'<div class="widget"><label>{escape(widget.label)}</label>'
            f"<select>{options}</select></div>"
        ]
    if isinstance(widget, TextField):
        return [
            f'<div class="widget"><label>{escape(widget.label)}</label>'
            f'<input type="text" value="{escape(widget.value)}"></div>'
        ]
    if isinstance(widget, NumberField):
        return [
            f'<div class="widget"><label>{escape(widget.label)}</label>'
            f'<input type="number" value="{escape(widget.value)}"></div>'
        ]
    if isinstance(widget, CheckBox):
        checked = " checked" if widget.value else ""
        return [
            f'<div class="widget"><label>{escape(widget.label)}</label>'
            f'<input type="checkbox"{checked}></div>'
        ]
    if isinstance(widget, BindButton):
        name = widget.ref.name if widget.ref is not None else "?"
        state = "" if widget.enabled else ' class="disabled" disabled'
        return [f"<button{state}>bind &rarr; {escape(name)}</button>"]
    if isinstance(widget, Button):
        state = "" if widget.enabled else ' class="disabled" disabled'
        return [f"<button{state}>{escape(widget.label)}</button>"]
    if isinstance(widget, ResultPanel):
        lines = [f'<div class="result">{escape(repr(widget.value))}</div>']
        if widget.state is not None:
            lines.append(f'<p class="state">state: {escape(widget.state)}</p>')
        for button in widget.bind_buttons:
            lines.extend(_render(button))
        return lines
    if isinstance(widget, Table):
        lines = ["<table>", f"<caption>{escape(widget.label)}</caption>", "<tr>"]
        lines.extend(f"<th>{escape(column)}</th>" for column in widget.columns)
        lines.append("</tr>")
        for row in widget.rows:
            lines.append("<tr>")
            lines.extend(f"<td>{escape(_cell(value))}</td>" for value in row)
            lines.append("</tr>")
        lines.append("</table>")
        return lines
    if isinstance(widget, Label):
        return [f"<p>{escape(widget.text)}</p>"]
    if isinstance(widget, AnyField):
        return [
            f'<div class="widget"><label>{escape(widget.label)}</label>'
            f"<code>{escape(repr(widget.value))}</code></div>"
        ]
    return [f"<!-- {escape(type(widget).__name__)} -->"]
