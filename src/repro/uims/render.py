"""Text rendering of widget trees — the Fig. 7 screenshot, headless."""

from __future__ import annotations

from typing import List

from repro.uims.widgets import (
    AnyField,
    BindButton,
    Button,
    CheckBox,
    ChoiceField,
    Form,
    GroupBox,
    Label,
    ListEditor,
    NumberField,
    ResultPanel,
    Table,
    TextField,
    UnionEditor,
    Widget,
)

_INDENT = "  "


def _cell(value) -> str:
    """Table-cell formatting: compact fixed-point for floats."""
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def render(widget: Widget, indent: int = 0) -> str:
    """Render any widget subtree as indented text."""
    return "\n".join(_render_lines(widget, indent))


def _render_lines(widget: Widget, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(widget, Form):
        title = f"=== {widget.label} ==="
        lines = [f"{pad}{title}"]
        if widget.annotation:
            lines.append(f"{pad}{_INDENT}# {widget.annotation}")
        for field in widget.fields:
            lines.extend(_render_lines(field, indent + 1))
        state = "" if widget.submit.enabled else " (disabled)"
        lines.append(f"{pad}{_INDENT}[ {widget.label} ]{state}")
        if widget.result.value is not None or widget.result.bind_buttons:
            lines.extend(_render_lines(widget.result, indent + 1))
        return lines
    if isinstance(widget, GroupBox):
        lines = [f"{pad}{widget.label}:"]
        for field in widget.fields:
            lines.extend(_render_lines(field, indent + 1))
        return lines
    if isinstance(widget, ListEditor):
        lines = [f"{pad}{widget.label} (list of {len(widget.items)}):"]
        for item in widget.items:
            lines.extend(_render_lines(item, indent + 1))
        lines.append(f"{pad}{_INDENT}[ + add ]")
        return lines
    if isinstance(widget, UnionEditor):
        lines = [f"{pad}{widget.label} (union):"]
        lines.extend(_render_lines(widget.tag_field, indent + 1))
        lines.extend(_render_lines(widget.arm, indent + 1))
        return lines
    if isinstance(widget, ChoiceField):
        options = " | ".join(
            f"({option})" if option == widget.value else option
            for option in widget.options
        )
        return [f"{pad}{widget.label}: < {options} >"]
    if isinstance(widget, TextField):
        return [f"{pad}{widget.label}: [{widget.value:<20}]"]
    if isinstance(widget, NumberField):
        kind = "int" if widget.integral else "float"
        return [f"{pad}{widget.label}: [{widget.value}] ({kind})"]
    if isinstance(widget, CheckBox):
        mark = "x" if widget.value else " "
        return [f"{pad}[{mark}] {widget.label}"]
    if isinstance(widget, BindButton):
        name = widget.ref.name if widget.ref is not None else "?"
        state = "" if widget.enabled else " (disabled)"
        return [f"{pad}[ bind -> {name} ]{state}"]
    if isinstance(widget, Button):
        state = "" if widget.enabled else " (disabled)"
        return [f"{pad}[ {widget.label} ]{state}"]
    if isinstance(widget, ResultPanel):
        lines = [f"{pad}result: {widget.value!r}"]
        if widget.state is not None:
            lines.append(f"{pad}state:  {widget.state}")
        for button in widget.bind_buttons:
            lines.extend(_render_lines(button, indent))
        return lines
    if isinstance(widget, Table):
        cells = [widget.columns] + [
            [_cell(value) for value in row] for row in widget.rows
        ]
        widths = [
            max(len(row[column]) for row in cells)
            for column in range(len(widget.columns))
        ]
        lines = [f"{pad}{widget.label}:"]
        for index, row in enumerate(cells):
            line = "  ".join(
                text.ljust(width) if position == 0 else text.rjust(width)
                for position, (text, width) in enumerate(zip(row, widths))
            )
            lines.append(f"{pad}{_INDENT}{line.rstrip()}")
            if index == 0:
                lines.append(f"{pad}{_INDENT}{'-' * (sum(widths) + 2 * (len(widths) - 1))}")
        return lines
    if isinstance(widget, Label):
        return [f"{pad}{widget.text}"]
    if isinstance(widget, AnyField):
        return [f"{pad}{widget.label}: {widget.value!r} (any)"]
    return [f"{pad}<{type(widget).__name__} {widget.label}>"]


def render_panel(panel) -> str:
    """Render a whole :class:`~repro.uims.controller.ServicePanel`."""
    lines = [f"### {panel.title} ###", panel.state_label.text, ""]
    for form in panel.forms():
        lines.append(render(form))
        lines.append("")
    return "\n".join(lines)
