"""UIMS — user interface management for generic clients (Fig. 7).

The paper's prototype generated X-window forms from SIDs; this package is
the same mapping with a headless widget model and a text renderer:

* :mod:`repro.uims.widgets` — the widget tree (forms, typed value editors,
  bind buttons for SERVICEREFERENCE values),
* :mod:`repro.uims.formgen` — SIDL type/operation → widget generation:
  "operation-specific value editor forms can be generated automatically",
* :mod:`repro.uims.controller` — wiring widget activation to remote
  operation invocations, FSM-aware enabling/disabling,
* :mod:`repro.uims.render` — text rendering of widget trees,
* :mod:`repro.uims.session` — scripted interaction (fill/click) used by
  tests, examples, and benchmarks.
"""

from repro.uims.controller import OperationController, ServicePanel
from repro.uims.formgen import form_for_operation, widget_for_type
from repro.uims.html import render_html, render_page_html, render_panel_html
from repro.uims.render import render, render_panel
from repro.uims.session import UiSession
from repro.uims.widgets import (
    AnyField,
    BindButton,
    Button,
    CheckBox,
    ChoiceField,
    Form,
    GroupBox,
    Label,
    ListEditor,
    NumberField,
    ResultPanel,
    Table,
    TextField,
    UnionEditor,
    Widget,
)

__all__ = [
    "AnyField",
    "BindButton",
    "Button",
    "CheckBox",
    "ChoiceField",
    "Form",
    "GroupBox",
    "Label",
    "ListEditor",
    "NumberField",
    "OperationController",
    "ResultPanel",
    "ServicePanel",
    "Table",
    "TextField",
    "UiSession",
    "UnionEditor",
    "Widget",
    "form_for_operation",
    "render",
    "render_html",
    "render_page_html",
    "render_panel",
    "render_panel_html",
    "widget_for_type",
]
