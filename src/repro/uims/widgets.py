"""The headless widget model.

Widgets carry a ``path`` (dotted address within their form) so scripted
sessions and tests can target them, a current ``value``, and an optional
``error`` set by validation.  Rendering is elsewhere; these classes are
pure state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import CosmError


class UiError(CosmError):
    """Raised for invalid widget interactions (bad path, bad input)."""


class Widget:
    """Base class: a named node in the widget tree."""

    def __init__(self, label: str, path: str = "") -> None:
        self.label = label
        self.path = path
        self.error: Optional[str] = None
        self.enabled = True

    def children(self) -> List["Widget"]:
        return []

    def find(self, path: str) -> "Widget":
        """Locate a descendant by its dotted path."""
        if path == self.path:
            return self
        for child in self.children():
            if path == child.path or path.startswith(child.path + "."):
                return child.find(path)
        raise UiError(f"no widget at path {path!r} under {self.path!r}")

    def get_value(self) -> Any:
        raise UiError(f"widget {self.path!r} has no value")

    def set_value(self, value: Any) -> None:
        raise UiError(f"widget {self.path!r} is not editable")


class Label(Widget):
    """Static text (annotations, state displays)."""

    def __init__(self, label: str, text: str, path: str = "") -> None:
        super().__init__(label, path)
        self.text = text


class TextField(Widget):
    """String editor."""

    def __init__(self, label: str, path: str = "", bound: Optional[int] = None) -> None:
        super().__init__(label, path)
        self.bound = bound
        self.value: str = ""

    def get_value(self) -> str:
        return self.value

    def set_value(self, value: Any) -> None:
        if not isinstance(value, str):
            raise UiError(f"{self.path}: expected text, got {value!r}")
        if self.bound is not None and len(value) > self.bound:
            raise UiError(f"{self.path}: text longer than {self.bound}")
        self.value = value


class NumberField(Widget):
    """Integer or float editor with optional range."""

    def __init__(
        self,
        label: str,
        path: str = "",
        integral: bool = True,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> None:
        super().__init__(label, path)
        self.integral = integral
        self.minimum = minimum
        self.maximum = maximum
        self.value = 0 if integral else 0.0

    def get_value(self):
        return self.value

    def set_value(self, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise UiError(f"{self.path}: expected a number, got {value!r}")
        if self.integral and not isinstance(value, int):
            raise UiError(f"{self.path}: expected an integer, got {value!r}")
        if self.minimum is not None and value < self.minimum:
            raise UiError(f"{self.path}: {value} below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise UiError(f"{self.path}: {value} above maximum {self.maximum}")
        self.value = float(value) if not self.integral else value


class CheckBox(Widget):
    """Boolean editor."""

    def __init__(self, label: str, path: str = "") -> None:
        super().__init__(label, path)
        self.value = False

    def get_value(self) -> bool:
        return self.value

    def set_value(self, value: Any) -> None:
        if not isinstance(value, bool):
            raise UiError(f"{self.path}: expected a boolean, got {value!r}")
        self.value = value


class ChoiceField(Widget):
    """Enum editor: one of a fixed set of labels."""

    def __init__(self, label: str, options: List[str], path: str = "") -> None:
        super().__init__(label, path)
        self.options = list(options)
        self.value = self.options[0] if self.options else ""

    def get_value(self) -> str:
        return self.value

    def set_value(self, value: Any) -> None:
        if value not in self.options:
            raise UiError(f"{self.path}: {value!r} not in {self.options}")
        self.value = value


class AnyField(Widget):
    """Editor for ``any``-typed values: holds the raw value."""

    def __init__(self, label: str, path: str = "") -> None:
        super().__init__(label, path)
        self.value: Any = None

    def get_value(self) -> Any:
        return self.value

    def set_value(self, value: Any) -> None:
        self.value = value


class GroupBox(Widget):
    """Struct editor: a labelled group of nested fields."""

    def __init__(self, label: str, fields: List[Widget], path: str = "") -> None:
        super().__init__(label, path)
        self.fields = list(fields)

    def children(self) -> List[Widget]:
        return self.fields

    def get_value(self) -> Dict[str, Any]:
        return {field.label: field.get_value() for field in self.fields}

    def set_value(self, value: Any) -> None:
        if not isinstance(value, dict):
            raise UiError(f"{self.path}: expected a dict, got {value!r}")
        by_label = {field.label: field for field in self.fields}
        for key, item in value.items():
            if key not in by_label:
                raise UiError(f"{self.path}: no field {key!r}")
            by_label[key].set_value(item)


class ListEditor(Widget):
    """Sequence editor: a growable list of element widgets."""

    def __init__(
        self,
        label: str,
        make_element: Callable[[str], Widget],
        path: str = "",
        bound: Optional[int] = None,
    ) -> None:
        super().__init__(label, path)
        self._make_element = make_element
        self.bound = bound
        self.items: List[Widget] = []

    def children(self) -> List[Widget]:
        return self.items

    def add_item(self) -> Widget:
        if self.bound is not None and len(self.items) >= self.bound:
            raise UiError(f"{self.path}: list is bounded at {self.bound}")
        item = self._make_element(f"{self.path}.{len(self.items)}")
        self.items.append(item)
        return item

    def remove_item(self, index: int) -> None:
        del self.items[index]
        for position, item in enumerate(self.items):
            _repath(item, f"{self.path}.{position}")

    def get_value(self) -> List[Any]:
        return [item.get_value() for item in self.items]

    def set_value(self, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise UiError(f"{self.path}: expected a list, got {value!r}")
        self.items = []
        for item_value in value:
            self.add_item().set_value(item_value)


class _UnionTagField(ChoiceField):
    """The tag choice of a union editor: selecting rebuilds the arm."""

    def __init__(self, options: List[str], path: str, owner: "UnionEditor") -> None:
        super().__init__("tag", options, path)
        self._owner = owner

    def set_value(self, value: Any) -> None:
        super().set_value(value)
        self._owner._rebuild_arm()


class UnionEditor(Widget):
    """Union editor: a tag choice plus the active arm's widget."""

    def __init__(
        self,
        label: str,
        tags: List[str],
        make_arm: Callable[[str, str], Widget],
        path: str = "",
    ) -> None:
        super().__init__(label, path)
        self._make_arm = make_arm
        self.tag_field = _UnionTagField(tags, f"{path}.tag", self)
        self.arm: Widget = make_arm(self.tag_field.value, f"{path}.value")

    def children(self) -> List[Widget]:
        return [self.tag_field, self.arm]

    def _rebuild_arm(self) -> None:
        self.arm = self._make_arm(self.tag_field.value, f"{self.path}.value")

    def select_tag(self, tag: str) -> None:
        self.tag_field.set_value(tag)

    def get_value(self) -> Dict[str, Any]:
        return {"tag": self.tag_field.get_value(), "value": self.arm.get_value()}

    def set_value(self, value: Any) -> None:
        if not isinstance(value, dict) or "tag" not in value:
            raise UiError(f"{self.path}: expected {{'tag', 'value'}}, got {value!r}")
        self.select_tag(value["tag"])
        self.arm.set_value(value.get("value"))


class Button(Widget):
    """An activatable control wired to a callback."""

    def __init__(self, label: str, path: str = "", on_click=None) -> None:
        super().__init__(label, path)
        self.on_click = on_click
        self.clicks = 0

    def click(self) -> Any:
        if not self.enabled:
            raise UiError(f"button {self.label!r} is disabled")
        self.clicks += 1
        if self.on_click is None:
            return None
        return self.on_click()


class BindButton(Button):
    """A control representing a SERVICEREFERENCE value (§3.2).

    Activating it establishes a new binding — the seamless UI transition
    of Fig. 4.
    """

    def __init__(self, label: str, ref, path: str = "", on_click=None) -> None:
        super().__init__(label, path, on_click)
        self.ref = ref


class Table(Widget):
    """A read-only grid: column headers plus value rows.

    Services and reports (e.g. the telemetry layer-latency report) show
    tabular results; like every widget here it is pure state — the text
    and HTML backends render it.
    """

    def __init__(
        self,
        label: str,
        columns: List[str],
        rows: Optional[List[List[Any]]] = None,
        path: str = "",
    ) -> None:
        super().__init__(label, path)
        self.columns = list(columns)
        self.rows: List[List[Any]] = [list(row) for row in (rows or [])]

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise UiError(
                f"{self.path or self.label}: row of {len(cells)} cells "
                f"against {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def get_value(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


class ResultPanel(Widget):
    """Displays the decoded result of the last invocation."""

    def __init__(self, label: str = "result", path: str = "") -> None:
        super().__init__(label, path)
        self.value: Any = None
        self.state: Optional[str] = None
        self.bind_buttons: List[BindButton] = []

    def children(self) -> List[Widget]:
        return list(self.bind_buttons)

    def get_value(self) -> Any:
        return self.value


class Form(Widget):
    """An operation's value-entry form plus its submit button."""

    def __init__(
        self,
        label: str,
        fields: List[Widget],
        path: str = "",
        annotation: str = "",
    ) -> None:
        super().__init__(label, path)
        self.fields = list(fields)
        self.annotation = annotation
        self.submit = Button("submit", path=f"{path}.submit" if path else "submit")
        self.result = ResultPanel(path=f"{path}.result" if path else "result")

    def children(self) -> List[Widget]:
        return self.fields + [self.submit, self.result]

    def get_value(self) -> Dict[str, Any]:
        return {field.label: field.get_value() for field in self.fields}

    def set_value(self, value: Any) -> None:
        if not isinstance(value, dict):
            raise UiError(f"{self.path}: expected a dict, got {value!r}")
        by_label = {field.label: field for field in self.fields}
        for key, item in value.items():
            if key not in by_label:
                raise UiError(f"{self.path}: no field {key!r}")
            by_label[key].set_value(item)


def _repath(widget: Widget, new_path: str) -> None:
    old_path = widget.path
    widget.path = new_path
    for child in widget.children():
        if child.path.startswith(old_path + "."):
            _repath(widget=child, new_path=new_path + child.path[len(old_path):])
