"""Scripted UI sessions: drive generated interfaces programmatically.

What the human user does with the mouse in the paper's prototype, tests
and examples do here with ``fill`` and ``click``.  A session owns a stack
of service panels: clicking a bind button pushes the new service's panel,
which is exactly the "cascade of bindings and corresponding user
interfaces" of Fig. 4.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.generic_client import GenericBinding, GenericClient
from repro.naming.refs import ServiceRef
from repro.uims.controller import ServicePanel
from repro.uims.render import render_panel
from repro.uims.widgets import UiError


class UiSession:
    """A human user's seat in front of the generic client."""

    def __init__(self, generic_client: GenericClient) -> None:
        self._client = generic_client
        self.panels: List[ServicePanel] = []

    # -- navigation ------------------------------------------------------------

    def open(self, ref: ServiceRef) -> ServicePanel:
        """Bind to a service and open its generated panel."""
        binding = self._client.bind(ref)
        return self._push(binding)

    def open_binding(self, binding: GenericBinding) -> ServicePanel:
        return self._push(binding)

    def _push(self, binding: GenericBinding) -> ServicePanel:
        panel = ServicePanel(binding)
        self.panels.append(panel)
        return panel

    @property
    def current(self) -> ServicePanel:
        if not self.panels:
            raise UiError("no panel open")
        return self.panels[-1]

    @property
    def depth(self) -> int:
        return len(self.panels)

    def close(self) -> None:
        """Close the top panel and unbind its service."""
        panel = self.panels.pop()
        panel.binding.unbind()

    def close_all(self) -> None:
        while self.panels:
            self.close()

    # -- interaction --------------------------------------------------------------

    def fill(self, path: str, value: Any) -> None:
        """Set the widget at ``operation.param[.subfield…]`` to a value."""
        operation_name = path.split(".", 1)[0]
        form = self.current.controller(operation_name).form
        if path == operation_name:
            raise UiError(f"{path!r} names a form, not a field")
        form.find(path).set_value(value)

    def click(self, operation_name: str) -> Any:
        """Submit an operation's form on the current panel."""
        return self.current.submit(operation_name)

    def add_list_item(self, path: str) -> str:
        """Grow the list editor at ``path``; returns the new item's path."""
        operation_name = path.split(".", 1)[0]
        form = self.current.controller(operation_name).form
        editor = form.find(path)
        if not hasattr(editor, "add_item"):
            raise UiError(f"{path!r} is not a list editor")
        return editor.add_item().path

    def click_bind(self, operation_name: str, index: int = 0) -> ServicePanel:
        """Activate a bind button in a result: the Fig. 4 cascade step."""
        form = self.current.controller(operation_name).form
        buttons = form.result.bind_buttons
        if not buttons:
            raise UiError(f"{operation_name}: no bind buttons in the result")
        new_binding = buttons[index].click()
        return self._push(new_binding)

    # -- inspection --------------------------------------------------------------

    def screen(self) -> str:
        """Render the current panel (the Fig. 7 'screenshot')."""
        return render_panel(self.current)

    def read(self, path: str) -> Any:
        operation_name = path.split(".", 1)[0]
        form = self.current.controller(operation_name).form
        return form.find(path).get_value()

    def result_of(self, operation_name: str) -> Any:
        return self.current.controller(operation_name).form.result.value

    def state(self) -> Optional[str]:
        return self.current.binding.state()
