"""First-class call context threaded through every layer of the COSM stack.

The Fig. 6 architecture stacks five levels (Communication → Service
Support → Controlling → Client/Service → User); historically each level
invented its own control knobs: per-call ``timeout``/``retries`` kwargs at
the RPC client, ``hop_limit``/``visited`` wire fields in trader
federation, and nothing at all for the bind/browse cascades.  A
:class:`CallContext` replaces them with one value that is created at the
top of a request, passed down explicitly (or picked up ambiently via
:func:`current_context` inside RPC handlers), decremented per hop, and
encoded on the wire:

* an absolute **deadline** against the transport clock (simulated or
  wall), shared by every call a request fans out into,
* a remaining **hop budget** and a **visited scope** (the administrative
  domains a federated query has already crossed),
* a **trace id** plus a **span chain** — every layer appends a
  :class:`SpanRecord` (layer, operation, elapsed, outcome), giving a
  per-layer cost breakdown for free,
* a :class:`RetryPolicy` from which the RPC client derives per-attempt
  timeouts out of the *remaining* deadline budget.

Legacy ``timeout=``/``retries=`` keyword arguments survive as a thin
compatibility shim: they construct an equivalent context via
:meth:`CallContext.from_legacy`.
"""

from __future__ import annotations

import itertools
import math
import threading
import uuid
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CosmError

Clock = Callable[[], float]

_trace_counter = itertools.count(1)
_span_uid_counter = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique trace id: ordinal prefix + random suffix."""
    return f"t{next(_trace_counter):05d}-{uuid.uuid4().hex[:8]}"


def _new_span_uid() -> str:
    """A process-unique span uid, assigned at span *creation* time.

    Export-time span ids are positional within the chain
    (``<trace>-s0003``) and therefore unknowable while the span is still
    open; the uid exists so structured log records emitted *inside* a
    span (:mod:`repro.telemetry.log`) can be joined to it after export.
    """
    return f"u{next(_span_uid_counter):06d}"


class HopBudgetExhausted(CosmError):
    """A context with no remaining hops was asked to cross another one."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the RPC client spreads a deadline over retransmissions.

    ``attempt_timeout`` caps each attempt; ``None`` means "split the
    remaining deadline evenly over the attempts still available".  The
    legacy shim sets it to the old flat per-attempt timeout so existing
    behaviour is preserved exactly.
    """

    retries: int = 3
    attempt_timeout: Optional[float] = None
    min_attempt_timeout: float = 0.001

    @property
    def attempts(self) -> int:
        return self.retries + 1


@dataclass
class SpanRecord:
    """One layer's record of one operation, appended to the span chain.

    ``events`` are point-in-time wire-level occurrences inside the span
    — a retransmission, a shed reply — each a dict with at least
    ``name`` and ``at`` (the transport clock when it happened).  They
    ride through every export form, giving per-attempt visibility that
    the aggregate counters cannot.
    """

    layer: str
    operation: str
    started_at: float
    elapsed: float = 0.0
    outcome: str = "ok"
    events: List[Dict[str, Any]] = field(default_factory=list)
    uid: str = field(default_factory=_new_span_uid)

    def add_event(self, name: str, at: float, **attributes: Any) -> None:
        event: Dict[str, Any] = {"name": name, "at": at}
        event.update(attributes)
        self.events.append(event)

    def to_wire(self) -> Dict[str, Any]:
        wire = {
            "layer": self.layer,
            "operation": self.operation,
            "started_at": self.started_at,
            "elapsed": self.elapsed,
            "outcome": self.outcome,
            "span_uid": self.uid,
        }
        if self.events:
            wire["events"] = [dict(event) for event in self.events]
        return wire


#: Span chains are bounded so long-running benchmarks cannot grow a
#: context without limit; past the cap new spans are counted, not stored.
SPAN_LIMIT = 1024

#: Fallback per-attempt timeout when a context has neither a deadline nor
#: an attempt cap (mirrors the RPC client's historical default).
DEFAULT_ATTEMPT_TIMEOUT = 1.0


@dataclass
class CallContext:
    """The request-scoping value threaded through every COSM layer.

    Derived contexts made with :meth:`derive`/:meth:`hop` share the trace
    id and the span chain with their parent — the chain shows the whole
    request — while deadline/hops/visited narrow monotonically.
    """

    trace_id: str = field(default_factory=new_trace_id)
    deadline: Optional[float] = None
    hops: Optional[int] = None
    visited: Tuple[str, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    spans: List[SpanRecord] = field(default_factory=list)
    spans_dropped: int = 0
    #: Head-sampling decision for this trace: ``True``/``False`` once a
    #: hop has decided (:func:`repro.telemetry.sampling.mark`), ``None``
    #: while no sampling policy has weighed in.  Rides the wire like the
    #: hop budget so every peer of a federated call agrees.
    sampled: Optional[bool] = None
    # Guards the shared span chain: worker threads (federation fan-out)
    # append to the parent's list concurrently.  ``derive``/``hop`` pass
    # the lock through ``replace`` so one chain always has one lock.
    _span_lock: Any = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    finished: bool = field(default=False, repr=False, compare=False)

    # -- constructors ------------------------------------------------------

    @classmethod
    def background(cls, **overrides: Any) -> "CallContext":
        """A fresh context with no deadline and an unlimited hop budget."""
        return cls(**overrides)

    @classmethod
    def with_timeout(
        cls,
        timeout: float,
        now: float,
        hops: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> "CallContext":
        """A context expiring ``timeout`` seconds after ``now``."""
        return cls(
            deadline=now + timeout,
            hops=hops,
            retry=retry or RetryPolicy(),
        )

    @classmethod
    def from_legacy(
        cls,
        timeout: float,
        retries: int,
        now: float,
        trace_id: Optional[str] = None,
    ) -> "CallContext":
        """The compatibility shim behind ``timeout=``/``retries=`` kwargs.

        Reproduces the historical total budget ``timeout * (retries + 1)``
        and keeps the flat per-attempt cap, so callers that never adopt
        contexts observe identical timing.
        """
        ctx = cls(
            deadline=now + timeout * (retries + 1),
            retry=RetryPolicy(retries=retries, attempt_timeout=timeout),
        )
        if trace_id is not None:
            ctx.trace_id = trace_id
        return ctx

    # -- deadline budget ---------------------------------------------------

    def remaining(self, now: float) -> float:
        """Seconds of budget left; ``inf`` when no deadline is set."""
        if self.deadline is None:
            return math.inf
        return max(0.0, self.deadline - now)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def attempt_timeout(self, now: float, attempts_left: int) -> float:
        """Per-attempt wait derived from the *remaining* deadline budget.

        Splits what is left of the deadline evenly over the attempts still
        available (clamped below by ``min_attempt_timeout`` and above by
        the policy's flat cap, when one is set).
        """
        budget = self.remaining(now)
        cap = self.retry.attempt_timeout
        if math.isinf(budget):
            return cap if cap is not None else DEFAULT_ATTEMPT_TIMEOUT
        share = budget / max(1, attempts_left)
        if cap is not None:
            share = min(share, cap)
        return min(budget, max(share, self.retry.min_attempt_timeout))

    # -- hop budget / scope ------------------------------------------------

    def can_hop(self) -> bool:
        """True while the hop budget allows crossing one more domain."""
        return self.hops is None or self.hops > 0

    def seen(self, node: str) -> bool:
        return node in self.visited

    def derive(self, **changes: Any) -> "CallContext":
        """A narrowed child sharing the trace id and span chain."""
        return replace(self, **changes)

    def hop(self, node: Optional[str] = None) -> "CallContext":
        """Cross one administrative domain: hops - 1, ``node`` marked seen."""
        if not self.can_hop():
            raise HopBudgetExhausted(
                f"trace {self.trace_id}: hop budget exhausted at {node or '?'}"
            )
        hops = None if self.hops is None else self.hops - 1
        visited = self.visited if node is None else self.visited + (node,)
        return self.derive(hops=hops, visited=visited)

    def split(self, n: int, now: float) -> List["CallContext"]:
        """Divide the remaining deadline budget evenly over ``n`` children.

        Each child shares the trace id and span chain but owns ``1/n`` of
        the deadline budget still left at ``now`` — the static form of the
        federation fan-out's per-link split (:class:`DeadlineLedger` is the
        dynamic one).  Without a deadline the children are unbounded too.
        """
        count = max(1, n)
        if self.deadline is None:
            return [self.derive() for _ in range(count)]
        share = self.remaining(now) / count
        return [self.derive(deadline=now + share) for _ in range(count)]

    # -- span chain --------------------------------------------------------

    def record_span(self, span: SpanRecord) -> None:
        with self._span_lock:
            if len(self.spans) >= SPAN_LIMIT:
                self.spans_dropped += 1
                dropped = True
            else:
                self.spans.append(span)
                dropped = False
        if dropped:
            # Overflow is observable, not silent: exporter output carries
            # the per-chain count and the registry the process total.
            from repro.telemetry.metrics import METRICS

            METRICS.inc("context.spans_dropped")

    def share_chain(self, other: "CallContext") -> None:
        """Join ``other``'s span chain (list *and* lock) — used by the
        RPC client's legacy shim so ambient and shim contexts append to
        one chain under one lock."""
        self.spans = other.spans
        self._span_lock = other._span_lock

    def span(self, layer: str, operation: str, clock: Clock) -> "_SpanScope":
        """Record one operation at one layer; re-raises, noting the outcome.

        Returns a hand-rolled context manager rather than a
        ``@contextmanager`` generator: spans wrap every RPC dispatch, so
        the enter/exit pair sits on the wire fast path where generator
        plus ``contextlib`` machinery is measurable.
        """
        return _SpanScope(self, SpanRecord(layer, operation, started_at=clock()), clock)

    def layer_costs(self) -> Dict[str, float]:
        """Total elapsed seconds per layer, from the span chain."""
        with self._span_lock:
            spans = list(self.spans)
        costs: Dict[str, float] = {}
        for span in spans:
            costs[span.layer] = costs.get(span.layer, 0.0) + span.elapsed
        return costs

    def finish(self) -> None:
        """Mark the request done and flush the span chain into the
        process :class:`~repro.telemetry.hub.TelemetryHub` (a no-op when
        no exporter is installed, and idempotent).  The RPC server and
        client flush best-effort at their dispatch/reply boundaries;
        ``finish()`` is the explicit form for the top of a request."""
        if self.finished:
            return
        self.finished = True
        from repro.telemetry.hub import flush_context

        flush_context(self)

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        if self.hops is not None:
            wire["hops"] = self.hops
        if self.visited:
            wire["visited"] = list(self.visited)
        if self.sampled is not None:
            wire["sampled"] = self.sampled
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "CallContext":
        return cls(
            trace_id=wire.get("trace_id") or new_trace_id(),
            deadline=wire.get("deadline"),
            hops=wire.get("hops"),
            visited=tuple(wire.get("visited", ())),
            sampled=wire.get("sampled"),
        )


class _SpanScope:
    """The context manager :meth:`CallContext.span` hands out.

    ``__slots__`` and explicit ``__enter__``/``__exit__`` because one of
    these brackets every RPC dispatch (client and server side)."""

    __slots__ = ("_ctx", "_record", "_clock", "_token")

    def __init__(self, ctx: "CallContext", record: SpanRecord, clock: Clock) -> None:
        self._ctx = ctx
        self._record = record
        self._clock = clock
        self._token = None

    def __enter__(self) -> SpanRecord:
        self._token = _current_span.set(self._record)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current_span.reset(self._token)
        record = self._record
        if exc_type is not None:
            record.outcome = exc_type.__name__
        record.elapsed = self._clock() - record.started_at
        self._ctx.record_span(record)
        return False


class DeadlineLedger:
    """Splits one context's deadline budget across concurrent branches.

    The federation fan-out gives every outstanding link a *lease* on the
    remaining budget: ``lease()`` returns a child context whose deadline is
    ``now + remaining / outstanding``.  When a branch finishes it calls
    :meth:`release`, shrinking the outstanding count — budget a fast link
    did not use is thereby re-donated to branches that lease after it.
    Thread-safe; branches already running keep the lease they were issued.
    """

    def __init__(self, ctx: CallContext, clock: Clock, outstanding: int) -> None:
        self._ctx = ctx
        self._clock = clock
        self._outstanding = max(1, outstanding)
        self._lock = threading.Lock()

    def lease(self) -> CallContext:
        """A child context owning this branch's share of what is left."""
        with self._lock:
            if self._ctx.deadline is None:
                return self._ctx.derive()
            now = self._clock()
            share = self._ctx.remaining(now) / self._outstanding
            return self._ctx.derive(deadline=now + share)

    def release(self) -> None:
        """A branch finished; its unused share flows back to the rest."""
        with self._lock:
            if self._outstanding > 1:
                self._outstanding -= 1

    def remaining(self) -> float:
        """Seconds left on the parent budget (``inf`` when unbounded)."""
        return self._ctx.remaining(self._clock())

    def expired(self) -> bool:
        return self._ctx.expired(self._clock())


# -- ambient context --------------------------------------------------------

_current: ContextVar[Optional[CallContext]] = ContextVar(
    "cosm_call_context", default=None
)
_current_span: ContextVar[Optional[SpanRecord]] = ContextVar(
    "cosm_current_span", default=None
)


def current_span() -> Optional[SpanRecord]:
    """The innermost open span of the executing task/thread, if any.

    Maintained by :meth:`CallContext.span`'s scope; structured log
    records use it to stamp the ``span_uid`` of the work they happened
    inside.
    """
    return _current_span.get()


def current_context() -> Optional[CallContext]:
    """The context of the request being served, if any.

    The RPC server installs the caller's wire context around handler
    execution, so any nested call a handler makes (trader federation,
    value-adding services, 2PC rounds) inherits the original deadline and
    trace without explicit plumbing.
    """
    return _current.get()


class _AmbientScope:
    """Hand-rolled context manager behind :func:`use_context` — same
    fast-path rationale as :class:`_SpanScope`."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[CallContext]) -> None:
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> Optional[CallContext]:
        self._token = _current.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current.reset(self._token)
        return False


def use_context(ctx: Optional[CallContext]) -> _AmbientScope:
    """Install ``ctx`` as the ambient context for the enclosed block."""
    return _AmbientScope(ctx)
