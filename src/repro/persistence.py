"""Snapshot persistence for long-lived COSM components.

Traders and browsers accumulate state (service types, offers, registered
SIDs) that should survive a restart of the hosting node.  Snapshots are
plain JSON-compatible dicts built from the same wire forms that cross the
network, written with :func:`save_snapshot` / :func:`load_snapshot`.

Bytes inside offer properties or SIDs are hex-wrapped, since the wire
forms may carry ``octets`` values JSON cannot hold natively.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional, Union

from repro.core.browser import BrowserService
from repro.errors import ConfigurationError
from repro.trader.offers import ServiceOffer
from repro.trader.service_types import ServiceType
from repro.trader.trader import LocalTrader

_BYTES_MARKER = "__bytes_hex__"
SNAPSHOT_VERSION = 1


# -- JSON-safe wrapping -------------------------------------------------------


def _wrap(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_MARKER: bytes(value).hex()}
    if isinstance(value, dict):
        return {key: _wrap(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_wrap(item) for item in value]
    return value


def _unwrap(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_BYTES_MARKER}:
            return bytes.fromhex(value[_BYTES_MARKER])
        return {key: _unwrap(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_unwrap(item) for item in value]
    return value


# -- trader snapshots -------------------------------------------------------------


def trader_snapshot(trader: LocalTrader) -> Dict[str, Any]:
    """Everything a trader needs to resume: types and offers (links are
    re-established by the operator; they name live peers)."""
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "trader",
        "trader_id": trader.trader_id,
        "types": [
            {
                "wire": service_type.to_wire(),
                "registered_at": trader.types.registered_at(service_type.name),
                "masked": trader.types.masked(service_type.name),
            }
            for service_type in trader.types
        ],
        "offers": [offer.to_wire() for offer in trader.offers.all()],
    }


def restore_trader(snapshot: Dict[str, Any], **trader_options: Any) -> LocalTrader:
    _check(snapshot, "trader")
    trader = LocalTrader(snapshot["trader_id"], **trader_options)
    # two passes: types may name super types registered later in the list
    pending = list(snapshot["types"])
    while pending:
        progressed = []
        for entry in pending:
            service_type = ServiceType.from_wire(entry["wire"])
            if all(trader.types.has(s) for s in service_type.super_types):
                trader.types.add(service_type, entry.get("registered_at") or 0.0)
                if entry.get("masked"):
                    trader.types.mask(service_type.name)
                progressed.append(entry)
        if not progressed:
            names = [e["wire"]["name"] for e in pending]
            raise ConfigurationError(f"unresolvable super types among {names}")
        pending = [entry for entry in pending if entry not in progressed]
    for offer_wire in snapshot["offers"]:
        trader.offers.add(ServiceOffer.from_wire(offer_wire))
    return trader


# -- shard snapshots -------------------------------------------------------------


def shard_snapshot(shard: Any) -> Dict[str, Any]:
    """A :class:`~repro.trader.sharding.shard.TraderShard` checkpoint.

    The trader snapshot plus the replication coordinates — role, applied
    sequence, shard-map version — so a restarted shard knows where in the
    delta stream to resume (``deltas_since(applied_seq)``) instead of
    refetching the world.  Open migration records and type seals ride
    along: a shard checkpointed mid-migration restarts still inside the
    protocol (still sealed, still holding the begin-time snapshot list),
    so a resumed coordinator picks up exactly where the crash cut in.
    """
    snapshot = trader_snapshot(shard.trader)
    snapshot["kind"] = "trader_shard"
    snapshot["shard_id"] = shard.shard_id
    snapshot["offer_prefix"] = shard.trader.offers.prefix
    snapshot["role"] = shard.role
    snapshot["applied_seq"] = shard.applied_seq
    snapshot["map_version"] = shard.map_version
    snapshot["migrations"] = {
        migration_id: dict(record)
        for migration_id, record in shard.migrations.items()
    }
    snapshot["sealed_types"] = sorted(shard.sealed_types)
    if shard.migrations:
        # An open migration still needs the delta tail back to its
        # begin-time snapshot for CATCH_UP replay; compacting it into
        # this snapshot would strand a resumed coordinator (SyncGap).
        retain_from = min(
            int(record.get("snapshot_seq", 0))
            for record in shard.migrations.values()
        )
        snapshot["delta_tail"] = [
            delta.to_wire()
            for delta in shard.log.since(max(retain_from, shard.log.base_seq))
        ]
    return snapshot


def restore_shard(
    snapshot: Dict[str, Any], now: Optional[float] = None, **shard_options: Any
) -> Any:
    """Rebuild a shard from its checkpoint — lease-aware.

    A snapshot freezes lease expiry times as absolutes; any lease that
    lapsed while the shard was down is expired immediately when ``now``
    is given, *before* the shard serves anything — the restart half of
    the anti-entropy contract (the catch-up half lives in
    ``TraderShard.sync_from``).  The restored log starts empty at
    ``applied_seq``, so replicas older than the snapshot are told to
    take a snapshot themselves rather than a delta batch.
    """
    from repro.trader.sharding.replication import DeltaLog, ShardDelta
    from repro.trader.sharding.shard import TraderShard

    _check(snapshot, "trader_shard")
    shard = TraderShard(
        snapshot["shard_id"],
        offer_prefix=snapshot.get("offer_prefix", "offer"),
        role=snapshot.get("role", "primary"),
        base_seq=snapshot.get("applied_seq", 0),
        **shard_options,
    )
    shard.map_version = snapshot.get("map_version", 0)
    shard.migrations = {
        migration_id: dict(record)
        for migration_id, record in snapshot.get("migrations", {}).items()
    }
    shard.sealed_types = set(snapshot.get("sealed_types", ()))
    tail = snapshot.get("delta_tail", [])
    if tail:
        # Re-seed the retained tail (see ``shard_snapshot``) so a resumed
        # migration can still pull ``deltas_since(snapshot_seq)``.
        shard.log = DeltaLog(tail[0]["seq"] - 1)
        for wire in tail:
            shard.log.record(ShardDelta.from_wire(wire))
    trader_view = dict(snapshot, kind="trader")
    restored = restore_trader(
        trader_view,
        offer_prefix=snapshot.get("offer_prefix", "offer"),
    )
    shard.trader.types = restored.types
    shard.trader.offers = restored.offers
    for record in shard.migrations.values():
        # Counters aren't in the snapshot; re-burn the migration's mint
        # floor so a restored recipient still cannot re-mint donor ids.
        if record.get("side") == "in" and record.get("service_type"):
            shard.trader.offers.burn_to(
                record["service_type"], int(record.get("mint_floor", 0))
            )
    if now is not None:
        # The shard's sweep, not the raw trader's: types mid-absorption
        # stay shielded across a restart too.
        shard._shielded_sweep(now)
    return shard


# -- browser snapshots ---------------------------------------------------------------


def browser_snapshot(browser: BrowserService) -> Dict[str, Any]:
    entries = browser._implementation._entries
    return {
        "version": SNAPSHOT_VERSION,
        "kind": "browser",
        "entries": [
            {"sid": entry["sid"].to_wire(), "ref": entry["ref"].to_wire()}
            for entry in entries.values()
        ],
    }


def restore_browser(browser: BrowserService, snapshot: Dict[str, Any]) -> int:
    """Load registrations into a (fresh) browser; returns how many."""
    _check(snapshot, "browser")
    for entry in snapshot["entries"]:
        browser._implementation.Register(entry["sid"], entry["ref"])
    return len(snapshot["entries"])


# -- files -------------------------------------------------------------------------------


def save_snapshot(snapshot: Dict[str, Any], path: Union[str, pathlib.Path]) -> None:
    path = pathlib.Path(path)
    path.write_text(json.dumps(_wrap(snapshot), indent=2, sort_keys=True))


def load_snapshot(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    data = _unwrap(json.loads(pathlib.Path(path).read_text()))
    if not isinstance(data, dict) or "kind" not in data:
        raise ConfigurationError(f"{path} does not hold a COSM snapshot")
    return data


def _check(snapshot: Dict[str, Any], kind: str) -> None:
    if snapshot.get("kind") != kind:
        raise ConfigurationError(
            f"expected a {kind} snapshot, got {snapshot.get('kind')!r}"
        )
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"snapshot version {snapshot.get('version')!r} not supported"
        )
