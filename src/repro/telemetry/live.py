"""Streaming telemetry: tail the span files, watch the stack breathe.

The report in :mod:`repro.telemetry.report` is post-hoc — it drives a
fresh simulated stack and renders what happened.  This module is the
live side, fed by what a *running* deployment already produces:

* :class:`JsonlTailReader` follows the rotating JSONL files a
  :class:`~repro.telemetry.exporters.JsonlExporter` writes — span chains
  and structured log records interleaved — surviving rotation
  (rename-to-``.1``), truncation, and torn trailing lines without ever
  dropping or double-reading a record;
* :class:`RedAggregator` folds those records into a sliding-window
  per-layer **RED** view — Rate, Errors, Duration (p50/p95) — plus the
  most recent structured log events;
* :class:`StatsPoller` pulls wire-level :mod:`repro.rpc.stats`
  snapshots from configured endpoints, adding the server-side picture
  (queue depth, sheds, breaker states) the span stream cannot show;
* ``python -m repro telemetry-dash`` renders all of it as a refreshing
  terminal view through the UIMS :class:`~repro.uims.widgets.Table`
  widget — the same rendering substrate as the generated service forms.

Nothing here ever drives a fresh stack: point it at the JSONL file of a
live process (or a recorded fixture, as CI does) and it shows what is
in there.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.uims.render import render
from repro.uims.widgets import Label, Table, Widget


class JsonlTailReader:
    """Incremental reader of a (possibly rotating) JSONL file.

    Call :meth:`poll` repeatedly; each call returns the records whose
    final byte has landed since the last call.  The reader holds its own
    file handle, so when the writer rotates (``path`` renamed to
    ``path.1``, a fresh file opened at ``path``) the handle still
    addresses the renamed segment: poll drains it to EOF *first*, reads
    any rotated segments written entirely between two polls, then
    switches to the new segment at offset zero — no record is lost to
    the rename and none is read twice.  Truncation in place (same inode,
    size below our offset) restarts from the top of the file.  Torn
    trailing lines — the writer mid-``write`` — stay buffered until
    their newline arrives.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self._ino: Optional[int] = None
        self._buffer = b""
        self.lines_read = 0
        self.parse_errors = 0
        self.rotations_followed = 0
        self.truncations = 0

    def poll(self) -> List[Dict[str, Any]]:
        """Every record completed since the previous poll, in order."""
        records: List[Dict[str, Any]] = []
        if self._handle is None and not self._open():
            return records
        self._read_into(records)
        state = self._probe()
        if state == "rotated":
            # The writer renamed our segment away: our handle still
            # reads it, so drain to EOF before following the new file.
            self._read_into(records)
            old_ino = self._ino
            self._close()
            self._read_missed_segments(old_ino, records)
            if self._open():
                self.rotations_followed += 1
                self._read_into(records)
        elif state == "truncated":
            self.truncations += 1
            self._buffer = b""
            try:
                self._handle.seek(0)
            except OSError:
                self._close()
                return records
            self._read_into(records)
        return records

    def close(self) -> None:
        self._close()

    # -- internals ---------------------------------------------------------

    def _probe(self) -> Optional[str]:
        try:
            probe = os.stat(self.path)
        except OSError:
            return None  # mid-rotation gap or file not created yet
        if self._ino is not None and probe.st_ino != self._ino:
            return "rotated"
        if self._handle is not None:
            try:
                offset = self._handle.tell()
            except OSError:
                return None
            if probe.st_size < offset:
                return "truncated"
        return None

    def _open(self) -> bool:
        try:
            handle = open(self.path, "rb")
            self._ino = os.fstat(handle.fileno()).st_ino
        except OSError:
            return False
        self._handle = handle
        self._buffer = b""
        return True

    def _read_missed_segments(self, old_ino: Optional[int], records: List[Dict[str, Any]]) -> None:
        """Catch up on rotations that fired *between* two polls.

        ``path.1`` is the newest rotated segment; the one we just drained
        sits at some ``path.N``.  Every segment with a smaller suffix was
        written entirely after ours and before the live file — read those
        whole files oldest-first so stream order holds.  (Scanning stops
        at the retention boundary: if our segment was already deleted,
        every surviving rotated segment is newer than it.)
        """
        missed: List[str] = []
        suffix = 1
        while True:
            candidate = f"{self.path}.{suffix}"
            try:
                if os.stat(candidate).st_ino == old_ino:
                    break
            except OSError:
                break
            missed.append(candidate)
            suffix += 1
        for candidate in reversed(missed):
            try:
                handle = open(candidate, "rb")
            except OSError:
                continue
            keep, self._handle = self._handle, handle
            self._buffer = b""
            try:
                self._read_into(records)
            finally:
                self._handle = keep
                try:
                    handle.close()
                except OSError:
                    pass

    def _close(self) -> None:
        handle, self._handle = self._handle, None
        self._ino = None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def _read_into(self, records: List[Dict[str, Any]]) -> None:
        if self._handle is None:
            return
        try:
            chunk = self._handle.read()
        except OSError:
            self._close()
            return
        if chunk:
            self._buffer += chunk
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                return
            line = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1:]
            if not line.strip():
                continue
            try:
                records.append(json.loads(line.decode("utf-8")))
                self.lines_read += 1
            except (ValueError, UnicodeDecodeError):
                self.parse_errors += 1


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = int(round(q * (len(sorted_values) - 1)))
    return sorted_values[max(0, min(len(sorted_values) - 1, index))]


class RedAggregator:
    """Sliding-window per-layer RED over a mixed span/log record stream.

    Feed it the records a :class:`JsonlTailReader` yields (span chains
    as written by :class:`~repro.telemetry.exporters.JsonlExporter`,
    log records from :mod:`repro.telemetry.log`); read back per-layer
    Rate / Errors / Duration rows over the trailing ``window`` seconds
    of *record time* (span end timestamps — wall or virtual, whatever
    clock the producing stack ran on), plus the most recent structured
    log events.  Incremental: each span is appended once and evicted
    once, so a long tail session does O(1) work per record.
    """

    def __init__(self, window: float = 30.0, recent_events: int = 12) -> None:
        self.window = window
        # layer -> deque of (end_time, elapsed, is_error), time-ordered
        self._samples: Dict[str, Deque[Tuple[float, float, bool]]] = {}
        self._latest: Optional[float] = None
        self.chains_seen = 0
        self.spans_seen = 0
        self.events_seen = 0
        self.recent_events: Deque[Dict[str, Any]] = deque(maxlen=recent_events)
        self._event_counts: Dict[str, int] = {}

    def feed(self, record: Dict[str, Any]) -> None:
        """Absorb one tailed record; unknown shapes are ignored."""
        if record.get("kind") == "log":
            self._feed_log(record)
        elif "spans" in record:
            self._feed_chain(record)

    def _feed_chain(self, chain: Dict[str, Any]) -> None:
        self.chains_seen += 1
        for span in chain.get("spans", ()):
            try:
                started = float(span.get("started_at", 0.0))
                elapsed = float(span.get("elapsed", 0.0))
            except (TypeError, ValueError):
                continue
            layer = str(span.get("layer", "?"))
            error = span.get("outcome", "ok") != "ok"
            self._samples.setdefault(layer, deque()).append(
                (started + elapsed, elapsed, error)
            )
            self.spans_seen += 1
            self._advance(started + elapsed)

    def _feed_log(self, record: Dict[str, Any]) -> None:
        self.events_seen += 1
        event = str(record.get("event", "?"))
        self._event_counts[event] = self._event_counts.get(event, 0) + 1
        self.recent_events.append(record)
        at = record.get("at")
        if isinstance(at, (int, float)):
            self._advance(float(at))

    def _advance(self, now: float) -> None:
        if self._latest is not None and now <= self._latest:
            return
        self._latest = now
        horizon = now - self.window
        for samples in self._samples.values():
            while samples and samples[0][0] < horizon:
                samples.popleft()

    def rows(self) -> List[Dict[str, Any]]:
        """Per-layer RED rows for the current window, layer-sorted."""
        rows: List[Dict[str, Any]] = []
        for layer in sorted(self._samples):
            samples = self._samples[layer]
            if not samples:
                continue
            durations = sorted(sample[1] for sample in samples)
            errors = sum(1 for sample in samples if sample[2])
            rows.append(
                {
                    "layer": layer,
                    "count": len(durations),
                    "rate": len(durations) / self.window if self.window else 0.0,
                    "errors": errors,
                    "p50": _quantile(durations, 0.50),
                    "p95": _quantile(durations, 0.95),
                }
            )
        return rows

    def event_counts(self) -> Dict[str, int]:
        return dict(sorted(self._event_counts.items()))


class StatsPoller:
    """Pulls wire-level STATS snapshots from configured endpoints.

    One lazily-created TCP transport + RPC client serve every endpoint;
    an endpoint that fails to answer contributes an ``error`` row
    instead of killing the dashboard.
    """

    def __init__(self, endpoints: Sequence[Any], timeout: float = 1.0) -> None:
        self.endpoints = list(endpoints)
        self.timeout = timeout
        self._transport = None
        self._client = None

    def poll(self) -> List[Dict[str, Any]]:
        snapshots: List[Dict[str, Any]] = []
        for endpoint in self.endpoints:
            label = f"{endpoint.host}:{endpoint.port}"
            try:
                snapshots.append(self._client_for().stats(endpoint))
            except Exception as exc:  # noqa: BLE001 - dashboard keeps running
                snapshots.append({"address": label, "error": str(exc)})
        return snapshots

    def close(self) -> None:
        transport, self._transport = self._transport, None
        self._client = None
        if transport is not None:
            transport.close()

    def _client_for(self):
        if self._client is None:
            from repro.rpc.client import RpcClient
            from repro.rpc.transport import TcpTransport

            self._transport = TcpTransport()
            self._client = RpcClient(
                self._transport, timeout=self.timeout, retries=0
            )
        return self._client


# -- rendering ---------------------------------------------------------------


#: ``sharding.migration.phase`` gauge values → phase names (0 = aborted,
#: then the migration state machine in order — mirrors
#: ``repro.trader.sharding.migration.PHASE_INDEX``).
_MIGRATION_PHASES = (
    "ABORTED", "PREPARE", "COPY", "CATCH_UP", "FLIP", "DRAIN", "DONE",
)


def _migration_phase_name(value: Any) -> str:
    index = int(value)
    if 0 <= index < len(_MIGRATION_PHASES):
        return _MIGRATION_PHASES[index]
    return str(value)


def dashboard_widgets(
    aggregator: RedAggregator,
    stats_snapshots: Sequence[Dict[str, Any]] = (),
    title: str = "COSM live telemetry",
) -> List[Widget]:
    """The widget tree one dashboard frame renders."""
    widgets: List[Widget] = [
        Label(
            "telemetry-dash",
            f"{title} — chains {aggregator.chains_seen}, "
            f"spans {aggregator.spans_seen}, "
            f"log events {aggregator.events_seen}",
        )
    ]
    red = Table(
        f"Per-layer RED (window {aggregator.window:g}s)",
        ["layer", "rate/s", "errors", "p50 s", "p95 s"],
    )
    for row in aggregator.rows():
        red.add_row(
            row["layer"], row["rate"], row["errors"], row["p50"], row["p95"]
        )
    widgets.append(red)
    if stats_snapshots:
        stats = Table(
            "STATS polls",
            ["endpoint", "handled", "shed", "queue", "capacity", "in-flight", "breakers open"],
        )
        for snapshot in stats_snapshots:
            if "error" in snapshot:
                stats.add_row(
                    snapshot.get("address", "?"), "-", "-", "-", "-", "-",
                    snapshot["error"],
                )
                continue
            server = snapshot.get("server", {})
            breakers_open = sum(
                1
                for state in snapshot.get("breakers", {}).values()
                if state == "open"
            )
            stats.add_row(
                snapshot.get("address", "?"),
                server.get("calls_handled", 0),
                server.get("calls_shed", 0),
                server.get("queue_depth", 0),
                server.get("queue_capacity", 0),
                server.get("in_flight", 0),
                breakers_open,
            )
        widgets.append(stats)
        sharding_rows = [
            (snapshot.get("address", "?"), snapshot["sharding"])
            for snapshot in stats_snapshots
            if isinstance(snapshot.get("sharding"), dict)
            and (
                snapshot["sharding"].get("map_version")
                or snapshot["sharding"].get("migration", {}).get("phase")
            )
        ]
        if sharding_rows:
            sharding = Table(
                "Sharding / migrations",
                [
                    "endpoint", "map ver", "routed", "failovers",
                    "migration", "copied", "replayed", "forwarded",
                ],
            )
            for address, plane in sharding_rows:
                migration = plane.get("migration", {})
                phases = ", ".join(
                    f"{label.rpartition('|')[2]}:{_migration_phase_name(value)}"
                    for label, value in sorted(migration.get("phase", {}).items())
                ) or "-"
                sharding.add_row(
                    address,
                    max(plane.get("map_version", {}).values(), default=0),
                    sum(plane.get("routed", {}).values()),
                    sum(plane.get("failovers", {}).values()),
                    phases,
                    migration.get("offers_copied", 0),
                    migration.get("deltas_replayed", 0),
                    migration.get("forwarded_calls", 0),
                )
            widgets.append(sharding)
    if aggregator.recent_events:
        events = Table("Recent events", ["at", "event", "level", "trace"])
        for record in aggregator.recent_events:
            events.add_row(
                record.get("at", ""),
                record.get("event", "?"),
                record.get("level", ""),
                record.get("trace_id", ""),
            )
        widgets.append(events)
    return widgets


def render_frame(
    aggregator: RedAggregator,
    stats_snapshots: Sequence[Dict[str, Any]] = (),
    title: str = "COSM live telemetry",
) -> str:
    """One dashboard frame as text."""
    return "\n\n".join(
        render(widget)
        for widget in dashboard_widgets(aggregator, stats_snapshots, title)
    )


def _parse_endpoints(specs: Sequence[str]) -> List[Any]:
    from repro.net.endpoints import Address

    endpoints = []
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            host, _, port = part.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(f"expected host:port, got {part!r}")
            endpoints.append(Address(host, int(port)))
    return endpoints


def main(argv: Any = None) -> int:
    """``python -m repro telemetry-dash`` — the refreshing terminal view."""
    import argparse
    import sys
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry-dash",
        description=(
            "Live per-layer RED dashboard: tails a telemetry JSONL file "
            "and/or polls STATS endpoints of running servers."
        ),
    )
    parser.add_argument("--file", help="JSONL span/log file to tail")
    parser.add_argument(
        "--stats",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="STATS endpoint to poll each frame (repeatable, or comma-separated)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="seconds between frames"
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        help="stop after this many frames (0 = run until interrupted)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render exactly one frame and exit without sleeping (CI smoke)",
    )
    parser.add_argument(
        "--window", type=float, default=30.0, help="RED sliding window seconds"
    )
    parser.add_argument("--out", help="also write the final frame to this file")
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="do not clear the screen between frames (for piping)",
    )
    options = parser.parse_args(argv)
    if not options.file and not options.stats:
        parser.error("nothing to watch: pass --file and/or --stats")

    try:
        endpoints = _parse_endpoints(options.stats)
    except ValueError as exc:
        parser.error(str(exc))

    reader = JsonlTailReader(options.file) if options.file else None
    poller = StatsPoller(endpoints) if endpoints else None
    aggregator = RedAggregator(window=options.window)
    frames_wanted = 1 if options.once else options.frames
    clear = not options.no_clear and not options.once and sys.stdout.isatty()
    frame = ""
    rendered = 0
    try:
        while True:
            if reader is not None:
                for record in reader.poll():
                    aggregator.feed(record)
            snapshots = poller.poll() if poller is not None else []
            frame = render_frame(aggregator, snapshots)
            if clear:
                print("\x1b[2J\x1b[H" + frame, flush=True)
            else:
                print(frame, flush=True)
            rendered += 1
            if frames_wanted and rendered >= frames_wanted:
                break
            time.sleep(options.interval)
    except KeyboardInterrupt:
        pass
    finally:
        if reader is not None:
            reader.close()
        if poller is not None:
            poller.close()
    if options.out:
        with open(options.out, "w", encoding="utf-8") as handle:
            handle.write(frame + "\n")
    return 0
