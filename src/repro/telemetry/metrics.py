"""Lock-protected counters and fixed-bucket histograms.

The trader-style directories of the related work treat measurement as a
first-class concern (the Grid Market Directory evaluates its registry via
end-to-end latency curves); this module gives the COSM stack the same
footing.  Every layer bumps named counters — deadline rejections,
retransmissions, hop exhaustions, federation link outcomes, offer-index
hits vs. fallback scans, duplicate replies dropped — aggregated by a
label tuple (``(program, proc)`` at the RPC layers, ``(link, outcome)``
at trader federation, the store prefix at the offer index).

Design constraints:

* **Telemetry must never fail a request** — increments cannot raise, and
  unknown names need no registration step.
* **Negligible cost when nobody is looking** — an increment is one lock
  acquisition and one dict update; the hot RPC path only bumps counters
  on *rare* events (a retransmission, a rejection), never per packet.

Histograms use fixed bucket bounds so aggregation across processes (or
simply across runs) is a per-bucket sum; quantiles are estimated by
linear interpolation inside the winning bucket — the usual
Prometheus-style trade of accuracy for mergeability.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

Labels = Tuple[str, ...]

#: Default histogram bounds: exponential sub-microsecond..10 s coverage,
#: suited to both virtual-time and wall-clock latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """A fixed-bucket histogram of observations (not thread-safe alone;
    the registry serialises access)."""

    __slots__ = ("bounds", "counts", "total", "count", "maximum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # one overflow bucket past the last bound
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left on the sorted bounds: the first bound >= value,
        # or the overflow bucket.  Same result as a linear scan, C speed.
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1), interpolated within a bucket."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            upper = (
                self.bounds[index] if index < len(self.bounds) else self.maximum
            )
            if cumulative + bucket_count >= rank:
                if bucket_count == 0:
                    return upper
                fraction = (rank - cumulative) / bucket_count
                return min(lower + (upper - lower) * fraction, self.maximum)
            cumulative += bucket_count
            lower = upper
        return self.maximum

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.maximum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named counters and histograms, each keyed by a label tuple.

    All mutation happens under one lock — increments are two dict
    operations, so contention is negligible next to any network hop —
    and reads return snapshots, never live structures.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], float] = {}
        self._gauges: Dict[Tuple[str, Labels], float] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, labels: Labels = (), amount: float = 1) -> None:
        key = (name, tuple(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def counter(self, name: str, labels: Labels = ()) -> float:
        """Current value of one counter series (0 when never bumped)."""
        with self._lock:
            return self._counters.get((name, tuple(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter over all label tuples."""
        with self._lock:
            return sum(
                value
                for (series, _), value in self._counters.items()
                if series == name
            )

    def counters(self, prefix: str = "") -> Dict[str, Dict[Labels, float]]:
        """Snapshot ``name -> labels -> value``, optionally filtered."""
        with self._lock:
            out: Dict[str, Dict[Labels, float]] = {}
            for (name, labels), value in self._counters.items():
                if name.startswith(prefix):
                    out.setdefault(name, {})[labels] = value
            return out

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        """Record the current level of something (queue depth, pool size).

        Unlike a counter a gauge moves both ways; the registry keeps the
        last written value per label tuple.
        """
        if not isinstance(value, (int, float)) or math.isnan(value):
            return  # telemetry never raises on a bad observation
        with self._lock:
            self._gauges[(name, tuple(labels))] = value

    def gauge(self, name: str, labels: Labels = ()) -> float:
        """Last written value of one gauge series (0 when never set)."""
        with self._lock:
            return self._gauges.get((name, tuple(labels)), 0)

    def gauges(self, prefix: str = "") -> Dict[str, Dict[Labels, float]]:
        """Snapshot ``name -> labels -> value``, optionally filtered."""
        with self._lock:
            out: Dict[str, Dict[Labels, float]] = {}
            for (name, labels), value in self._gauges.items():
                if name.startswith(prefix):
                    out.setdefault(name, {})[labels] = value
            return out

    # -- histograms --------------------------------------------------------

    def observe(
        self,
        name: str,
        value: float,
        labels: Labels = (),
        bounds: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not isinstance(value, (int, float)) or math.isnan(value):
            return  # telemetry never raises on a bad observation
        key = (name, tuple(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(bounds)
            histogram.observe(value)

    def histogram(self, name: str, labels: Labels = ()) -> Optional[Dict[str, Any]]:
        """Snapshot of one histogram series, or None when never observed."""
        with self._lock:
            histogram = self._histograms.get((name, tuple(labels)))
            return None if histogram is None else histogram.snapshot()

    def estimate(
        self,
        name: str,
        labels: Labels = (),
        q: float = 0.95,
        min_count: int = 0,
    ) -> Optional[float]:
        """A service-time estimate off one histogram series (what the
        deadline-aware admission control compares against a call's
        remaining budget).  ``min_count`` guards against shedding on a
        cold histogram: with fewer observations the estimate is ``None``
        and the caller should admit the work to learn its cost."""
        with self._lock:
            histogram = self._histograms.get((name, tuple(labels)))
            if histogram is None or histogram.count < min_count:
                return None
            return histogram.quantile(q)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dump of every series (labels joined with ``|``)."""
        with self._lock:
            return {
                "counters": {
                    f"{name}[{'|'.join(labels)}]": value
                    for (name, labels), value in self._counters.items()
                },
                "gauges": {
                    f"{name}[{'|'.join(labels)}]": value
                    for (name, labels), value in self._gauges.items()
                },
                "histograms": {
                    f"{name}[{'|'.join(labels)}]": histogram.snapshot()
                    for (name, labels), histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every series (test isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry every layer instruments against.
METRICS = MetricsRegistry()
