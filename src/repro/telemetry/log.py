"""Trace-correlated structured logging.

Spans answer "how long did each layer take"; the events worth alerting
on — an admission shed, a breaker tripping open, a lease expiring, a
failover slice moving to the next candidate — happen *inside* those
spans and were previously only visible as aggregate counters.  This
module gives them a record form:

    LOG.event("rpc.shed", at=now, stage="arrival", program="trader")

Each record is a flat JSON-able dict stamped with the ambient request's
``trace_id`` (:func:`repro.context.current_context`) and, when a span is
open, the ``span_uid`` of the innermost one
(:func:`repro.context.current_span`) — so the dashboard (and any
post-hoc join) can interleave events with the exact span they happened
inside.  Records are written through attached *sinks*; the natural sink
is :meth:`repro.telemetry.exporters.JsonlExporter.write_record`, which
shares the span file — one stream, one rotation schedule, one trace-id
namespace.

The hot-path contract matches the rest of the telemetry package: with
no sink attached :meth:`StructuredLogger.event` is one list truth test,
and a sink that raises is counted (``telemetry.log_errors``) but never
fails the request.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

Sink = Callable[[Dict[str, Any]], None]


class StructuredLogger:
    """A process logger fanning records out to attached sinks."""

    def __init__(self) -> None:
        self._sinks: List[Sink] = []
        self._lock = threading.Lock()
        self.records_written = 0

    @property
    def active(self) -> bool:
        """True when at least one sink is attached."""
        return bool(self._sinks)

    def attach(self, sink: Sink) -> Sink:
        with self._lock:
            self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> bool:
        with self._lock:
            try:
                self._sinks.remove(sink)
                return True
            except ValueError:
                return False

    def event(
        self,
        event: str,
        level: str = "info",
        at: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """Emit one structured record; a no-op without sinks.

        ``at`` is the transport-clock timestamp of the occurrence —
        passed by the call site, never read from the wall clock, so
        virtual-time stacks log virtual timestamps consistent with
        their spans.  Extra keyword arguments land in the record as-is
        (keep them JSON-able).
        """
        if not self._sinks:
            return
        record: Dict[str, Any] = {"kind": "log", "event": event, "level": level}
        if at is not None:
            record["at"] = at
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        from repro.context import current_context, current_span

        # Ambient correlation fills gaps; an explicit field wins (the
        # server logs sheds with the *wire* trace id of a call that
        # never reached handler execution).
        if "trace_id" not in record:
            ctx = current_context()
            if ctx is not None:
                record["trace_id"] = ctx.trace_id
        if "span_uid" not in record:
            span = current_span()
            if span is not None:
                record["span_uid"] = span.uid
        for sink in list(self._sinks):
            try:
                sink(record)
            except Exception:  # noqa: BLE001 - telemetry never fails a request
                from repro.telemetry.metrics import METRICS

                METRICS.inc("telemetry.log_errors")
        self.records_written += 1


#: The process logger the noisy call sites emit through.
LOG = StructuredLogger()


class use_log_sink:
    """Attach a sink for a scope (tests, the dashboard fixture writer)::

        with use_log_sink(exporter.write_record):
            ...
    """

    def __init__(self, sink: Sink, logger: StructuredLogger = LOG) -> None:
        self._sink = sink
        self._logger = logger

    def __enter__(self) -> Sink:
        self._logger.attach(self._sink)
        return self._sink

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._logger.detach(self._sink)
        return False
