"""Trace sampling: head decisions keyed on the trace id, tail overrides.

Always-on tracing has two costs: recording spans (cheap, in-memory) and
*exporting* finished chains (JSON serialisation plus a file write per
chain — the part that shows up at million-user scale).  This module
gates the second one:

* **Head sampling** — the keep/drop decision is a deterministic hash of
  the trace id (:func:`head_sampled`), so every hop of a federated call
  reaches the *same* verdict independently: a hub trader, its peers,
  and the exporters they fan out to either all export a trace or none
  do, even when some of them never saw the wire ``sampled`` flag.
* **Wire flag** — the first process to decide stamps the decision into
  the :class:`~repro.context.CallContext` (:func:`mark`) and the RPC
  clients carry it in the CALL header, so downstream peers skip the
  hash.  Peers that predate the flag recompute it from the trace id and
  agree anyway — that is the compatibility story.
* **Tail override** — chains that contain an error span (any span whose
  outcome is not ``"ok"``: a remote fault, ``DeadlineExceeded``, a
  shed) are kept even when head-sampled out, so the traces worth
  debugging always survive.  The hub consults
  :func:`export_decision` at flush time.

Dropped chains are accounted in ``telemetry.spans_sampled_out`` (span
count, not chain count) and ``telemetry.chains_sampled_out``; tail
rescues bump ``telemetry.chains_kept_tail``.

The default policy (``rate=1.0``) is the pre-sampling behaviour: no
decision is ever computed, nothing extra rides the wire, and the hot
path pays one float compare.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional
from zlib import crc32

#: Resolution of the hash bucket the rate is compared against.
_BUCKETS = 1 << 16


@dataclass(frozen=True)
class SamplingPolicy:
    """How the process samples trace exports.

    ``rate`` is the kept fraction (1.0 = keep everything, the default;
    0.01 = keep one trace in a hundred).  ``keep_errors`` is the tail
    override: chains containing a non-``ok`` span are exported
    regardless of the head decision.
    """

    rate: float = 1.0
    keep_errors: bool = True

    @property
    def active(self) -> bool:
        return self.rate < 1.0


_DEFAULT = SamplingPolicy()
_policy = _DEFAULT
_lock = threading.Lock()


def get_policy() -> SamplingPolicy:
    return _policy


def set_policy(policy: SamplingPolicy) -> SamplingPolicy:
    """Install ``policy`` process-wide; returns the previous one."""
    global _policy
    with _lock:
        previous, _policy = _policy, policy
    return previous


class use_policy:
    """Scope a sampling policy (tests, benches)::

        with use_policy(SamplingPolicy(rate=0.01)):
            ...
    """

    def __init__(self, policy: SamplingPolicy) -> None:
        self._policy = policy
        self._previous: Optional[SamplingPolicy] = None

    def __enter__(self) -> SamplingPolicy:
        self._previous = set_policy(self._policy)
        return self._policy

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_policy(self._previous or _DEFAULT)
        return False


def head_sampled(trace_id: str, rate: float) -> bool:
    """The deterministic head decision for ``trace_id`` at ``rate``.

    A CRC-32 of the trace id reduced to a 16-bit bucket, compared
    against the rate: pure arithmetic on data every hop already has, so
    federated peers agree without coordination.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = crc32(trace_id.encode("utf-8")) % _BUCKETS
    return bucket < int(rate * _BUCKETS)


def mark(ctx: Any) -> Optional[bool]:
    """Stamp (and return) the head decision for ``ctx``'s trace.

    ``None`` when no sampling policy is active — nothing rides the wire
    and pre-sampling peers see byte-identical CALL frames.  Once a
    decision exists on the context it is reused, not recomputed: the
    first hop decides, every later hop inherits.
    """
    sampled = ctx.sampled
    if sampled is not None:
        return sampled
    policy = _policy
    if not policy.active:
        return None
    decision = head_sampled(ctx.trace_id, policy.rate)
    ctx.sampled = decision
    return decision


def chain_has_error(spans: Any) -> bool:
    """True when any span in the chain did not end ``"ok"``."""
    for span in spans:
        if span.outcome != "ok":
            return True
    return False


def export_decision(ctx: Any, spans: Any) -> bool:
    """Should this finished chain be exported?  Called by the hub.

    Keeps everything when no policy is active.  Otherwise the head
    decision (the context's stamp, or the trace-id hash when the stamp
    never arrived) rules, with the error tail override on top.  The
    caller accounts the drop; this function accounts the tail rescue.
    """
    policy = _policy
    if not policy.active:
        return True
    sampled = getattr(ctx, "sampled", None)
    if sampled is None:
        sampled = head_sampled(ctx.trace_id, policy.rate)
    if sampled:
        return True
    if policy.keep_errors and chain_has_error(spans):
        from repro.telemetry.metrics import METRICS

        METRICS.inc("telemetry.chains_kept_tail")
        return True
    return False
