"""The process-global telemetry hub finished span chains flush into.

One hub per process, mirroring the one ambient-context machinery in
:mod:`repro.context`: layers call :func:`flush_context` at natural chain
ends — an explicit ``ctx.finish()`` at the top of a request, the RPC
server after a traced handler returns, the RPC client when a call it
created the context for completes — and the hub fans the chain out to
every installed exporter.

Two hard rules:

* **Never fail a request.**  Exporter exceptions are swallowed (counted
  as ``telemetry.export_errors``); a chain is exported at most once.
* **Near-zero cost when idle.**  With no exporter installed
  :func:`flush_context` is one attribute test and returns — the RPC
  micro-bench bounds the overhead at < 5 %.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, List

from repro.telemetry import sampling
from repro.telemetry.exporters import SpanExporter, TraceChain
from repro.telemetry.metrics import METRICS, MetricsRegistry


class TelemetryHub:
    """Exporter fan-out plus the shared metrics registry."""

    def __init__(self, metrics: MetricsRegistry = METRICS) -> None:
        self.metrics = metrics
        self._exporters: List[SpanExporter] = []
        self._lock = threading.Lock()
        self.chains_exported = 0

    # -- exporter management -----------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one exporter is installed."""
        return bool(self._exporters)

    def add_exporter(self, exporter: SpanExporter) -> SpanExporter:
        with self._lock:
            self._exporters.append(exporter)
        return exporter

    def remove_exporter(self, exporter: SpanExporter) -> bool:
        with self._lock:
            try:
                self._exporters.remove(exporter)
                return True
            except ValueError:
                return False

    def clear_exporters(self) -> None:
        with self._lock:
            self._exporters.clear()

    # -- export ------------------------------------------------------------

    def export_chain(self, chain: TraceChain) -> None:
        """Hand one finished chain to every exporter; never raises."""
        if chain.dropped:
            self.metrics.inc("context.spans_dropped_total", amount=chain.dropped)
        exporters = list(self._exporters)
        for exporter in exporters:
            try:
                exporter.export(chain)
            except Exception:  # noqa: BLE001 - telemetry never fails a request
                self.metrics.inc(
                    "telemetry.export_errors", (type(exporter).__name__,)
                )
        if exporters:
            self.chains_exported += 1

    def flush(self, ctx: Any) -> None:
        """Flush a finished :class:`~repro.context.CallContext` chain.

        Duck-typed to avoid an import cycle (context lazily imports this
        module for ``finish()``).  The span list is snapshotted under the
        context's chain lock so concurrent fan-out workers appending to a
        shared chain cannot tear the export.
        """
        if not self._exporters:
            return
        lock = getattr(ctx, "_span_lock", None)
        if lock is not None:
            with lock:
                spans = list(ctx.spans)
        else:
            spans = list(ctx.spans)
        if not spans and not ctx.spans_dropped:
            return
        # Head-sampling gate: recording above was free to happen — only
        # the *export* is sampled, so the tail override still sees error
        # chains that were head-sampled out.
        if not sampling.export_decision(ctx, spans):
            self.metrics.inc("telemetry.spans_sampled_out", amount=len(spans))
            self.metrics.inc("telemetry.chains_sampled_out")
            return
        self.export_chain(TraceChain(ctx.trace_id, spans, ctx.spans_dropped))


#: The process-global hub; replaceable for tests via :func:`set_hub`.
_hub = TelemetryHub()


def get_hub() -> TelemetryHub:
    return _hub


def set_hub(hub: TelemetryHub) -> TelemetryHub:
    """Swap the process hub (tests); returns the previous one."""
    global _hub
    previous, _hub = _hub, hub
    return previous


def spans_wanted() -> bool:
    """True when at least one exporter is installed on the process hub.

    Boundary layers that *construct* a context themselves (the RPC
    server rebuilding the caller's wire context) use this to skip span
    bookkeeping entirely when nothing will ever read the chain: without
    an exporter a server-side span is appended, flushed into a no-op,
    and discarded — pure fast-path overhead.  Contexts handed in by a
    caller always record spans, exporter or not, because the caller can
    read ``ctx.spans`` directly.
    """
    return bool(_hub._exporters)


def flush_context(ctx: Any) -> None:
    """Best-effort chain flush — the boundary hooks call this.

    The no-exporter fast path is a single list truth test.
    """
    hub = _hub
    if not hub._exporters:
        return
    hub.flush(ctx)


def flush_on_task_completion(ctx: Any) -> bool:
    """Drain ``ctx``'s chain when the current asyncio task completes.

    The async boundary hook: fire-and-forget tasks (spawned handlers,
    fan-out legs that own their chain) have no return path where a
    ``finally: flush_context(ctx)`` could live in the caller, so they
    register the flush as a done-callback instead — it runs whether the
    task returns, raises, or is cancelled at its deadline.  Returns
    False (and flushes nothing) outside a running task, so callers can
    fall back to a synchronous flush.  The no-exporter fast path never
    touches asyncio.
    """
    if not _hub._exporters:
        # Cheap and honest: with nobody listening there is nothing to
        # arrange.  (A caller that installs an exporter *mid-task* misses
        # that task's chain — same contract as flush_context.)
        return False
    import asyncio

    try:
        task = asyncio.current_task()
    except RuntimeError:
        task = None
    if task is None:
        return False
    task.add_done_callback(lambda _task: flush_context(ctx))
    return True


@contextmanager
def use_exporter(exporter: SpanExporter) -> Iterator[SpanExporter]:
    """Install an exporter for a scope (reports, tests)."""
    _hub.add_exporter(exporter)
    try:
        yield exporter
    finally:
        _hub.remove_exporter(exporter)
