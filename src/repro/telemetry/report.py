"""The layer-latency report: Fig. 6's cost breakdown from live traces.

Grown out of ``bench_fig6_full_stack.py``'s span-based cost accounting:
instead of eyeballing one trace, this module drives repeated traced
import → bind → invoke cascades across simulated stacks — one per
(latency model, fleet size) cell — flushes every finished chain through
a :class:`~repro.telemetry.exporters.RingExporter`, and aggregates the
per-layer elapsed times into p50/p95/max tables.  A companion
``recovery`` table runs a crash-and-recover cell per latency model and
reports the failure-recovery layer's footprint: failover attempts,
breaker opens, and lease expirations.

The tables render through the existing :mod:`repro.uims` backends (the
same widget model that renders generated service forms), so the report
is available as text and as a self-contained HTML page::

    python -m repro telemetry-report --out report.html --json BENCH_telemetry_report.json

Virtual seconds throughout: the simulated network advances a virtual
clock, so numbers are deterministic and describe the *modelled* network,
not host scheduling noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.context import CallContext
from repro.core import GenericClient, make_tradable
from repro.core.integration import export_properties
from repro.core.rebind import RebindingClient
from repro.errors import CosmError
from repro.net import (
    FixedLatency,
    JitteredLatency,
    LanWanLatency,
    LatencyModel,
    SimNetwork,
)
from repro.rpc.client import RpcClient
from repro.rpc.resilience import BackoffPolicy, BreakerPolicy, ResilientCaller
from repro.rpc.server import RpcServer
from repro.rpc.transport import SimTransport
from repro.services.car_rental import start_car_rental
from repro.telemetry.exporters import RingExporter, TraceChain
from repro.telemetry.hub import use_exporter
from repro.telemetry.metrics import METRICS
from repro.trader.service_types import service_type_from_sid
from repro.trader.trader import (
    ImportRequest,
    LocalTrader,
    TraderClient,
    TraderService,
)
from repro.uims.html import render_page_html
from repro.uims.render import render
from repro.uims.widgets import Label, Table, Widget

# The latency models compared side by side.  ``lan-wan`` names hosts so
# the user sits on one site and the services on another — every
# client-side RPC crosses the WAN while server-side traffic stays local.
LATENCY_MODELS: Dict[str, Callable[[], LatencyModel]] = {
    "lan": lambda: FixedLatency(0.0005),
    "wan": lambda: FixedLatency(0.02),
    "jitter": lambda: JitteredLatency(base=0.002, jitter=0.004),
    "lan-wan": lambda: LanWanLatency(lan=0.0005, wan=0.02),
}

DEFAULT_MODELS = ("lan", "wan", "lan-wan")
DEFAULT_FLEETS = (4, 32)
DEFAULT_REPEATS = 12

SELECTION = {"CarModel": "AUDI", "BookingDate": "1994-06-21", "Days": 2}


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (0 <= q <= 1)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def aggregate_layers(chains: Sequence[TraceChain]) -> Dict[str, Dict[str, Any]]:
    """Per-layer latency summary over every span in ``chains``."""
    samples: Dict[str, List[float]] = {}
    for chain in chains:
        for span in chain.spans:
            samples.setdefault(span.layer, []).append(span.elapsed)
    return {
        layer: {
            "count": len(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "max": max(values),
        }
        for layer, values in sorted(samples.items())
    }


def run_cell(
    model: str,
    fleet: int,
    repeats: int,
    seed: int = 1994,
) -> Dict[str, Any]:
    """Measure one (latency model, fleet size) cell.

    Builds a fresh simulated stack — rental service, hub trader with a
    federated peer trader, generic client — exports ``fleet`` offers
    split across the two traders, and runs ``repeats`` traced
    import → bind → invoke → unbind cascades.  Every finished chain
    (client side via :meth:`~repro.context.CallContext.finish`, server
    side at each dispatch boundary) lands in a ring exporter; the cell
    result aggregates them per layer.
    """
    net = SimNetwork(latency=LATENCY_MODELS[model](), seed=seed)

    def server(host: str) -> RpcServer:
        return RpcServer(SimTransport(net, host))

    def client(host: str) -> RpcClient:
        return RpcClient(SimTransport(net, host), timeout=5.0, retries=1)

    rental = start_car_rental(server("rental.site-b"))
    rental.implementation.fleet = {"AUDI": 10**9, "FIAT-Uno": 10**9, "VW-Golf": 10**9}
    hub = TraderService(server("trader.site-b"), client=client("trader.site-b"))
    peer = TraderService(server("peer.site-b"), client=client("peer.site-b"))
    hub.link_to(peer.address, name="peer")

    user = client("user.site-a")
    importer = TraderClient(user, hub.address)
    peer_stub = TraderClient(client("user.site-a"), peer.address)
    # First export derives and registers the service type at the hub …
    make_tradable(rental.sid, rental.ref, importer)
    # … the peer needs the same type before it can hold offers.
    service_type = service_type_from_sid(rental.sid)
    peer_stub.add_type(service_type)
    properties = export_properties(rental.sid)
    for index in range(max(0, fleet - 1)):
        target = importer if index % 2 == 0 else peer_stub
        target.export(service_type.name, rental.ref, dict(properties))

    generic = GenericClient(user)
    ring = RingExporter(capacity=max(64, repeats * 16))
    request = ImportRequest(service_type.name, hop_limit=2)
    with use_exporter(ring):
        for _ in range(repeats):
            ctx = CallContext.with_timeout(60.0, user.transport.now())
            try:
                offers = importer.import_(request, ctx=ctx)
                binding = generic.bind(offers[0].service_ref(), ctx=ctx)
                binding.invoke("SelectCar", {"selection": SELECTION}, ctx=ctx)
                binding.unbind()
            finally:
                ctx.finish()
    chains = ring.chains()
    return {
        "model": model,
        "fleet": fleet,
        "repeats": repeats,
        "chains": len(chains),
        "traces": len({chain.trace_id for chain in chains}),
        "layers": aggregate_layers(chains),
    }


# The recovery-layer series surfaced in the report: the same counters
# the chaos suite and bench_failover assert on.
RECOVERY_COUNTERS = {
    "failovers": "rpc.failover.attempts",
    "breaker_opens": "rpc.breaker.opens",
    "lease_expirations": "trader.offers.expired",
}


def run_recovery_cell(model: str, repeats: int, seed: int = 1994) -> Dict[str, Any]:
    """Crash-and-recover under ``model``: the recovery layer's footprint.

    Two leased exporters serve a :class:`RebindingClient`; midway the
    trader's ranked-first exporter crashes.  Failover rides out the
    crash window, the dead lease lapses (lazy exclusion, then an
    explicit sweep), and the re-import lands on the survivor.  The cell
    reports how far the recovery counters moved, so the layer shows up
    in the same dashboard as the latency grid.
    """
    net = SimNetwork(latency=LATENCY_MODELS[model](), seed=seed)
    clock = net.clock
    mediator = TraderService(
        RpcServer(SimTransport(net, "trader.site-b")),
        trader=LocalTrader("td", clock=lambda: clock.now),
        now=lambda: clock.now,
    )
    rpc = RpcClient(SimTransport(net, "user.site-a"), timeout=0.5, retries=1)
    rebinder = RebindingClient(
        rpc,
        TraderClient(rpc, mediator.address),
        resilient=ResilientCaller(
            rpc,
            backoff=BackoffPolicy(base=0.01, cap=0.1),
            breaker=BreakerPolicy(failure_threshold=2, probe_interval=0.5),
            seed=seed,
        ),
        generic=GenericClient(rpc, enforce_fsm=False),
    )

    def spawn(host: str) -> None:
        runtime = start_car_rental(
            RpcServer(SimTransport(net, host)), enforce_fsm=False
        )
        make_tradable(
            runtime.sid, runtime.ref, mediator.trader,
            now=clock.now, lease_seconds=2.0,
        )

    spawn("w1.site-b")
    spawn("w2.site-b")
    # The trader's ranking decides who takes the traffic — crash that
    # one; every other exporter stays live (its lease keeps renewing).
    ranked = mediator.trader.import_(ImportRequest("CarRentalService"), now=clock.now)
    primary = ranked[0].ref["host"]
    survivors = [o.offer_id for o in ranked if o.ref["host"] != primary]

    before = {
        name: METRICS.counter_total(series)
        for name, series in RECOVERY_COUNTERS.items()
    }
    calls = max(6, repeats)
    succeeded = 0
    for index in range(calls):
        if index == calls // 2:
            net.faults.crash(primary)
        for offer_id in survivors:  # stand-in for the exporter heartbeat
            mediator.trader.renew(offer_id, now=clock.now)
        ctx = CallContext(deadline=clock.now + 2.0)
        try:
            rebinder.invoke(
                "CarRentalService", "SelectCar",
                {"selection": SELECTION}, ctx=ctx,
            )
            succeeded += 1
        except CosmError:
            pass
        finally:
            ctx.finish()
    # Idle past the lease horizon: the survivors keep heartbeating, the
    # crashed exporter cannot — its lease is the one the sweep reclaims.
    clock.run_for(2.5)
    for offer_id in survivors:
        mediator.trader.renew(offer_id, now=clock.now)
    mediator.trader.expire_offers(clock.now)
    moved = {
        name: int(METRICS.counter_total(series) - before[name])
        for name, series in RECOVERY_COUNTERS.items()
    }
    return {
        "model": model,
        "calls": calls,
        "succeeded": succeeded,
        "rebinds": rebinder.rebinds,
        "reimports": rebinder.imports,
        **moved,
    }


def run_async_cell(model: str, clients: int = 32, seed: int = 1994) -> Dict[str, Any]:
    """The async stack's footprint: in-flight concurrency on one loop.

    Runs ``clients`` concurrent calls against an
    :class:`~repro.rpc.aio.AsyncRpcServer` on a virtual-time event loop,
    sampling the ``rpc.async.inflight`` gauge mid-flight — the report's
    window onto the async transport: peak concurrency, the gauge
    returning to zero at rest, and the virtual makespan (≈ one call's
    round trip, not ``clients`` of them, when the fan-out overlaps).
    """
    import asyncio

    from repro.net.aioclock import loop_for
    from repro.rpc.aio import AsyncRpcClient, AsyncRpcServer
    from repro.rpc.server import RpcProgram

    net = SimNetwork(latency=LATENCY_MODELS[model](), seed=seed)
    server = AsyncRpcServer(SimTransport(net, "asrv.site-b"))
    program = RpcProgram(662100, 1, "report-async")

    async def hold(args):
        await asyncio.sleep(args["hold"])
        return True

    program.register(1, hold, "hold")
    server.serve(program)
    client = AsyncRpcClient(
        SimTransport(net, "acli.site-a"), timeout=10.0, retries=1
    )
    peak = {"inflight": 0}

    async def probe() -> None:
        # Sample while every call is still holding (hold >> probe delay).
        await asyncio.sleep(0.05)
        peak["inflight"] = METRICS.gauge("rpc.async.inflight")

    async def main() -> float:
        start = net.clock.now
        await asyncio.gather(
            probe(),
            *[
                client.call(server.address, 662100, 1, 1, {"hold": 1.0})
                for _ in range(clients)
            ],
        )
        return net.clock.now - start

    makespan = loop_for(net.clock).run_until_complete(main())
    return {
        "model": model,
        "clients": clients,
        "inflight_peak": int(peak["inflight"]),
        "inflight_at_rest": int(METRICS.gauge("rpc.async.inflight")),
        "makespan": makespan,
    }


#: Program number of the wire-cell echo service.
WIRE_PROGRAM = 662200


def run_wire_cell(model: str, repeats: int, seed: int = 1994) -> Dict[str, Any]:
    """The wire fast lane's footprint: call batching and compiled codecs.

    A :class:`~repro.rpc.client.BatchingClient` fires a burst of
    identical small calls at an echo server over the simulated network:
    the burst leaves as BATCH payloads (watermark-sized), the server
    admits the whole batch before executing, and its replies coalesce
    into shared writes.  The echo procedure's signature is registered
    with the compiled codec, so the same burst also exercises the
    compiled encode/decode lane; one deliberately dynamic call shows the
    tagged fallback staying live beside it.  The cell reports writes
    saved in both directions, codec hit/fallback counters, and the
    static-vs-tagged body size of the fixture arguments.
    """
    from repro.rpc.client import BatchingClient
    from repro.rpc.codec import CODECS
    from repro.rpc.server import RpcProgram
    from repro.rpc.xdr import encode_value
    from repro.sidl import layout

    net = SimNetwork(latency=LATENCY_MODELS[model](), seed=seed)
    server = RpcServer(SimTransport(net, "wire.site-b"))
    program = RpcProgram(WIRE_PROGRAM, 1, "report-wire")
    program.register(1, lambda args: args, "echo")
    program.register(2, lambda args: args, "echo_dynamic")
    server.serve(program)
    # Idempotent across cells: re-registering the identical spec is a no-op.
    echo_spec = layout.struct(key=layout.string(), value=layout.i64())
    CODECS.register(WIRE_PROGRAM, 1, 1, args=echo_spec, result=echo_spec)

    payload = {"key": "fig6", "value": 21}
    calls = max(8, repeats)
    hits_before = METRICS.counter_total("rpc.codec.compiled_hits")
    fallback_before = METRICS.counter_total("rpc.codec.fallback")
    replies_before = METRICS.histogram("rpc.server.batch_replies") or {
        "count": 0, "sum": 0.0,
    }

    client = BatchingClient(
        SimTransport(net, "wire.site-a"), timeout=5.0, retries=1, linger=0.0
    )
    outcomes = client.call_many(
        server.address, [(WIRE_PROGRAM, 1, 1, dict(payload))] * calls
    )
    succeeded = sum(
        1 for outcome in outcomes if not isinstance(outcome, Exception)
    )
    # One dynamic-marshalling call beside the fast lane: an unregistered
    # signature rides the tagged codec through the same batching client.
    client.call(
        server.address, WIRE_PROGRAM, 1, 2, {"nested": {"mixed": [1, 2.5, "x"]}}
    )

    replies_after = METRICS.histogram("rpc.server.batch_replies") or {
        "count": 0, "sum": 0.0,
    }
    reply_writes = replies_after["count"] - replies_before["count"]
    replies_sent = replies_after["sum"] - replies_before["sum"]
    return {
        "model": model,
        "calls": calls + 1,
        "succeeded": succeeded,
        "call_writes": client.batches_sent,
        "batch_mean": calls / client.batches_sent if client.batches_sent else 0.0,
        "replies_per_write": (
            replies_sent / reply_writes if reply_writes else 1.0
        ),
        "compiled_hits": int(
            METRICS.counter_total("rpc.codec.compiled_hits") - hits_before
        ),
        "codec_fallbacks": int(
            METRICS.counter_total("rpc.codec.fallback") - fallback_before
        ),
        "args_bytes_compiled": len(CODECS.encode_args(WIRE_PROGRAM, 1, 1, payload)),
        "args_bytes_tagged": len(encode_value(payload)),
    }


def build_report(
    models: Sequence[str] = DEFAULT_MODELS,
    fleets: Sequence[int] = DEFAULT_FLEETS,
    repeats: int = DEFAULT_REPEATS,
) -> Dict[str, Any]:
    """The full grid: one :func:`run_cell` per (model, fleet) pair."""
    cells = [
        run_cell(model, fleet, repeats)
        for model in models
        for fleet in fleets
    ]
    return {
        "benchmark": "telemetry_layer_latency",
        "unit": "virtual seconds",
        "models": list(models),
        "fleets": [int(fleet) for fleet in fleets],
        "repeats": repeats,
        "cells": cells,
        "recovery": [run_recovery_cell(model, repeats) for model in models],
        "async": [run_async_cell(model) for model in models],
        "wire": [run_wire_cell(model, repeats) for model in models],
    }


def report_widgets(report: Dict[str, Any]) -> List[Widget]:
    """Render the report grid as UIMS widgets (one table per model)."""
    widgets: List[Widget] = [
        Label(
            "summary",
            "Per-layer latency across {} traced cascades per cell "
            "(virtual seconds; import -> bind -> invoke on a simulated "
            "COSM stack).".format(report["repeats"]),
        )
    ]
    for model in report["models"]:
        table = Table(
            f"latency model: {model}",
            ["fleet", "layer", "spans", "p50", "p95", "max"],
        )
        for cell in report["cells"]:
            if cell["model"] != model:
                continue
            for layer, stats in cell["layers"].items():
                table.add_row(
                    cell["fleet"],
                    layer,
                    stats["count"],
                    stats["p50"],
                    stats["p95"],
                    stats["max"],
                )
        widgets.append(table)
    recovery = Table(
        "recovery (crash-and-recover, per model)",
        [
            "model", "calls", "ok", "failovers", "breaker opens",
            "lease expirations", "re-imports", "rebinds",
        ],
    )
    for cell in report.get("recovery", []):
        recovery.add_row(
            cell["model"],
            cell["calls"],
            cell["succeeded"],
            cell["failovers"],
            cell["breaker_opens"],
            cell["lease_expirations"],
            cell["reimports"],
            cell["rebinds"],
        )
    if report.get("recovery"):
        widgets.append(recovery)
    async_table = Table(
        "async stack (concurrent in-flight calls, per model)",
        ["model", "clients", "inflight peak", "inflight at rest", "makespan"],
    )
    for cell in report.get("async", []):
        async_table.add_row(
            cell["model"],
            cell["clients"],
            cell["inflight_peak"],
            cell["inflight_at_rest"],
            cell["makespan"],
        )
    if report.get("async"):
        widgets.append(async_table)
    wire_table = Table(
        "wire path (call batching + compiled codecs, per model)",
        [
            "model", "calls", "ok", "call writes", "mean batch",
            "replies/write", "compiled hits", "fallbacks",
            "args bytes (compiled)", "args bytes (tagged)",
        ],
    )
    for cell in report.get("wire", []):
        wire_table.add_row(
            cell["model"],
            cell["calls"],
            cell["succeeded"],
            cell["call_writes"],
            round(cell["batch_mean"], 2),
            round(cell["replies_per_write"], 2),
            cell["compiled_hits"],
            cell["codec_fallbacks"],
            cell["args_bytes_compiled"],
            cell["args_bytes_tagged"],
        )
    if report.get("wire"):
        widgets.append(wire_table)
    return widgets


def render_report_html(report: Dict[str, Any]) -> str:
    return render_page_html(
        "COSM layer-latency report",
        report_widgets(report),
        state=f"models: {', '.join(report['models'])}  "
        f"fleets: {report['fleets']}",
    )


def render_report_text(report: Dict[str, Any]) -> str:
    return "\n\n".join(render(widget) for widget in report_widgets(report))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry-report",
        description="Per-layer latency report from traced COSM cascades.",
    )
    parser.add_argument(
        "--models",
        default=",".join(DEFAULT_MODELS),
        help="comma-separated latency models (%s)" % ", ".join(LATENCY_MODELS),
    )
    parser.add_argument(
        "--fleets",
        default=",".join(str(fleet) for fleet in DEFAULT_FLEETS),
        help="comma-separated offer-pool sizes",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--out", default=None, help="write the HTML report here")
    parser.add_argument("--json", default=None, help="write the raw grid here")
    parser.add_argument(
        "--smoke", action="store_true", help="small grid for CI (2 models, 1 fleet)"
    )
    args = parser.parse_args(argv)

    models: Tuple[str, ...] = tuple(
        name.strip() for name in args.models.split(",") if name.strip()
    )
    fleets = tuple(int(item) for item in args.fleets.split(",") if item.strip())
    repeats = args.repeats
    if args.smoke:
        models, fleets, repeats = models[:2], fleets[:1], min(repeats, 5)
    unknown = [name for name in models if name not in LATENCY_MODELS]
    if unknown:
        parser.error(f"unknown latency models: {unknown}")

    report = build_report(models, fleets, repeats)
    print(render_report_text(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_report_html(report))
        print(f"\nhtml report -> {args.out}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"json grid   -> {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
