"""Span exporters: where finished call-context chains go.

A :class:`~repro.context.CallContext` accumulates a chain of
``SpanRecord``s as a request crosses the Fig. 6 layers; when the chain is
finished (``ctx.finish()``, or the best-effort flush at the RPC server
dispatch / client reply boundaries) the :class:`~repro.telemetry.hub.
TelemetryHub` hands it to every installed exporter as a
:class:`TraceChain`.

Three implementations, mirroring the usual observability deployment
shapes:

* :class:`RingExporter` — a bounded in-memory ring, the "recent traces"
  buffer reports and tests read back;
* :class:`JsonlExporter` — an append-only JSONL file, one chain per
  line; on any I/O failure it degrades to a **no-op** and bumps the
  ``telemetry.export_errors`` counter (telemetry must never fail a
  request);
* :class:`OtlpExporter` — OTLP-shaped dicts (``resourceSpans`` →
  ``scopeSpans`` → ``spans`` nesting with ``traceId``/``spanId``/
  ``parentSpanId``), handed to a sink callable or collected in memory.

Parent links are *derived* from the chain: spans are appended on
completion, so a span's parent is the first span completed after it
whose ``[start, end]`` interval encloses its own — exact for the nested
``with ctx.span(...)`` discipline every layer uses.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.metrics import METRICS


@dataclass
class TraceChain:
    """One finished span chain, as handed to exporters."""

    trace_id: str
    spans: List[Any] = field(default_factory=list)  # SpanRecord, duck-typed
    dropped: int = 0  # spans lost to the SPAN_LIMIT cap

    def layers(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.layer)
        return list(seen)

    def to_wire(self) -> Dict[str, Any]:
        parents = derive_parents(self.spans)
        return {
            "trace_id": self.trace_id,
            "dropped": self.dropped,
            "spans": [
                dict(
                    span.to_wire(),
                    span_id=span_id(self.trace_id, index),
                    parent_id=(
                        None if parents[index] is None
                        else span_id(self.trace_id, parents[index])
                    ),
                )
                for index, span in enumerate(self.spans)
            ],
        }


def span_id(trace_id: str, index: int) -> str:
    """Deterministic span id: chain position scoped by the trace."""
    return f"{trace_id}-s{index:04d}"


def derive_parents(spans: List[Any]) -> List[Optional[int]]:
    """Parent index per span, from completion order + interval containment.

    Spans are appended when they *complete* (the ``finally`` of
    ``ctx.span``), so an enclosing span always appears later in the chain
    than its children.  The parent of span ``i`` is therefore the first
    span after it whose interval contains ``i``'s — the tightest
    enclosing frame even when virtual time makes intervals degenerate.
    """
    ends = [span.started_at + span.elapsed for span in spans]
    parents: List[Optional[int]] = [None] * len(spans)
    for index, span in enumerate(spans):
        for candidate in range(index + 1, len(spans)):
            if (
                spans[candidate].started_at <= span.started_at
                and ends[candidate] >= ends[index]
            ):
                parents[index] = candidate
                break
    return parents


class SpanExporter:
    """Exporter protocol: receive one finished chain.  Must not raise —
    the hub guards regardless and counts ``telemetry.export_errors``."""

    def export(self, chain: TraceChain) -> None:  # pragma: no cover - protocol
        raise NotImplementedError


class RingExporter(SpanExporter):
    """Keeps the most recent ``capacity`` chains in memory (FIFO eviction)."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._chains: "deque[TraceChain]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.exported = 0
        self.evicted = 0

    def export(self, chain: TraceChain) -> None:
        with self._lock:
            if len(self._chains) == self.capacity:
                self.evicted += 1
            self._chains.append(chain)
            self.exported += 1

    def chains(self) -> List[TraceChain]:
        """Oldest-first snapshot of the retained chains."""
        with self._lock:
            return list(self._chains)

    def clear(self) -> None:
        with self._lock:
            self._chains.clear()


class JsonlExporter(SpanExporter):
    """Appends one JSON object per chain to a file, with rotation.

    The file is opened lazily on first export.  Any ``OSError`` —
    unwritable path, disk full, closed descriptor — permanently disables
    the exporter (it becomes a no-op) and bumps the
    ``telemetry.export_errors`` counter with the ``jsonl`` label:
    observability degrades, requests do not.

    **Rotation.**  With ``max_bytes`` set, a write that would push the
    current file past the limit first rotates: ``path`` becomes
    ``path.1``, existing ``path.N`` shift to ``path.N+1``, and anything
    past ``retain`` rotated files is deleted — so disk usage is bounded
    by roughly ``(retain + 1) * max_bytes``.  A single chain larger than
    ``max_bytes`` still lands whole in a fresh file (lines are never
    split).  ``max_bytes=None`` (default) keeps the historic
    append-forever behaviour.
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = None,
        retain: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive: {max_bytes}")
        if retain < 1:
            raise ValueError(f"retain must be >= 1: {retain}")
        self.path = path
        self.max_bytes = max_bytes
        self.retain = retain
        self.disabled = False
        self.lines_written = 0
        self.rotations = 0
        self._handle = None
        self._size = 0
        self._lock = threading.Lock()

    def export(self, chain: TraceChain) -> None:
        self._write_json(chain.to_wire())

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append an arbitrary JSON record (one line) to the same file.

        The structured logger (:mod:`repro.telemetry.log`) shares the
        span sink through this: log records and span chains interleave
        in one stream, rotate together, and carry the same trace ids —
        which is what lets the live dashboard join them.
        """
        self._write_json(record)

    def _write_json(self, record: Dict[str, Any]) -> None:
        if self.disabled:
            return
        line = json.dumps(record) + "\n"
        payload = line.encode("utf-8")
        with self._lock:
            try:
                if self._handle is None:
                    self._open()
                if (
                    self.max_bytes is not None
                    and self._size > 0
                    and self._size + len(payload) > self.max_bytes
                ):
                    self._rotate()
                self._handle.write(line)
                self._handle.flush()
                self._size += len(payload)
                self.lines_written += 1
            except OSError:
                self.disabled = True
                METRICS.inc("telemetry.export_errors", ("jsonl",))
                self._close_quietly()

    def rotated_paths(self) -> List[str]:
        """Existing rotated files, newest first (``path.1`` onward)."""
        return [
            f"{self.path}.{index}"
            for index in range(1, self.retain + 1)
            if os.path.exists(f"{self.path}.{index}")
        ]

    def _open(self) -> None:
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = os.path.getsize(self.path)

    def _rotate(self) -> None:
        self._close_quietly()
        oldest = f"{self.path}.{self.retain}"
        if os.path.exists(oldest):
            os.remove(oldest)  # retention cap: the oldest file falls off
        for index in range(self.retain - 1, 0, -1):
            rotated = f"{self.path}.{index}"
            if os.path.exists(rotated):
                os.replace(rotated, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self.rotations += 1
        self._open()

    def close(self) -> None:
        with self._lock:
            self._close_quietly()

    def _close_quietly(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass


class OtlpExporter(SpanExporter):
    """Emits OTLP-shaped dicts (the OTLP/JSON trace format, dict form).

    Each chain becomes one ``{"resourceSpans": [...]}`` batch with the
    standard resource → scope → span nesting; span ``attributes`` carry
    the COSM ``layer``/``operation``/``outcome`` triple, and timestamps
    are nanoseconds on the exporting clock (virtual seconds × 1e9 for sim
    stacks).  Batches go to ``sink`` when given, else pile up in
    ``self.batches`` for a shipper to drain.
    """

    def __init__(
        self,
        service_name: str = "cosm",
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self.service_name = service_name
        self.sink = sink
        self.batches: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def export(self, chain: TraceChain) -> None:
        batch = self.encode(chain)
        if self.sink is not None:
            self.sink(batch)
            return
        with self._lock:
            self.batches.append(batch)

    def encode(self, chain: TraceChain) -> Dict[str, Any]:
        parents = derive_parents(chain.spans)
        spans = []
        for index, span in enumerate(chain.spans):
            parent = parents[index]
            record: Dict[str, Any] = {
                "traceId": chain.trace_id,
                "spanId": span_id(chain.trace_id, index),
                "name": f"{span.layer}/{span.operation}",
                "startTimeUnixNano": int(span.started_at * 1e9),
                "endTimeUnixNano": int((span.started_at + span.elapsed) * 1e9),
                "attributes": [
                    _attribute("cosm.layer", span.layer),
                    _attribute("cosm.operation", span.operation),
                    _attribute("cosm.outcome", span.outcome),
                ],
                "status": (
                    {"code": "STATUS_CODE_OK"}
                    if span.outcome == "ok"
                    else {"code": "STATUS_CODE_ERROR", "message": span.outcome}
                ),
            }
            events = getattr(span, "events", None)
            if events:
                record["events"] = [
                    {
                        "timeUnixNano": int(event.get("at", 0.0) * 1e9),
                        "name": event.get("name", ""),
                        "attributes": [
                            _attribute(key, value)
                            for key, value in event.items()
                            if key not in ("name", "at")
                        ],
                    }
                    for event in events
                ]
            if parent is not None:
                record["parentSpanId"] = span_id(chain.trace_id, parent)
            spans.append(record)
        return {
            "resourceSpans": [
                {
                    "resource": {
                        "attributes": [
                            _attribute("service.name", self.service_name),
                            _attribute("cosm.spans_dropped", chain.dropped),
                        ]
                    },
                    "scopeSpans": [
                        {
                            "scope": {"name": "repro.telemetry"},
                            "spans": spans,
                        }
                    ],
                }
            ]
        }


def _attribute(key: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        wrapped: Dict[str, Any] = {"boolValue": value}
    elif isinstance(value, int):
        wrapped = {"intValue": str(value)}
    elif isinstance(value, float):
        wrapped = {"doubleValue": value}
    else:
        wrapped = {"stringValue": str(value)}
    return {"key": key, "value": wrapped}
