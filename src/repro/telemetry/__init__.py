"""Telemetry — the pluggable observability layer of the COSM stack.

The Fig. 6 architecture stacks five layers between a user and a wire
message; :mod:`repro.context` already threads a span chain through all of
them.  This package is where those chains (and the layers' counters) go:

* :mod:`repro.telemetry.metrics` — lock-protected counters and
  fixed-bucket histograms (``METRICS``, the process registry),
* :mod:`repro.telemetry.exporters` — the :class:`SpanExporter` protocol
  with bounded-ring, JSONL-file, and OTLP-dict implementations,
* :mod:`repro.telemetry.hub` — the process-global :class:`TelemetryHub`
  finished chains flush into (``ctx.finish()`` plus best-effort flushes
  at the RPC server dispatch and client reply boundaries),
* :mod:`repro.telemetry.sampling` — head trace sampling keyed on the
  trace id (every federated hop agrees without coordination) with a
  tail "always keep" override for error chains,
* :mod:`repro.telemetry.log` — trace-correlated structured logging
  (``LOG.event(...)`` stamps ``trace_id``/``span_uid`` from the ambient
  context into JSONL records sharing the span exporter sink),
* :mod:`repro.telemetry.live` — the streaming side: a rotation-aware
  :class:`JsonlTailReader`, a sliding-window per-layer RED aggregator,
  and the ``python -m repro telemetry-dash`` terminal dashboard,
* :mod:`repro.telemetry.report` — the per-layer latency report
  (imported lazily: it drives whole simulated stacks; import it as
  ``from repro.telemetry import report``).

Everything here must obey two rules: telemetry never fails a request,
and it costs next to nothing when no exporter is installed.
"""

from repro.telemetry.exporters import (
    JsonlExporter,
    OtlpExporter,
    RingExporter,
    SpanExporter,
    TraceChain,
    derive_parents,
)
from repro.telemetry.hub import (
    TelemetryHub,
    flush_context,
    flush_on_task_completion,
    get_hub,
    set_hub,
    use_exporter,
)
from repro.telemetry.log import LOG, StructuredLogger, use_log_sink
from repro.telemetry.metrics import DEFAULT_BUCKETS, METRICS, Histogram, MetricsRegistry
from repro.telemetry.sampling import SamplingPolicy, head_sampled, use_policy

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "JsonlExporter",
    "LOG",
    "METRICS",
    "MetricsRegistry",
    "OtlpExporter",
    "RingExporter",
    "SamplingPolicy",
    "SpanExporter",
    "StructuredLogger",
    "TelemetryHub",
    "TraceChain",
    "derive_parents",
    "flush_context",
    "flush_on_task_completion",
    "get_hub",
    "head_sampled",
    "set_hub",
    "use_exporter",
    "use_log_sink",
    "use_policy",
]
