"""Exception hierarchy shared across the COSM reproduction.

Every subsystem derives its errors from :class:`CosmError` so applications
can catch one base class at the COSM support interface.  Subsystems with a
richer local hierarchy (SIDL, RPC, trader) subclass further in their own
``errors`` modules.
"""

from __future__ import annotations


class CosmError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(CosmError):
    """A component was wired together inconsistently."""


class CommunicationError(CosmError):
    """Transport-level failure (timeouts, unreachable endpoints, drops)."""


class TimeoutError_(CommunicationError):
    """A call did not complete within its deadline.

    Named with a trailing underscore to avoid shadowing the builtin; the
    public alias is ``repro.errors.CallTimeout``.
    """


CallTimeout = TimeoutError_


class BindingError(CosmError):
    """A binding could not be established or has been torn down."""


class LookupFailure(CosmError):
    """A name, group, offer, or SID lookup produced no result."""


class ProtocolError(CosmError):
    """A peer violated the agreed wire or interaction protocol."""
