"""Preference (selection) policies: the trader's "best possible" choice.

An import request may name a preference that orders the matched offers
before ``max_matches`` truncation, per the ODP trader's selection
criteria:

* ``"first"`` — registration order (the default),
* ``"newest"`` / ``"oldest"`` — by export time,
* ``"random"`` — deterministic shuffle from the trader's seed,
* ``"max <expr>"`` / ``"min <expr>"`` — order by an arithmetic expression
  over offer properties (offers where the expression is undefined sort
  last).
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.trader.constraints import MISSING, _Parser, _tokenize
from repro.trader.errors import ConstraintSyntaxError
from repro.trader.offers import ServiceOffer


class Preference:
    """A parsed preference; apply to an offer list to order it."""

    def __init__(self, source: str, kind: str, expr=None) -> None:
        self.source = source
        self.kind = kind
        self._expr = expr
        # For a min/max over a bare property reference ("min ChargePerDay")
        # the sorted property index can rank candidates without scoring
        # each one; compound expressions keep this None and take the
        # general path.
        self.key_property: Optional[str] = (
            getattr(expr, "prop_name", None) if kind in ("min", "max") else None
        )

    def apply(self, offers: List[ServiceOffer], rng: Optional[random.Random] = None) -> List[ServiceOffer]:
        if self.kind == "first":
            return list(offers)
        if self.kind == "newest":
            return sorted(offers, key=lambda offer: -offer.exported_at)
        if self.kind == "oldest":
            return sorted(offers, key=lambda offer: offer.exported_at)
        if self.kind == "random":
            shuffled = list(offers)
            (rng or random.Random(0)).shuffle(shuffled)
            return shuffled
        # max/min over an expression
        reverse = self.kind == "max"
        scored: List[Tuple[int, Any, ServiceOffer]] = []
        for index, offer in enumerate(offers):
            value = self._expr(offer.properties)
            defined = value is not MISSING and isinstance(value, (int, float))
            scored.append((index, value if defined else None, offer))
        defined_offers = [item for item in scored if item[1] is not None]
        undefined_offers = [item for item in scored if item[1] is None]
        defined_offers.sort(key=lambda item: (-item[1] if reverse else item[1], item[0]))
        return [item[2] for item in defined_offers + undefined_offers]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Preference {self.source!r}>"


def parse_preference(text: Optional[str]) -> Preference:
    """Parse preference text; ``None``/blank means registration order."""
    if text is None or not text.strip():
        return Preference("", "first")
    stripped = text.strip()
    lowered = stripped.lower()
    if lowered in ("first", "newest", "oldest", "random"):
        return Preference(stripped, lowered)
    for keyword in ("max", "min"):
        if lowered.startswith(keyword + " ") or lowered.startswith(keyword + "("):
            expression_text = stripped[len(keyword):].strip()
            parser = _Parser(_tokenize(expression_text))
            expr = parser.parse_sum()
            parser.expect("\0")
            return Preference(stripped, keyword, expr)
    raise ConstraintSyntaxError(f"unknown preference {text!r}")
