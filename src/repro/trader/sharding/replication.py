"""The shard replication log: sequence-numbered offer/lease deltas.

A primary appends one :class:`ShardDelta` per mutation and pushes it to
its replicas; a replica applies deltas strictly in sequence and pulls a
catch-up batch (``since``) when it detects a gap.  The log is the unit
of anti-entropy — lease *times* travel inside the deltas, so a replica
that catches up after an outage knows exactly which leases lapsed while
it was dark and can expire them before serving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.trader.errors import TraderError


class ShardingError(TraderError):
    """A sharding-layer failure (placement, replication, failover)."""


class SyncGap(ShardingError):
    """The replica is behind the log's truncation point: needs a snapshot."""


class ShardUnavailable(ShardingError):
    """No backend (primary or replica) could serve the shard's request."""


class MigrationSealed(ShardingError):
    """The donor sealed this service type at migration FLIP: writes for it
    must be forwarded to the recipient shard (the router does so)."""


class ShardNotDrained(ShardingError):
    """``remove_shard`` refused: the victim still holds live offers that a
    removal would silently strand.  Drain (migrate) it first, or pass
    ``force=True`` to accept the loss."""


#: Delta operations a primary may log.  ``expire`` replicates the lease
#: sweep itself so replicas evict exactly the offers the primary did, at
#: the same virtual instant — independent sweeping would diverge.  The
#: ``migrate_*`` ops replicate live-resharding state so a replica
#: promoted mid-migration inherits the migration exactly where the old
#: primary left it (see :mod:`repro.trader.sharding.migration`).
DELTA_OPS = (
    "export",
    "withdraw",
    "modify",
    "renew",
    "expire",
    "add_type",
    "remove_type",
    "mask_type",
    "migrate_begin",
    "migrate_in",
    "migrate_expire",
    "migrate_flip",
    "migrate_done",
    "migrate_abort",
)


@dataclass
class ShardDelta:
    """One replicated mutation, totally ordered by ``seq`` per shard."""

    seq: int
    op: str
    data: Dict[str, Any]
    #: The shard-map version the primary held when logging — the version
    #: header that lets a replica spot routing skew during catch-up.
    map_version: int = 0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "op": self.op,
            "data": dict(self.data),
            "map_version": self.map_version,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ShardDelta":
        return cls(
            seq=data["seq"],
            op=data["op"],
            data=data.get("data", {}),
            map_version=data.get("map_version", 0),
        )


class DeltaLog:
    """An append-only, truncatable run of deltas starting after ``base_seq``.

    ``base_seq`` is the high-water mark already folded into a snapshot:
    a log restored from persistence starts empty at the snapshot's
    sequence, and ``since`` refuses (raises :class:`SyncGap`) to serve a
    replica older than the base — that replica needs the snapshot, not
    the log.
    """

    def __init__(self, base_seq: int = 0) -> None:
        self._base = base_seq
        self._entries: List[ShardDelta] = []

    @property
    def base_seq(self) -> int:
        return self._base

    @property
    def last_seq(self) -> int:
        return self._entries[-1].seq if self._entries else self._base

    def append(self, op: str, data: Dict[str, Any], map_version: int = 0) -> ShardDelta:
        delta = ShardDelta(self.last_seq + 1, op, data, map_version)
        self._entries.append(delta)
        return delta

    def record(self, delta: ShardDelta) -> None:
        """Mirror an externally sequenced delta (a replica keeping its own
        log so it can serve as a primary after promotion)."""
        if delta.seq != self.last_seq + 1:
            raise ShardingError(
                f"out-of-order record: have {self.last_seq}, got {delta.seq}"
            )
        self._entries.append(delta)

    def since(self, seq: int) -> List[ShardDelta]:
        """Every delta after ``seq``, oldest first."""
        if seq < self._base:
            raise SyncGap(
                f"log starts after seq {self._base}; replica at {seq} needs a snapshot"
            )
        if seq >= self.last_seq:
            return []
        # Entries are contiguous from _base+1, so slice by offset.
        return list(self._entries[seq - self._base :])

    def truncate_to(self, seq: int) -> int:
        """Drop entries at or below ``seq`` (already snapshotted); returns
        how many were dropped."""
        if seq <= self._base:
            return 0
        seq = min(seq, self.last_seq)
        dropped = seq - self._base
        self._entries = self._entries[dropped:]
        self._base = seq
        return dropped

    def __len__(self) -> int:
        return len(self._entries)
