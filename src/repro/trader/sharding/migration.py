"""Live resharding: move a service type between shards with zero loss.

The :class:`MigrationCoordinator` drives one service type from its
current owner (the *donor*) to a new owner (the *recipient*) through a
six-phase state machine::

    PREPARE -> COPY -> CATCH_UP -> FLIP -> DRAIN -> DONE

* **PREPARE** opens the migration on both shards.  The donor snapshots
  the moving type's offer-id list and its log position; both ends log a
  ``migrate_begin`` delta, so a replica promoted mid-migration inherits
  the whole record.
* **COPY** streams the snapshot in idempotent chunks.  Absorbed ids burn
  the recipient's per-type counters, so it can never re-mint one.
* **CATCH_UP** replays the donor's delta-log tail (filtered to the
  moving type) onto the recipient.  Lease times travel as absolutes, so
  a replayed RENEW can never extend a lease past what the donor granted.
* **FLIP** seals the type on the donor — further writes there raise
  :class:`~repro.trader.sharding.replication.MigrationSealed` and the
  router forwards them — replays the now-final tail, then atomically
  flips routing to the recipient and bumps the shard-map version.
* **DRAIN** drops the moved offers from the donor (rehoming, not
  expiry) and closes the dual-ownership window.

Every phase transition (and every COPY chunk) is checkpointed through a
pluggable :class:`MemoryCheckpoints`/:class:`FileCheckpoints` store, and
every shard-side op is idempotent, so a coordinator that crashes at any
step ``resume()``-s cleanly — or ``abort()``-s back to the pre-migration
world while still short of FLIP, the point of no return.

While a migration is open the router runs the **dual-ownership
forwarding window**: writes route to the phase-authoritative side (donor
before FLIP, recipient after) with sealed-donor stragglers forwarded,
and imports double-read both shards, the authoritative copy winning any
duplicate — so no call fails and no stale mediation is observable.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.context import CallContext
from repro.telemetry.metrics import METRICS
from repro.trader.sharding.replication import ShardingError

#: The migration state machine, in order.  ``ABORTED`` is the rollback
#: terminal; a migration is live while its phase sits in PHASES[:-1].
PHASES = ("PREPARE", "COPY", "CATCH_UP", "FLIP", "DRAIN", "DONE")
PHASE_ABORTED = "ABORTED"

#: Gauge value per phase (``sharding.migration.phase``): 1-based index,
#: 0 = aborted, so a dashboard can read progress as a number.
PHASE_INDEX = {name: index + 1 for index, name in enumerate(PHASES)}
PHASE_INDEX[PHASE_ABORTED] = 0

#: Phases during which the router double-reads imports from both owners.
DUAL_READ_PHASES = ("COPY", "CATCH_UP", "FLIP", "DRAIN")

#: Phases a migration can still be rolled back from.  FLIP re-routes the
#: type; past it the only way out is forward.
ABORTABLE_PHASES = ("PREPARE", "COPY", "CATCH_UP")


class MigrationError(ShardingError):
    """The migration protocol was driven outside its state machine."""


@dataclass
class MigrationState:
    """One migration's coordinator-side checkpoint record."""

    migration_id: str
    service_type: str
    source: str
    target: str
    phase: str = "PREPARE"
    #: Donor log position at PREPARE: the copy snapshot covers everything
    #: at or below it, the tail replay everything after it.
    snapshot_seq: int = 0
    #: COPY cursor into the donor's begin-time offer-id list.
    cursor: int = 0
    #: Offers in the begin-time snapshot (progress denominator).
    total: int = 0
    #: High-water mark of donor deltas already replayed to the recipient.
    replayed_seq: int = 0
    offers_copied: int = 0
    deltas_replayed: int = 0
    catchup_rounds: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.phase in ("DONE", PHASE_ABORTED)

    @property
    def flipped(self) -> bool:
        """Routing authority: False = donor still owns, True = recipient."""
        return self.phase in ("DRAIN", "DONE")

    def to_wire(self) -> Dict[str, Any]:
        return {
            "migration_id": self.migration_id,
            "service_type": self.service_type,
            "source": self.source,
            "target": self.target,
            "phase": self.phase,
            "snapshot_seq": self.snapshot_seq,
            "cursor": self.cursor,
            "total": self.total,
            "replayed_seq": self.replayed_seq,
            "offers_copied": self.offers_copied,
            "deltas_replayed": self.deltas_replayed,
            "catchup_rounds": self.catchup_rounds,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "MigrationState":
        return cls(
            migration_id=data["migration_id"],
            service_type=data["service_type"],
            source=data["source"],
            target=data["target"],
            phase=data.get("phase", "PREPARE"),
            snapshot_seq=data.get("snapshot_seq", 0),
            cursor=data.get("cursor", 0),
            total=data.get("total", 0),
            replayed_seq=data.get("replayed_seq", 0),
            offers_copied=data.get("offers_copied", 0),
            deltas_replayed=data.get("deltas_replayed", 0),
            catchup_rounds=data.get("catchup_rounds", 0),
            extra=dict(data.get("extra", {})),
        )


class MemoryCheckpoints:
    """In-memory checkpoint store.  States round-trip through JSON so a
    resumed coordinator sees exactly what a file store would have
    persisted — no live-object state leaks across a simulated crash."""

    def __init__(self) -> None:
        self._states: Dict[str, str] = {}

    def save(self, state: MigrationState) -> None:
        self._states[state.migration_id] = json.dumps(state.to_wire(), sort_keys=True)

    def load(self, migration_id: str) -> Optional[MigrationState]:
        raw = self._states.get(migration_id)
        return None if raw is None else MigrationState.from_wire(json.loads(raw))

    def discard(self, migration_id: str) -> None:
        self._states.pop(migration_id, None)

    def open_migrations(self) -> List[str]:
        """Ids of migrations checkpointed short of a terminal phase — what
        a restarted coordinator must ``resume()``."""
        return sorted(
            migration_id
            for migration_id, raw in self._states.items()
            if json.loads(raw)["phase"] not in ("DONE", PHASE_ABORTED)
        )


class FileCheckpoints(MemoryCheckpoints):
    """Checkpoints as one JSON file per migration under ``directory`` —
    the durable form a real deployment resumes from after a restart."""

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        super().__init__()
        self._directory = pathlib.Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        for path in sorted(self._directory.glob("*.migration.json")):
            wire = json.loads(path.read_text())
            self._states[wire["migration_id"]] = json.dumps(wire, sort_keys=True)

    def _path(self, migration_id: str) -> pathlib.Path:
        return self._directory / f"{migration_id}.migration.json"

    def save(self, state: MigrationState) -> None:
        super().save(state)
        self._path(state.migration_id).write_text(self._states[state.migration_id])

    def discard(self, migration_id: str) -> None:
        super().discard(migration_id)
        path = self._path(migration_id)
        if path.exists():
            path.unlink()


class MigrationCoordinator:
    """Drive migrations over a :class:`~repro.trader.sharding.router.ShardRouter`.

    ``step()`` advances exactly one unit of work (one phase transition,
    or one COPY chunk / CATCH_UP round) and checkpoints — the granularity
    the chaos suite crashes at; ``run()`` steps to completion.  All shard
    calls go through the router's handles, so breaker-driven failover
    applies: a donor primary crash promotes its replica (which inherited
    the migration record from the delta log) and the step retries there.
    """

    def __init__(
        self,
        router: Any,
        checkpoints: Optional[MemoryCheckpoints] = None,
        chunk_size: int = 256,
        max_catchup_rounds: int = 4,
    ) -> None:
        self.router = router
        self.checkpoints = checkpoints if checkpoints is not None else MemoryCheckpoints()
        self.chunk_size = max(1, chunk_size)
        self.max_catchup_rounds = max(1, max_catchup_rounds)
        self._contexts: Dict[str, CallContext] = {}

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self,
        service_type: str,
        target: str,
        source: Optional[str] = None,
        migration_id: Optional[str] = None,
    ) -> MigrationState:
        """Open a migration of ``service_type`` onto shard ``target``."""
        router = self.router
        if target not in router.map:
            raise MigrationError(f"target shard {target!r} is not in the map")
        if not router.types.has(service_type):
            raise MigrationError(f"unknown service type {service_type!r}")
        source = source or router.effective_owner(service_type)
        if source == target:
            raise MigrationError(
                f"{service_type!r} already lives on {target!r}; nothing to migrate"
            )
        if router.migration_for(service_type) is not None:
            raise MigrationError(f"{service_type!r} is already migrating")
        migration_id = migration_id or (
            f"mig-{service_type}-{source}-{target}-v{router.map.version}"
        )
        state = MigrationState(migration_id, service_type, source, target)
        router.open_migration(state)
        self._checkpoint(state)
        return state

    def step(self, state: MigrationState, now: Optional[float] = None) -> MigrationState:
        """Advance one unit of work; returns the (mutated) state."""
        if state.finished:
            return state
        now = self._now(now)
        phase = state.phase
        with self._ctx(state).span("sharding", f"migrate:{phase}:{state.service_type}",
                                   lambda: now):
            if phase == "PREPARE":
                self._prepare(state)
            elif phase == "COPY":
                self._copy_chunk(state)
            elif phase == "CATCH_UP":
                self._catch_up(state)
            elif phase == "FLIP":
                self._flip(state, now)
            elif phase == "DRAIN":
                self._drain(state)
            else:  # pragma: no cover - PHASES is closed
                raise MigrationError(f"unknown phase {phase!r}")
        self._checkpoint(state)
        if state.finished:
            self._finish_trace(state)
        return state

    def run(self, state: MigrationState, now: Optional[float] = None) -> MigrationState:
        """Step the migration to DONE (bounded: it cannot loop forever)."""
        for _ in range(self.max_steps(state)):
            if state.finished:
                return state
            self.step(state, now)
        if not state.finished:  # pragma: no cover - defensive bound
            raise MigrationError(f"{state.migration_id}: did not converge")
        return state

    def resume(self, migration_id: str) -> MigrationState:
        """Reload a checkpointed migration and re-establish the router's
        window/pins for it — after this, ``run()`` idempotently redoes
        the interrupted step and carries on."""
        state = self.checkpoints.load(migration_id)
        if state is None:
            raise MigrationError(f"no checkpoint for migration {migration_id!r}")
        if state.phase == PHASE_ABORTED:
            return state
        if not state.finished:
            self.router.open_migration(state)
        if state.flipped:
            # The routing flip may predate a router restart: reapply it.
            self.router.flip_type(state)
        if state.phase == "DONE":
            self.router.close_migration(state)
        return state

    def abort(self, state: MigrationState) -> MigrationState:
        """Roll back a migration still short of FLIP: the donor keeps the
        type (unsealed), the recipient drops every copied offer."""
        if state.phase not in ABORTABLE_PHASES:
            raise MigrationError(
                f"{state.migration_id}: cannot abort in {state.phase} — "
                "FLIP is the point of no return"
            )
        router = self.router
        # Both calls are no-ops on a shard that never saw migrate_begin.
        router.handle(state.source).call("migrate_abort", state.migration_id)
        router.handle(state.target).call("migrate_abort", state.migration_id)
        router.close_migration(state)
        state.phase = PHASE_ABORTED
        self._checkpoint(state)
        self._finish_trace(state)
        return state

    def max_steps(self, state: MigrationState) -> int:
        """A safe upper bound on remaining ``step()`` calls."""
        chunks = (max(state.total, len(PHASES)) // self.chunk_size) + 2
        return chunks + self.max_catchup_rounds + len(PHASES) + 4

    # -- the phases --------------------------------------------------------

    def _prepare(self, state: MigrationState) -> None:
        router = self.router
        opened = router.handle(state.source).call(
            "migrate_begin", state.to_wire(), "out"
        )
        state.snapshot_seq = opened["snapshot_seq"]
        state.total = opened["count"]
        state.replayed_seq = max(state.replayed_seq, state.snapshot_seq)
        # The donor's mint counter rides state.extra into the recipient's
        # begin: with it burned there, the recipient can never re-mint an
        # id the donor spent on an offer that died before the copy.
        state.extra["mint_floor"] = opened.get("mint_floor", 0)
        router.handle(state.target).call("migrate_begin", state.to_wire(), "in")
        state.phase = "COPY"

    def _copy_chunk(self, state: MigrationState) -> None:
        router = self.router
        chunk = router.handle(state.source).call(
            "migrate_chunk_out", state.migration_id, state.cursor, self.chunk_size
        )
        if chunk["offers"]:
            absorbed = router.handle(state.target).call(
                "migrate_chunk_in", state.migration_id, chunk["offers"]
            )
            state.offers_copied += absorbed
            if absorbed:
                METRICS.inc(
                    "sharding.migration.offers_copied",
                    (router.trader_id, state.service_type),
                    amount=absorbed,
                )
        state.cursor = chunk["next_cursor"]
        if chunk["done"]:
            state.phase = "CATCH_UP"

    def _catch_up(self, state: MigrationState) -> None:
        replayed = self._replay_tail(state)
        state.catchup_rounds += 1
        if replayed == 0 or state.catchup_rounds >= self.max_catchup_rounds:
            # The tail ran dry — or won't under sustained load, in which
            # case FLIP's seal bounds it: after the seal no new delta for
            # the type can appear, so the final replay is finite.
            state.phase = "FLIP"

    def _flip(self, state: MigrationState, now: float) -> None:
        router = self.router
        router.handle(state.source).call("migrate_flip", state.migration_id)
        self._replay_tail(state)  # final: the seal froze the tail
        # Recipient-side anti-entropy at the cutover instant: any lease
        # that lapsed mid-migration is swept before the recipient serves
        # as owner — a migration must never resurrect one.  The moving
        # type is still shielded from the recipient's *own* sweeps, so
        # the sweep rides the replay channel, which is scoped to the
        # type and deliberately pierces the shield: the copy is final
        # now (the seal froze the tail), so expiring from it is safe.
        router.handle(state.target).call(
            "migrate_replay",
            state.migration_id,
            [{"op": "expire", "data": {"now": now}}],
        )
        state.phase = "DRAIN"
        router.flip_type(state)

    def _drain(self, state: MigrationState) -> None:
        router = self.router
        router.handle(state.source).call("migrate_done", state.migration_id)
        # The recipient closes its side too: the absorption shield lifts
        # and its own lease sweeps take the type over.
        router.handle(state.target).call("migrate_done", state.migration_id)
        router.close_migration(state)
        state.phase = "DONE"

    # -- plumbing ----------------------------------------------------------

    def _replay_tail(self, state: MigrationState) -> int:
        router = self.router
        tail = router.handle(state.source).call("deltas_since", state.replayed_seq)
        relevant = [
            delta for delta in tail if self._relevant(delta, state.service_type)
        ]
        if relevant:
            router.handle(state.target).call(
                "migrate_replay", state.migration_id, relevant
            )
            state.deltas_replayed += len(relevant)
            METRICS.inc(
                "sharding.migration.deltas_replayed",
                (router.trader_id, state.service_type),
                amount=len(relevant),
            )
        if tail:
            state.replayed_seq = max(state.replayed_seq, tail[-1]["seq"])
        return len(relevant)

    def _relevant(self, delta_wire: Dict[str, Any], service_type: str) -> bool:
        """Does this donor delta touch the moving type?  ``expire`` always
        might (the donor's sweep is global); type management replicates
        through the router broadcast, never through the migration."""
        op = delta_wire.get("op")
        data = delta_wire.get("data", {})
        if op == "export":
            return data["offer"]["service_type"] == service_type
        if op in ("withdraw", "modify", "renew"):
            marker = f"{self.router.offer_prefix}:{service_type}:"
            return str(data.get("offer_id", "")).startswith(marker)
        return op == "expire"

    def _checkpoint(self, state: MigrationState) -> None:
        self.checkpoints.save(state)
        METRICS.set_gauge(
            "sharding.migration.phase",
            PHASE_INDEX[state.phase],
            (self.router.trader_id, state.service_type),
        )

    def _ctx(self, state: MigrationState) -> CallContext:
        ctx = self._contexts.get(state.migration_id)
        if ctx is None:
            ctx = CallContext.background()
            self._contexts[state.migration_id] = ctx
        return ctx

    def _finish_trace(self, state: MigrationState) -> None:
        ctx = self._contexts.pop(state.migration_id, None)
        if ctx is not None:
            ctx.finish()

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        clock = getattr(self.router, "clock", None)
        return clock() if callable(clock) else 0.0

    # -- topology workflows ------------------------------------------------

    def expand(
        self,
        shard_id: str,
        primary: Any,
        replicas: Any = (),
        now: Optional[float] = None,
    ) -> List[MigrationState]:
        """Grow the fleet: add ``shard_id`` and migrate every type whose
        rendezvous placement moved onto it.  ``add_shard`` pins moved
        types to their old owners, so routing never misses an offer in
        the gap between the map change and each migration's FLIP."""
        moved = self.router.add_shard(shard_id, primary, replicas)
        return [
            self.run(self.begin(service_type, self.router.map.owner(service_type)), now)
            for service_type in sorted(moved)
        ]

    def drain(self, shard_id: str, now: Optional[float] = None) -> List[MigrationState]:
        """Empty ``shard_id`` ahead of removal: migrate every type it
        effectively owns to the owner the map-without-it would pick.
        After this, ``remove_shard(shard_id)`` passes the drain check."""
        router = self.router
        survivor_map = router.map.without_shard(shard_id)
        if not len(survivor_map):
            raise MigrationError("cannot drain the last shard")
        owned = sorted(
            service_type.name
            for service_type in router.types
            if router.effective_owner(service_type.name) == shard_id
        )
        return [
            self.run(
                self.begin(service_type, survivor_map.owner(service_type)), now
            )
            for service_type in owned
        ]
