"""Wire plane for sharding: the replication program and remote backends.

A shard *node* runs two programs on one server: the ordinary trader
program (100200) for the client-facing surface, and this replication
program for the delta stream, catch-up SYNC, promotion, and shard-map
distribution.  A router reaches such a node through
:class:`RemoteShardBackend`, which presents the same duck surface as an
in-process :class:`~repro.trader.sharding.shard.TraderShard`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.context import CallContext
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcProgram, RpcServer
from repro.trader.offers import ServiceOffer
from repro.trader.service_types import ServiceType
from repro.trader.sharding.shard import TraderShard
from repro.trader.trader import TRADER_PROGRAM, TraderClient

SHARDING_PROGRAM = 100900

_PROC_APPLY_DELTA = 1
_PROC_DELTAS_SINCE = 2
_PROC_PROMOTE = 3
_PROC_STATUS = 4
_PROC_SET_MAP = 5
_PROC_EXPIRE = 6
# Live resharding (see repro.trader.sharding.migration).  MIGRATE_CHUNK
# carries the three transfer shapes of one migration stream, told apart
# by the argument present: ``cursor`` reads a copy chunk off the donor,
# ``offers`` absorbs one into the recipient, ``deltas`` replays a
# catch-up tail.  MIGRATE_FLIP carries the cutover family via ``action``
# (``flip`` seals the donor, ``done`` drops the moved offers, ``abort``
# rolls both sides back).
_PROC_MIGRATE_BEGIN = 7
_PROC_MIGRATE_CHUNK = 8
_PROC_MIGRATE_FLIP = 9
_PROC_MIGRATE_STATUS = 10

_PROC_TRADER_IMPORT = 4  # the trader program's IMPORT procedure


class ShardReplicationService:
    """Expose a :class:`TraderShard`'s replication surface over RPC."""

    def __init__(self, server: RpcServer, shard: TraderShard, now=lambda: 0.0) -> None:
        self.shard = shard
        self._now = now
        program = RpcProgram(SHARDING_PROGRAM, 1, "sharding")
        program.register(_PROC_APPLY_DELTA, self._apply_delta, "apply_delta")
        program.register(_PROC_DELTAS_SINCE, self._deltas_since, "deltas_since")
        program.register(_PROC_PROMOTE, self._promote, "promote")
        program.register(_PROC_STATUS, self._status, "status")
        program.register(_PROC_SET_MAP, self._set_map, "set_map")
        program.register(_PROC_EXPIRE, self._expire, "expire")
        program.register(_PROC_MIGRATE_BEGIN, self._migrate_begin, "migrate_begin")
        program.register(_PROC_MIGRATE_CHUNK, self._migrate_chunk, "migrate_chunk")
        program.register(_PROC_MIGRATE_FLIP, self._migrate_flip, "migrate_flip")
        program.register(_PROC_MIGRATE_STATUS, self._migrate_status, "migrate_status")
        server.serve(program)
        self.address = server.address

    def _apply_delta(self, args) -> bool:
        return self.shard.apply_delta(args["delta"])

    def _deltas_since(self, args) -> List[Dict[str, Any]]:
        return self.shard.deltas_since(args["seq"])

    def _promote(self, args) -> int:
        return self.shard.promote(args.get("now", self._now()))

    def _status(self, args) -> Dict[str, Any]:
        return self.shard.status()

    def _set_map(self, args) -> bool:
        return self.shard.set_map(args["map"])

    def _expire(self, args) -> int:
        return self.shard.expire_offers(args.get("now", self._now()))

    def _migrate_begin(self, args) -> Dict[str, Any]:
        return self.shard.migrate_begin(args["migration"], args["side"])

    def _migrate_chunk(self, args) -> Any:
        migration_id = args["migration_id"]
        if "offers" in args:
            return self.shard.migrate_chunk_in(migration_id, args["offers"])
        if "deltas" in args:
            return self.shard.migrate_replay(migration_id, args["deltas"])
        return self.shard.migrate_chunk_out(
            migration_id, args["cursor"], args.get("limit", 256)
        )

    def _migrate_flip(self, args) -> Any:
        migration_id = args["migration_id"]
        action = args.get("action", "flip")
        if action == "done":
            return self.shard.migrate_done(migration_id)
        if action == "abort":
            return self.shard.migrate_abort(migration_id)
        return self.shard.migrate_flip(migration_id)

    def _migrate_status(self, args) -> Dict[str, Any]:
        return self.shard.migrate_status(args["migration_id"])


class ShardAdminClient:
    """Replication-plane stub for a remote shard."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self.address = address

    def apply_delta(self, delta_wire: Dict[str, Any]) -> bool:
        return self._call(_PROC_APPLY_DELTA, {"delta": delta_wire})

    def deltas_since(self, seq: int) -> List[Dict[str, Any]]:
        return self._call(_PROC_DELTAS_SINCE, {"seq": seq})

    def promote(self, now: Optional[float] = None) -> int:
        return self._call(_PROC_PROMOTE, {"now": now})

    def status(self) -> Dict[str, Any]:
        return self._call(_PROC_STATUS, {})

    def set_map(self, map_wire: Dict[str, Any]) -> bool:
        return self._call(_PROC_SET_MAP, {"map": map_wire})

    def expire(self, now: Optional[float] = None) -> int:
        return self._call(_PROC_EXPIRE, {"now": now})

    def migrate_begin(self, migration_wire: Dict[str, Any], side: str) -> Dict[str, Any]:
        return self._call(
            _PROC_MIGRATE_BEGIN, {"migration": migration_wire, "side": side}
        )

    def migrate_chunk_out(
        self, migration_id: str, cursor: int, limit: int
    ) -> Dict[str, Any]:
        return self._call(
            _PROC_MIGRATE_CHUNK,
            {"migration_id": migration_id, "cursor": cursor, "limit": limit},
        )

    def migrate_chunk_in(self, migration_id: str, offers) -> int:
        return self._call(
            _PROC_MIGRATE_CHUNK, {"migration_id": migration_id, "offers": offers}
        )

    def migrate_replay(self, migration_id: str, deltas) -> int:
        return self._call(
            _PROC_MIGRATE_CHUNK, {"migration_id": migration_id, "deltas": deltas}
        )

    def migrate_flip(self, migration_id: str) -> Dict[str, Any]:
        return self._call(
            _PROC_MIGRATE_FLIP, {"migration_id": migration_id, "action": "flip"}
        )

    def migrate_done(self, migration_id: str) -> int:
        return self._call(
            _PROC_MIGRATE_FLIP, {"migration_id": migration_id, "action": "done"}
        )

    def migrate_abort(self, migration_id: str) -> bool:
        return self._call(
            _PROC_MIGRATE_FLIP, {"migration_id": migration_id, "action": "abort"}
        )

    def migrate_status(self, migration_id: str) -> Dict[str, Any]:
        return self._call(_PROC_MIGRATE_STATUS, {"migration_id": migration_id})

    def _call(self, proc: int, args: Dict[str, Any]) -> Any:
        return self._client.call(self.address, SHARDING_PROGRAM, 1, proc, args)


class RemoteShardBackend:
    """A shard living on another node, duck-shaped like a TraderShard.

    Composes the trader stub (exports, imports, …) with the replication
    stub (promote, status, …) so a :class:`ShardHandle` can hold local
    and remote shards interchangeably.
    """

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self.address = address
        self._trader = TraderClient(client, address)
        self._admin = ShardAdminClient(client, address)

    # trader surface ---------------------------------------------------------

    def export(
        self,
        service_type: str,
        ref,
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        # ``now`` is the remote node's clock concern; the wire op carries
        # only the lease terms, exactly as any exporter client would.
        return self._trader.export(service_type, ref, properties, lifetime, lease_seconds)

    def withdraw(self, offer_id: str) -> bool:
        return self._trader.withdraw(offer_id)

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> bool:
        return self._trader.modify(offer_id, properties)

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        return self._trader.renew(offer_id)

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        if ctx is not None:
            return self._client.call(
                self.address, TRADER_PROGRAM, 1, _PROC_TRADER_IMPORT,
                request_wire, context=ctx,
            )
        return self._client.call(
            self.address, TRADER_PROGRAM, 1, _PROC_TRADER_IMPORT, request_wire
        )

    def list_offers(self) -> List[ServiceOffer]:
        return self._trader.list_offers()

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> bool:
        return self._trader.add_type(service_type)

    def remove_type(self, name: str) -> bool:
        return self._trader.remove_type(name)

    def mask_type(self, name: str) -> bool:
        return self._trader.mask_type(name)

    # replication surface ----------------------------------------------------

    def apply_delta(self, delta_wire: Dict[str, Any]) -> bool:
        return self._admin.apply_delta(delta_wire)

    def deltas_since(self, seq: int) -> List[Dict[str, Any]]:
        return self._admin.deltas_since(seq)

    def promote(self, now: Optional[float] = None) -> int:
        return self._admin.promote(now)

    def status(self) -> Dict[str, Any]:
        return self._admin.status()

    def set_map(self, map_wire: Dict[str, Any]) -> bool:
        return self._admin.set_map(map_wire)

    def expire_offers(self, now: Optional[float] = None) -> int:
        return self._admin.expire(now)

    # migration surface ------------------------------------------------------

    def migrate_begin(self, migration_wire: Dict[str, Any], side: str) -> Dict[str, Any]:
        return self._admin.migrate_begin(migration_wire, side)

    def migrate_chunk_out(
        self, migration_id: str, cursor: int, limit: int
    ) -> Dict[str, Any]:
        return self._admin.migrate_chunk_out(migration_id, cursor, limit)

    def migrate_chunk_in(self, migration_id: str, offers) -> int:
        return self._admin.migrate_chunk_in(migration_id, offers)

    def migrate_replay(self, migration_id: str, deltas) -> int:
        return self._admin.migrate_replay(migration_id, deltas)

    def migrate_flip(self, migration_id: str) -> Dict[str, Any]:
        return self._admin.migrate_flip(migration_id)

    def migrate_done(self, migration_id: str) -> int:
        return self._admin.migrate_done(migration_id)

    def migrate_abort(self, migration_id: str) -> bool:
        return self._admin.migrate_abort(migration_id)

    def migrate_status(self, migration_id: str) -> Dict[str, Any]:
        return self._admin.migrate_status(migration_id)
