"""Sharded, replicated trading: partition the offer space, survive crashes.

The offer space is partitioned by service-type name with rendezvous
hashing over a versioned :class:`ShardMap`; each partition is a
:class:`TraderShard` (a whole ``LocalTrader`` plus a replication role)
streaming sequence-numbered deltas to its replicas; a
:class:`ShardRouter` presents the full trader surface over the fleet and
fails over — promoting a replica that first expires any leases that
lapsed in the failover window — when a primary's breaker opens.
"""

from repro.trader.sharding.hashing import ShardMap, rendezvous_score
from repro.trader.sharding.migration import (
    FileCheckpoints,
    MemoryCheckpoints,
    MigrationCoordinator,
    MigrationError,
    MigrationState,
    PHASES,
)
from repro.trader.sharding.replication import (
    DeltaLog,
    MigrationSealed,
    ShardDelta,
    ShardingError,
    ShardNotDrained,
    ShardUnavailable,
    SyncGap,
)
from repro.trader.sharding.router import (
    SHARD_BREAKER,
    ShardHandle,
    ShardRouter,
    build_local_router,
)
from repro.trader.sharding.rpc import (
    SHARDING_PROGRAM,
    RemoteShardBackend,
    ShardAdminClient,
    ShardReplicationService,
)
from repro.trader.sharding.shard import ROLE_PRIMARY, ROLE_REPLICA, TraderShard

__all__ = [
    "DeltaLog",
    "FileCheckpoints",
    "MemoryCheckpoints",
    "MigrationCoordinator",
    "MigrationError",
    "MigrationSealed",
    "MigrationState",
    "PHASES",
    "RemoteShardBackend",
    "ShardNotDrained",
    "ROLE_PRIMARY",
    "ROLE_REPLICA",
    "SHARD_BREAKER",
    "SHARDING_PROGRAM",
    "ShardAdminClient",
    "ShardDelta",
    "ShardHandle",
    "ShardMap",
    "ShardReplicationService",
    "ShardRouter",
    "ShardUnavailable",
    "ShardingError",
    "SyncGap",
    "TraderShard",
    "build_local_router",
    "rendezvous_score",
]
