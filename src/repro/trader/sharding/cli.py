"""``python -m repro sharded-trader`` — a sharded trader walkthrough.

Builds an in-process sharded, replicated trader; spreads offers over the
shards; runs routed exports, fanned-out imports, and a forced primary
crash with breaker-driven replica promotion — printing the shard map,
placement, and replication status at each step.  The quickest way to see
the partitioned deployment shape without writing any code.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.naming.refs import ServiceRef
from repro.net.endpoints import Address
from repro.sidl.types import DOUBLE, InterfaceType, LONG, OperationType
from repro.trader.service_types import ServiceType
from repro.trader.sharding.router import build_local_router
from repro.trader.trader import ImportRequest


class _CrashedBackend:
    """Stands in for a crashed shard process: every call raises."""

    def __getattr__(self, name):
        def refuse(*args, **kwargs):
            raise ConnectionError("shard primary crashed")

        return refuse


def _service_type(name: str) -> ServiceType:
    return ServiceType(
        name,
        InterfaceType("I", [OperationType("Use", [], LONG)]),
        [("ChargePerDay", DOUBLE)],
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sharded-trader", description=__doc__
    )
    parser.add_argument("--shards", type=int, default=4, help="shard count (default 4)")
    parser.add_argument(
        "--replicas", type=int, default=1, help="replicas per shard (default 1)"
    )
    parser.add_argument(
        "--types", type=int, default=8, help="service types to spread (default 8)"
    )
    parser.add_argument(
        "--offers", type=int, default=5, help="offers per type (default 5)"
    )
    parser.add_argument(
        "--reshard",
        action="store_true",
        help="grow the fleet by one shard and live-migrate the moved types "
        "(stepping the migration state machine under live traffic)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    shard_ids = [f"s{index}" for index in range(max(1, args.shards))]
    router = build_local_router(
        shard_ids, replicas=max(0, args.replicas), router_id="demo", fanout_workers=1
    )
    print(f"shard map v{router.map.version}: {list(router.map.shard_ids)}")

    type_names: List[str] = [f"Service{index}" for index in range(max(1, args.types))]
    for name in type_names:
        router.add_type(_service_type(name))
    placement = {name: router.map.owner(name) for name in type_names}
    print("placement (rendezvous by type name):")
    for name, owner in placement.items():
        print(f"  {name:<12} -> {owner}")

    for name in type_names:
        for index in range(max(1, args.offers)):
            router.export(
                name,
                ServiceRef.create(f"{name}-{index}", Address("host", 1000 + index), 1),
                {"ChargePerDay": 10.0 + index},
                now=0.0,
                lease_seconds=60.0,
            )
    print(f"\nexported {len(router.offers.all())} offers across {len(shard_ids)} shards")

    request = ImportRequest(type_names[0], "ChargePerDay < 12", "min ChargePerDay")
    matches = router.import_(request, now=1.0)
    print(f"import {request.constraint!r}: {[offer.offer_id for offer in matches]}")

    if args.reshard:
        return _reshard_walkthrough(router, type_names, args)

    victim = placement[type_names[0]]
    print(f"\ncrashing primary of shard {victim!r} …")
    router.handle(victim).primary = _CrashedBackend()
    matches_after = router.import_(request, now=2.0)
    print(
        "after breaker-driven failover the same import still answers: "
        f"{[offer.offer_id for offer in matches_after]}"
    )
    identical = [o.offer_id for o in matches] == [o.offer_id for o in matches_after]
    print(f"result identical across failover: {identical}")
    print("\nshard status:")
    for shard_id, status in router.status()["shards"].items():
        print(f"  {shard_id}: breaker={status['breaker']} replicas={status['replicas']}")
    return 0 if identical else 1


def _reshard_walkthrough(router, type_names: List[str], args) -> int:
    """Add one shard and stream every moved type across, proving the
    dual-ownership window: imports and exports keep succeeding — with
    identical answers — at every step of every migration."""
    from repro.trader.sharding.migration import MigrationCoordinator
    from repro.trader.sharding.shard import TraderShard

    new_shard = f"s{max(1, args.shards)}"
    print(f"\nresharding: adding shard {new_shard!r} …")
    primary = TraderShard(
        f"{router.trader_id}/{new_shard}", offer_prefix=router.offer_prefix
    )
    moved = sorted(router.add_shard(new_shard, primary))
    print(f"shard map v{router.map.version}: {list(router.map.shard_ids)}")
    print(f"types whose placement moved: {moved or 'none'}")
    if not moved:
        print("rendezvous moved nothing this time; add more types and retry")
        return 0
    print(f"pinned to their old owners until migrated: {router.status()['pins']}")

    coordinator = MigrationCoordinator(router, chunk_size=2)
    failures = 0
    for name in moved:
        donor = router.effective_owner(name)
        target = router.map.owner(name)
        baseline = [
            offer.offer_id for offer in router.import_(ImportRequest(name, "", "first"))
        ]
        state = coordinator.begin(name, target)
        print(f"\nmigrating {name!r}: {donor} -> {target} ({state.migration_id})")
        while not state.finished:
            coordinator.step(state)
            live = [
                offer.offer_id
                for offer in router.import_(ImportRequest(name, "", "first"))
            ]
            ok = live == baseline
            failures += 0 if ok else 1
            print(
                f"  {state.phase:<8} copied={state.offers_copied}/{state.total} "
                f"replayed={state.deltas_replayed} "
                f"import {'unchanged' if ok else 'DIVERGED: ' + str(live)}"
            )
        print(
            f"  routed to {router.effective_owner(name)} "
            f"(map v{router.map.version}); donor now holds "
            f"{len([o for o in router.handle(donor).primary.list_offers() if o.service_type == name])} "
            f"offers of {name!r}"
        )
    print(f"\nreshard complete: {len(moved)} types moved, {failures} diverged imports")
    return 0 if failures == 0 else 1
