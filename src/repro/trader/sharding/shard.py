"""One shard of the partitioned trader: a LocalTrader plus a replication role.

A shard owns the offers of the service types rendezvous-placed on it and
replicates every mutation to its replicas as a sequence-numbered delta
stream.  Replicas apply deltas in order, mirror the log (so a promoted
replica can keep replicating onward), and run the *lease-aware
anti-entropy* step on catch-up and promotion: any lease that lapsed
while the replica was dark is expired before it serves a single import.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.context import CallContext
from repro.naming.refs import ServiceRef
from repro.telemetry.metrics import METRICS
from repro.trader.errors import DuplicateServiceType, OfferNotFound
from repro.trader.offers import ServiceOffer
from repro.trader.service_types import ServiceType
from repro.trader.sharding.replication import (
    DeltaLog,
    MigrationSealed,
    ShardDelta,
    ShardingError,
)
from repro.trader.trader import ImportRequest, LocalTrader
from repro.trader.type_manager import TypeManager

ROLE_PRIMARY = "primary"
ROLE_REPLICA = "replica"

#: A replica push target: called with each new delta's wire form.
DeltaSink = Callable[[Dict[str, Any]], None]


class TraderShard:
    """A partition of the offer space behind a :class:`ShardRouter`.

    ``offer_prefix`` is shared across every shard of one logical trader,
    so the ids a shard mints are exactly the ids a single trader would
    mint (per-type counters make them independent of placement).
    ``shard_id`` keys the shard's own metrics and replication identity.
    """

    def __init__(
        self,
        shard_id: str,
        offer_prefix: str = "offer",
        role: str = ROLE_PRIMARY,
        type_manager: Optional[TypeManager] = None,
        seed: int = 0,
        dynamic_evaluator=None,
        clock=None,
        range_index: bool = True,
        base_seq: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.role = role
        self.trader = LocalTrader(
            trader_id=shard_id,
            type_manager=type_manager,
            seed=seed,
            dynamic_evaluator=dynamic_evaluator,
            clock=clock,
            offer_prefix=offer_prefix,
            range_index=range_index,
        )
        # Duck compat with ``LocalTrader`` for service wrappers that
        # configure their trader's clock/fan-out plumbing.
        self.clock = clock
        self.fanout_loop = None
        self.log = DeltaLog(base_seq)
        #: Replica-side high-water mark: the last delta folded in (equals
        #: ``log.last_seq`` except transiently inside ``apply_delta``).
        self.applied_seq = base_seq
        self.map_version = 0
        self._sinks: Dict[str, DeltaSink] = {}
        #: Live-resharding state, keyed by migration id.  Every record
        #: mutation is logged as a delta, so a promoted replica holds the
        #: same records — a migration survives the donor's primary.
        self.migrations: Dict[str, Dict[str, Any]] = {}
        #: Types sealed at migration FLIP: writes raise
        #: :class:`MigrationSealed` so the router forwards them to the
        #: new owner instead of mutating a partition that gave the type up.
        self.sealed_types: set = set()

    @property
    def types(self) -> TypeManager:
        """Delegated so ``TraderService`` can wrap a shard as its trader
        (a shard node serves the ordinary trader program too)."""
        return self.trader.types

    @property
    def offers(self):
        return self.trader.offers

    @property
    def dynamic_evaluator(self):
        return self.trader.dynamic_evaluator

    @dynamic_evaluator.setter
    def dynamic_evaluator(self, evaluator) -> None:
        self.trader.dynamic_evaluator = evaluator

    # -- shard-map distribution ------------------------------------------------

    def set_map(self, map_wire: Dict[str, Any]) -> bool:
        """Install the router's shard map; stale versions are refused."""
        version = map_wire["version"]
        if version < self.map_version:
            return False
        self.map_version = version
        return True

    # -- primary mutating surface ----------------------------------------------

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        self._require_primary("export")
        self._require_unsealed(service_type, "export")
        offer_id = self.trader.export(
            service_type, ref, properties, now, lifetime, lease_seconds
        )
        offer = self.trader.offers.get(offer_id)
        self._log("export", {"offer": offer.to_wire()})
        return offer_id

    def withdraw(self, offer_id: str) -> ServiceOffer:
        self._require_primary("withdraw")
        self._require_unsealed(self._type_of_offer(offer_id), "withdraw")
        offer = self.trader.withdraw(offer_id)
        self._log("withdraw", {"offer_id": offer_id})
        return offer

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        self._require_primary("modify")
        self._require_unsealed(self._type_of_offer(offer_id), "modify")
        offer = self.trader.modify(offer_id, properties)
        # Replicate the *checked* properties, not the caller's raw dict.
        self._log(
            "modify", {"offer_id": offer_id, "properties": dict(offer.properties)}
        )
        return offer

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        self._require_primary("renew")
        self._require_unsealed(self._type_of_offer(offer_id), "renew")
        expires_at = self.trader.renew(offer_id, now)
        self._log("renew", {"offer_id": offer_id, "expires_at": expires_at})
        return expires_at

    def expire_offers(self, now: float) -> int:
        """Sweep lapsed leases; the sweep itself replicates as a delta.

        Types mid-absorption (an open ``in``-side migration) are
        shielded from the sweep: the donor is still authoritative for
        them and this shard's copy may lack renews that only arrive
        with the next replay batch — sweeping it here would lose the
        offer for good.  Donor-driven expiry still lands through the
        type-scoped ``migrate_expire`` replay, and the coordinator runs
        an unshielded type sweep at FLIP, when the copy is final.
        """
        removed = self._shielded_sweep(now)
        if removed and self.role == ROLE_PRIMARY:
            self._log("expire", {"now": now})
        return removed

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> None:
        self._require_primary("add_type")
        self.trader.add_type(service_type, now)
        self._log("add_type", {"type": service_type.to_wire(), "now": now})

    def remove_type(self, name: str) -> bool:
        self._require_primary("remove_type")
        removed = self.trader.remove_type(name)
        self._log("remove_type", {"name": name})
        return removed

    def mask_type(self, name: str) -> None:
        self._require_primary("mask_type")
        self.trader.mask_type(name)
        self._log("mask_type", {"name": name})

    # -- read surface (any role) -----------------------------------------------

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        return self.trader.import_wire(request_wire, now, ctx)

    def import_(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        return self.trader.import_(request, now, ctx)

    def list_offers(self) -> List[ServiceOffer]:
        return self.trader.offers.all()

    def status(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "role": self.role,
            "applied_seq": self.applied_seq,
            "last_seq": self.log.last_seq,
            "map_version": self.map_version,
            "offers": len(self.trader.offers),
            "replicas": sorted(self._sinks),
            "migrations": sorted(self.migrations),
            "sealed_types": sorted(self.sealed_types),
        }

    # -- replication: primary side ----------------------------------------------

    def attach_replica(self, name: str, sink: DeltaSink) -> None:
        self._sinks[name] = sink

    def detach_replica(self, name: str) -> None:
        self._sinks.pop(name, None)

    def deltas_since(self, seq: int) -> List[Dict[str, Any]]:
        """Catch-up batch for a replica at ``seq`` (the SYNC op)."""
        return [delta.to_wire() for delta in self.log.since(seq)]

    def _log(self, op: str, data: Dict[str, Any]) -> None:
        delta = self.log.append(op, data, self.map_version)
        self.applied_seq = delta.seq
        METRICS.set_gauge("sharding.replication_seq", delta.seq, (self.shard_id,))
        for name, sink in list(self._sinks.items()):
            try:
                sink(delta.to_wire())
            except Exception:  # noqa: BLE001 - a dark replica must not fail writes
                METRICS.inc("sharding.push_failed", (self.shard_id, name))

    def _require_primary(self, op: str) -> None:
        if self.role != ROLE_PRIMARY:
            raise ShardingError(f"{self.shard_id}: {op} refused, shard is a replica")

    def _require_unsealed(self, service_type: str, op: str) -> None:
        if service_type and service_type in self.sealed_types:
            raise MigrationSealed(
                f"{self.shard_id}: {op} for {service_type!r} refused — the type "
                "was sealed at migration FLIP; the new owner serves it"
            )

    def _type_of_offer(self, offer_id: str) -> str:
        """The service type an offer id names (``prefix:type:n``), or ``""``."""
        prefix = self.trader.offers.prefix + ":"
        if offer_id.startswith(prefix):
            service_type, _, suffix = offer_id[len(prefix) :].rpartition(":")
            if service_type and suffix.isdigit():
                return service_type
        return ""

    # -- live resharding: the shard side of the migration protocol ----------------
    #
    # Every state change below is logged as a delta, so a replica promoted
    # mid-migration inherits the records, the snapshot cursor, and the
    # seal — the coordinator resumes against it as if nothing happened.

    def migrate_begin(self, migration_wire: Dict[str, Any], side: str) -> Dict[str, Any]:
        """Open a migration on this shard (``side`` = ``out`` donor /
        ``in`` recipient).  Idempotent: re-beginning an open migration
        returns the originally recorded snapshot coordinates, so a resumed
        coordinator never re-snapshots a moving world."""
        self._require_primary("migrate_begin")
        migration_id = migration_wire["migration_id"]
        record = self.migrations.get(migration_id)
        if record is None:
            record = {
                "migration_id": migration_id,
                "service_type": migration_wire["service_type"],
                "side": side,
                "peer": migration_wire.get("target" if side == "out" else "source", ""),
                "snapshot_seq": self.applied_seq,
                "offer_ids": [],
                "sealed": False,
                "absorbed": 0,
                "mint_floor": 0,
            }
            if side == "out":
                offers = self.trader.offers.of_types([record["service_type"]])
                record["offer_ids"] = sorted(
                    (offer.offer_id for offer in offers),
                    key=lambda offer_id: int(offer_id.rpartition(":")[2]),
                )
                # The donor's mint counter travels with the migration:
                # ids spent on offers withdrawn *before* the copy appear
                # in no snapshot and no tail delta, so the counter is the
                # only way the recipient learns they are taken.
                record["mint_floor"] = self.trader.offers.minted(
                    record["service_type"]
                )
            else:
                record["mint_floor"] = int(
                    migration_wire.get("extra", {}).get("mint_floor", 0)
                )
            self._do_migrate_begin(record)
            self._log("migrate_begin", {"record": dict(record)})
        return {
            "migration_id": migration_id,
            "snapshot_seq": record["snapshot_seq"],
            "offer_ids": list(record["offer_ids"]),
            "count": len(record["offer_ids"]),
            "mint_floor": record.get("mint_floor", 0),
        }

    def migrate_chunk_out(
        self, migration_id: str, cursor: int, limit: int
    ) -> Dict[str, Any]:
        """One copy chunk off the donor's begin-time id snapshot.  Offers
        withdrawn or expired since begin are skipped — their deltas replay
        during CATCH_UP.  Pure read: nothing is logged."""
        self._require_primary("migrate_chunk_out")
        record = self._migration_record(migration_id, "out")
        offer_ids = record["offer_ids"]
        window = offer_ids[cursor : cursor + limit]
        offers = []
        for offer_id in window:
            try:
                offers.append(self.trader.offers.get(offer_id).to_wire())
            except OfferNotFound:
                continue  # withdrawn/expired after begin: replays as a delta
        next_cursor = cursor + len(window)
        return {
            "offers": offers,
            "next_cursor": next_cursor,
            "done": next_cursor >= len(offer_ids),
        }

    def migrate_chunk_in(
        self, migration_id: str, offers_wire: List[Dict[str, Any]]
    ) -> int:
        """Absorb one copied chunk on the recipient; returns how many
        offers were new.  Idempotent: a re-sent chunk absorbs nothing and
        logs nothing, so crash-resume never duplicates an offer or a
        delta.  Absorbed ids burn the per-type counters (``_note_minted``
        inside ``OfferStore.add``) — the recipient can never re-mint."""
        self._require_primary("migrate_chunk_in")
        record = self._migration_record(migration_id, "in")
        fresh = []
        for wire in offers_wire:
            if not self._has_offer(wire["offer_id"]):
                fresh.append(wire)
        if fresh:
            self._do_migrate_in(record, fresh)
            self._log("migrate_in", {"migration_id": migration_id, "offers": fresh})
        return len(fresh)

    def migrate_replay(
        self, migration_id: str, deltas_wire: List[Dict[str, Any]]
    ) -> int:
        """Replay a filtered donor delta tail onto the recipient, in order.

        Each donor delta is translated to a local mutation *and* re-logged
        as this primary's own delta, so the recipient's replicas converge
        too.  Every translation is idempotent (absolute lease times,
        tolerated-missing offers), so a resumed coordinator may replay a
        batch twice without harm — and a renew replayed after the lease
        already lapsed sets the same absolute expiry, never extends it.
        """
        self._require_primary("migrate_replay")
        record = self._migration_record(migration_id, "in")
        applied = 0
        for delta_wire in deltas_wire:
            op, data = delta_wire["op"], delta_wire.get("data", {})
            if op == "export":
                wire = data["offer"]
                if not self._has_offer(wire["offer_id"]):
                    self._do_migrate_in(record, [wire])
                    self._log(
                        "migrate_in", {"migration_id": migration_id, "offers": [wire]}
                    )
            elif op == "withdraw":
                if self._has_offer(data["offer_id"]):
                    self.trader.offers.remove(data["offer_id"])
                    self._log("withdraw", {"offer_id": data["offer_id"]})
            elif op == "modify":
                if self._has_offer(data["offer_id"]):
                    self.trader.offers.replace_properties(
                        data["offer_id"], data["properties"]
                    )
                    self._log("modify", dict(data))
            elif op == "renew":
                if self._has_offer(data["offer_id"]):
                    self.trader.offers.get(data["offer_id"]).expires_at = data[
                        "expires_at"
                    ]
                    self._log("renew", dict(data))
            elif op == "expire":
                # The donor's sweep was global; here it is scoped to the
                # moving type so the recipient's own offers keep their
                # revive-before-sweep grace untouched.
                evicted = self._sweep_type(record["service_type"], data["now"])
                if evicted:
                    self._log(
                        "migrate_expire",
                        {"service_type": record["service_type"], "now": data["now"]},
                    )
            else:
                continue  # type management broadcasts router-side; migrate_* is local
            applied += 1
        return applied

    def migrate_flip(self, migration_id: str) -> Dict[str, Any]:
        """Seal the moving type on the donor: after this, no new delta for
        it can ever appear, so the tail the coordinator reads next is
        final.  Idempotent — a resumed FLIP re-reads the (unchanged) tail.
        Returns the donor's log high-water mark."""
        self._require_primary("migrate_flip")
        record = self._migration_record(migration_id, "out")
        if not record["sealed"]:
            self._do_migrate_flip(record)
            self._log("migrate_flip", {"migration_id": migration_id})
        return {"final_seq": self.applied_seq}

    def migrate_done(self, migration_id: str) -> int:
        """Close the record on either end.  On the donor (``out``) the
        moved type's offers are dropped (they live on the recipient now —
        rehoming, not expiry) and the seal stays: a straggler write must
        keep being forwarded, never absorbed.  On the recipient (``in``)
        the offers stay, the absorption shield lifts, and normal lease
        sweeps take over."""
        self._require_primary("migrate_done")
        record = self.migrations.get(migration_id)
        if record is None:
            return 0  # already completed (crash between done and checkpoint)
        service_type = record["service_type"]
        side = record["side"]
        dropped = self._do_migrate_done(migration_id, service_type, side)
        self._log(
            "migrate_done",
            {
                "migration_id": migration_id,
                "service_type": service_type,
                "side": side,
            },
        )
        return dropped

    def migrate_abort(self, migration_id: str) -> bool:
        """Roll a not-yet-flipped migration back: the donor unseals and
        keeps serving; the recipient drops every copied offer (ownership
        is exclusive, so all of the type's offers there are copies)."""
        self._require_primary("migrate_abort")
        record = self.migrations.get(migration_id)
        if record is None:
            return False
        self._do_migrate_abort(record)
        self._log(
            "migrate_abort",
            {
                "migration_id": migration_id,
                "service_type": record["service_type"],
                "side": record["side"],
            },
        )
        return True

    def migrate_status(self, migration_id: str) -> Dict[str, Any]:
        record = self.migrations.get(migration_id)
        return dict(record) if record is not None else {}

    # The ``_do_*`` helpers mutate without logging: the primary methods
    # above log after calling them, and ``_apply`` calls them directly so
    # replicas fold the same mutations in from the delta stream.

    def _do_migrate_begin(self, record: Dict[str, Any]) -> None:
        self.migrations[record["migration_id"]] = dict(record)
        if record["side"] == "in":
            # The type may be coming *back* to a shard that once gave it
            # up — receiving it again lifts the old seal.
            self.sealed_types.discard(record["service_type"])
            # Burn the donor's mint counter: runs through ``_apply`` too,
            # so a promoted replica inherits the floor from the delta log.
            self.trader.offers.burn_to(
                record["service_type"], int(record.get("mint_floor", 0))
            )

    def _do_migrate_in(
        self, record: Dict[str, Any], offers_wire: List[Dict[str, Any]]
    ) -> None:
        for wire in offers_wire:
            self.trader.offers.add(ServiceOffer.from_wire(wire))
        record["absorbed"] = record.get("absorbed", 0) + len(offers_wire)

    def _do_migrate_flip(self, record: Dict[str, Any]) -> None:
        record["sealed"] = True
        self.sealed_types.add(record["service_type"])

    def _do_migrate_done(
        self, migration_id: str, service_type: str, side: str = "out"
    ) -> int:
        dropped = 0
        if side == "out":
            dropped = self._drop_type_offers(service_type)
            self.sealed_types.add(service_type)
        self.migrations.pop(migration_id, None)
        return dropped

    def _do_migrate_abort(self, record: Dict[str, Any]) -> None:
        if record["side"] == "in":
            self._drop_type_offers(record["service_type"])
        else:
            self.sealed_types.discard(record["service_type"])
        self.migrations.pop(record["migration_id"], None)

    def _migration_record(self, migration_id: str, side: str) -> Dict[str, Any]:
        record = self.migrations.get(migration_id)
        if record is None or record["side"] != side:
            raise ShardingError(
                f"{self.shard_id}: no open {side!r}-side migration {migration_id!r}"
            )
        return record

    def _has_offer(self, offer_id: str) -> bool:
        try:
            self.trader.offers.get(offer_id)
        except OfferNotFound:
            return False
        return True

    def _absorbing_types(self) -> set:
        """Types with an open ``in``-side migration: shielded from this
        shard's own lease sweeps until the record closes."""
        return {
            record["service_type"]
            for record in self.migrations.values()
            if record.get("side") == "in" and record.get("service_type")
        }

    def _shielded_sweep(self, now: float) -> int:
        shielded = self._absorbing_types()
        if not shielded:
            return self.trader.expire_offers(now)
        doomed = [
            offer.offer_id
            for offer in self.trader.offers.all()
            if offer.service_type not in shielded and offer.expired(now)
        ]
        for offer_id in doomed:
            self.trader.offers.remove(offer_id)
        if doomed:
            METRICS.inc(
                "trader.offers.expired",
                (self.trader.trader_id, "swept"),
                amount=len(doomed),
            )
        return len(doomed)

    def _sweep_type(self, service_type: str, now: float) -> int:
        expired = [
            offer.offer_id
            for offer in self.trader.offers.of_types([service_type])
            if offer.expired(now)
        ]
        for offer_id in expired:
            self.trader.offers.remove(offer_id)
        return len(expired)

    def _drop_type_offers(self, service_type: str) -> int:
        moved = [
            offer.offer_id for offer in self.trader.offers.of_types([service_type])
        ]
        for offer_id in moved:
            self.trader.offers.remove(offer_id)
        return len(moved)

    # -- replication: replica side -----------------------------------------------

    def apply_delta(self, delta_wire: Dict[str, Any]) -> bool:
        """Fold one pushed delta in; False = out of order, caller should SYNC.

        Duplicates (at or below ``applied_seq``) are acknowledged without
        re-applying, so a primary may safely re-push after a timeout.
        """
        delta = ShardDelta.from_wire(delta_wire)
        if delta.seq <= self.applied_seq:
            return True
        if delta.seq != self.applied_seq + 1:
            METRICS.inc("sharding.apply_gap", (self.shard_id,))
            return False
        self._apply(delta)
        self.log.record(delta)
        self.applied_seq = delta.seq
        if delta.map_version > self.map_version:
            self.map_version = delta.map_version
        METRICS.set_gauge("sharding.replication_seq", delta.seq, (self.shard_id,))
        return True

    def sync_from(self, fetch: Callable[[int], List[Dict[str, Any]]], now: float) -> int:
        """Pull-and-apply everything after ``applied_seq``, then run the
        lease-aware anti-entropy step: leases that lapsed while this
        replica was dark are expired before it can serve them."""
        deltas = fetch(self.applied_seq)
        for delta_wire in deltas:
            if not self.apply_delta(delta_wire):
                raise ShardingError(
                    f"{self.shard_id}: non-contiguous sync batch at "
                    f"{delta_wire.get('seq')}"
                )
        METRICS.inc("sharding.syncs", (self.shard_id,))
        self._shielded_sweep(now)
        return len(deltas)

    def promote(self, now: float) -> int:
        """Replica → primary.  Expires every lease that lapsed before the
        promotion instant — the write path this shard now serves must
        never hand out an offer whose exporter already went dark —
        and replicates that sweep onward.  Returns the evicted count."""
        self.role = ROLE_PRIMARY
        METRICS.inc("sharding.promotions", (self.shard_id,))
        return self.expire_offers(now)

    def _apply(self, delta: ShardDelta) -> None:
        op, data = delta.op, delta.data
        trader = self.trader
        if op == "export":
            trader.offers.add(ServiceOffer.from_wire(data["offer"]))
            trader.exports_accepted += 1
        elif op == "withdraw":
            try:
                trader.offers.remove(data["offer_id"])
            except OfferNotFound:
                pass  # lost a race with an expire delta: already gone
        elif op == "modify":
            trader.offers.replace_properties(data["offer_id"], data["properties"])
        elif op == "renew":
            try:
                trader.offers.get(data["offer_id"]).expires_at = data["expires_at"]
            except OfferNotFound:
                pass
        elif op == "expire":
            self._shielded_sweep(data["now"])
        elif op == "add_type":
            try:
                trader.types.add(
                    ServiceType.from_wire(data["type"]), data.get("now", 0.0)
                )
            except DuplicateServiceType:
                pass  # seeded out of band (shared snapshot): same definition
        elif op == "remove_type":
            trader.types.remove(data["name"])
        elif op == "mask_type":
            trader.types.mask(data["name"])
        elif op == "migrate_begin":
            self._do_migrate_begin(data["record"])
        elif op == "migrate_in":
            record = self.migrations.get(data["migration_id"])
            if record is None:  # tolerate a tail replayed past its done
                record = {"migration_id": data["migration_id"], "absorbed": 0}
            self._do_migrate_in(record, data["offers"])
        elif op == "migrate_expire":
            self._sweep_type(data["service_type"], data["now"])
        elif op == "migrate_flip":
            record = self.migrations.get(data["migration_id"])
            if record is not None:
                self._do_migrate_flip(record)
        elif op == "migrate_done":
            self._do_migrate_done(
                data["migration_id"], data["service_type"], data.get("side", "out")
            )
        elif op == "migrate_abort":
            record = self.migrations.get(data["migration_id"])
            if record is not None:
                self._do_migrate_abort(record)
        else:
            raise ShardingError(f"unknown delta op {op!r}")
