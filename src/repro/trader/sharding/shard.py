"""One shard of the partitioned trader: a LocalTrader plus a replication role.

A shard owns the offers of the service types rendezvous-placed on it and
replicates every mutation to its replicas as a sequence-numbered delta
stream.  Replicas apply deltas in order, mirror the log (so a promoted
replica can keep replicating onward), and run the *lease-aware
anti-entropy* step on catch-up and promotion: any lease that lapsed
while the replica was dark is expired before it serves a single import.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from repro.context import CallContext
from repro.naming.refs import ServiceRef
from repro.telemetry.metrics import METRICS
from repro.trader.errors import DuplicateServiceType, OfferNotFound
from repro.trader.offers import ServiceOffer
from repro.trader.service_types import ServiceType
from repro.trader.sharding.replication import DeltaLog, ShardDelta, ShardingError
from repro.trader.trader import ImportRequest, LocalTrader
from repro.trader.type_manager import TypeManager

ROLE_PRIMARY = "primary"
ROLE_REPLICA = "replica"

#: A replica push target: called with each new delta's wire form.
DeltaSink = Callable[[Dict[str, Any]], None]


class TraderShard:
    """A partition of the offer space behind a :class:`ShardRouter`.

    ``offer_prefix`` is shared across every shard of one logical trader,
    so the ids a shard mints are exactly the ids a single trader would
    mint (per-type counters make them independent of placement).
    ``shard_id`` keys the shard's own metrics and replication identity.
    """

    def __init__(
        self,
        shard_id: str,
        offer_prefix: str = "offer",
        role: str = ROLE_PRIMARY,
        type_manager: Optional[TypeManager] = None,
        seed: int = 0,
        dynamic_evaluator=None,
        clock=None,
        range_index: bool = True,
        base_seq: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.role = role
        self.trader = LocalTrader(
            trader_id=shard_id,
            type_manager=type_manager,
            seed=seed,
            dynamic_evaluator=dynamic_evaluator,
            clock=clock,
            offer_prefix=offer_prefix,
            range_index=range_index,
        )
        # Duck compat with ``LocalTrader`` for service wrappers that
        # configure their trader's clock/fan-out plumbing.
        self.clock = clock
        self.fanout_loop = None
        self.log = DeltaLog(base_seq)
        #: Replica-side high-water mark: the last delta folded in (equals
        #: ``log.last_seq`` except transiently inside ``apply_delta``).
        self.applied_seq = base_seq
        self.map_version = 0
        self._sinks: Dict[str, DeltaSink] = {}

    @property
    def types(self) -> TypeManager:
        """Delegated so ``TraderService`` can wrap a shard as its trader
        (a shard node serves the ordinary trader program too)."""
        return self.trader.types

    @property
    def offers(self):
        return self.trader.offers

    @property
    def dynamic_evaluator(self):
        return self.trader.dynamic_evaluator

    @dynamic_evaluator.setter
    def dynamic_evaluator(self, evaluator) -> None:
        self.trader.dynamic_evaluator = evaluator

    # -- shard-map distribution ------------------------------------------------

    def set_map(self, map_wire: Dict[str, Any]) -> bool:
        """Install the router's shard map; stale versions are refused."""
        version = map_wire["version"]
        if version < self.map_version:
            return False
        self.map_version = version
        return True

    # -- primary mutating surface ----------------------------------------------

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        self._require_primary("export")
        offer_id = self.trader.export(
            service_type, ref, properties, now, lifetime, lease_seconds
        )
        offer = self.trader.offers.get(offer_id)
        self._log("export", {"offer": offer.to_wire()})
        return offer_id

    def withdraw(self, offer_id: str) -> ServiceOffer:
        self._require_primary("withdraw")
        offer = self.trader.withdraw(offer_id)
        self._log("withdraw", {"offer_id": offer_id})
        return offer

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        self._require_primary("modify")
        offer = self.trader.modify(offer_id, properties)
        # Replicate the *checked* properties, not the caller's raw dict.
        self._log(
            "modify", {"offer_id": offer_id, "properties": dict(offer.properties)}
        )
        return offer

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        self._require_primary("renew")
        expires_at = self.trader.renew(offer_id, now)
        self._log("renew", {"offer_id": offer_id, "expires_at": expires_at})
        return expires_at

    def expire_offers(self, now: float) -> int:
        """Sweep lapsed leases; the sweep itself replicates as a delta."""
        removed = self.trader.expire_offers(now)
        if removed and self.role == ROLE_PRIMARY:
            self._log("expire", {"now": now})
        return removed

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> None:
        self._require_primary("add_type")
        self.trader.add_type(service_type, now)
        self._log("add_type", {"type": service_type.to_wire(), "now": now})

    def remove_type(self, name: str) -> bool:
        self._require_primary("remove_type")
        removed = self.trader.remove_type(name)
        self._log("remove_type", {"name": name})
        return removed

    def mask_type(self, name: str) -> None:
        self._require_primary("mask_type")
        self.trader.mask_type(name)
        self._log("mask_type", {"name": name})

    # -- read surface (any role) -----------------------------------------------

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        return self.trader.import_wire(request_wire, now, ctx)

    def import_(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        return self.trader.import_(request, now, ctx)

    def list_offers(self) -> List[ServiceOffer]:
        return self.trader.offers.all()

    def status(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "role": self.role,
            "applied_seq": self.applied_seq,
            "last_seq": self.log.last_seq,
            "map_version": self.map_version,
            "offers": len(self.trader.offers),
            "replicas": sorted(self._sinks),
        }

    # -- replication: primary side ----------------------------------------------

    def attach_replica(self, name: str, sink: DeltaSink) -> None:
        self._sinks[name] = sink

    def detach_replica(self, name: str) -> None:
        self._sinks.pop(name, None)

    def deltas_since(self, seq: int) -> List[Dict[str, Any]]:
        """Catch-up batch for a replica at ``seq`` (the SYNC op)."""
        return [delta.to_wire() for delta in self.log.since(seq)]

    def _log(self, op: str, data: Dict[str, Any]) -> None:
        delta = self.log.append(op, data, self.map_version)
        self.applied_seq = delta.seq
        METRICS.set_gauge("sharding.replication_seq", delta.seq, (self.shard_id,))
        for name, sink in list(self._sinks.items()):
            try:
                sink(delta.to_wire())
            except Exception:  # noqa: BLE001 - a dark replica must not fail writes
                METRICS.inc("sharding.push_failed", (self.shard_id, name))

    def _require_primary(self, op: str) -> None:
        if self.role != ROLE_PRIMARY:
            raise ShardingError(f"{self.shard_id}: {op} refused, shard is a replica")

    # -- replication: replica side -----------------------------------------------

    def apply_delta(self, delta_wire: Dict[str, Any]) -> bool:
        """Fold one pushed delta in; False = out of order, caller should SYNC.

        Duplicates (at or below ``applied_seq``) are acknowledged without
        re-applying, so a primary may safely re-push after a timeout.
        """
        delta = ShardDelta.from_wire(delta_wire)
        if delta.seq <= self.applied_seq:
            return True
        if delta.seq != self.applied_seq + 1:
            METRICS.inc("sharding.apply_gap", (self.shard_id,))
            return False
        self._apply(delta)
        self.log.record(delta)
        self.applied_seq = delta.seq
        if delta.map_version > self.map_version:
            self.map_version = delta.map_version
        METRICS.set_gauge("sharding.replication_seq", delta.seq, (self.shard_id,))
        return True

    def sync_from(self, fetch: Callable[[int], List[Dict[str, Any]]], now: float) -> int:
        """Pull-and-apply everything after ``applied_seq``, then run the
        lease-aware anti-entropy step: leases that lapsed while this
        replica was dark are expired before it can serve them."""
        deltas = fetch(self.applied_seq)
        for delta_wire in deltas:
            if not self.apply_delta(delta_wire):
                raise ShardingError(
                    f"{self.shard_id}: non-contiguous sync batch at "
                    f"{delta_wire.get('seq')}"
                )
        METRICS.inc("sharding.syncs", (self.shard_id,))
        self.trader.expire_offers(now)
        return len(deltas)

    def promote(self, now: float) -> int:
        """Replica → primary.  Expires every lease that lapsed before the
        promotion instant — the write path this shard now serves must
        never hand out an offer whose exporter already went dark —
        and replicates that sweep onward.  Returns the evicted count."""
        self.role = ROLE_PRIMARY
        METRICS.inc("sharding.promotions", (self.shard_id,))
        return self.expire_offers(now)

    def _apply(self, delta: ShardDelta) -> None:
        op, data = delta.op, delta.data
        trader = self.trader
        if op == "export":
            trader.offers.add(ServiceOffer.from_wire(data["offer"]))
            trader.exports_accepted += 1
        elif op == "withdraw":
            try:
                trader.offers.remove(data["offer_id"])
            except OfferNotFound:
                pass  # lost a race with an expire delta: already gone
        elif op == "modify":
            trader.offers.replace_properties(data["offer_id"], data["properties"])
        elif op == "renew":
            try:
                trader.offers.get(data["offer_id"]).expires_at = data["expires_at"]
            except OfferNotFound:
                pass
        elif op == "expire":
            trader.expire_offers(data["now"])
        elif op == "add_type":
            try:
                trader.types.add(
                    ServiceType.from_wire(data["type"]), data.get("now", 0.0)
                )
            except DuplicateServiceType:
                pass  # seeded out of band (shared snapshot): same definition
        elif op == "remove_type":
            trader.types.remove(data["name"])
        elif op == "mask_type":
            trader.types.mask(data["name"])
        else:
            raise ShardingError(f"unknown delta op {op!r}")
