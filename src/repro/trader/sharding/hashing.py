"""Rendezvous placement: which shard owns a service-type name.

Highest-random-weight (HRW) hashing gives every ``(shard, key)`` pair a
pseudo-random score and assigns the key to the highest-scoring shard.
Unlike modulo placement, adding or removing one shard only moves the
keys whose winning shard changed — about ``1/N`` of them — and unlike
consistent-hash rings it needs no virtual-node bookkeeping to balance.

Scores come from a keyed blake2b digest, **never** from Python's
built-in ``hash()``: that one is salted per process, and two router
processes that disagree on placement would silently split the offer
space.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, List, Tuple


def rendezvous_score(shard_id: str, key: str) -> int:
    """The HRW weight of ``key`` on ``shard_id`` — stable across processes."""
    digest = hashlib.blake2b(
        f"{shard_id}\x00{key}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardMap:
    """A versioned set of shard ids with deterministic key placement.

    The map is immutable; adding or removing a shard yields a *new* map
    with the version bumped.  Routers stamp the version on everything
    they send so a shard holding a stale map can detect the skew (the
    shard-map version header of the replication protocol).
    """

    def __init__(self, shard_ids: Iterable[str], version: int = 1) -> None:
        ordered = list(dict.fromkeys(shard_ids))
        self.shard_ids: Tuple[str, ...] = tuple(ordered)
        self.version = version

    def owner(self, key: str) -> str:
        """The shard that owns ``key``; ties break on shard id."""
        if not self.shard_ids:
            raise ValueError("shard map is empty")
        return max(
            self.shard_ids,
            key=lambda shard_id: (rendezvous_score(shard_id, key), shard_id),
        )

    def owners(self, keys: Iterable[str]) -> List[str]:
        """Owning shards for ``keys``, deduplicated, in first-use order."""
        return list(dict.fromkeys(self.owner(key) for key in keys))

    def with_shard(self, shard_id: str) -> "ShardMap":
        if shard_id in self.shard_ids:
            return self
        return ShardMap(self.shard_ids + (shard_id,), self.version + 1)

    def without_shard(self, shard_id: str) -> "ShardMap":
        if shard_id not in self.shard_ids:
            return self
        remaining = tuple(s for s in self.shard_ids if s != shard_id)
        return ShardMap(remaining, self.version + 1)

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self.shard_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardMap v{self.version} {list(self.shard_ids)}>"

    def to_wire(self) -> Dict[str, Any]:
        return {"version": self.version, "shard_ids": list(self.shard_ids)}

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ShardMap":
        return cls(data["shard_ids"], data["version"])
