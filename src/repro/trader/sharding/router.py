"""The shard router: the full trader surface over a partitioned offer space.

The router implements the same computational and management interface as
:class:`~repro.trader.trader.LocalTrader` — ``TraderService`` can wrap
either without knowing which it got.  EXPORT/WITHDRAW/MODIFY/RENEW route
to the one shard that owns the offer's service type (rendezvous placement
over the versioned :class:`ShardMap`); IMPORT fans out to the owner plus
every shard covering a subtype-widened query, over the same
deadline-ledger engine federation uses; management ops broadcast.

Each shard is a :class:`ShardHandle`: a primary backend, an ordered list
of replica backends, and a circuit breaker around the primary.  When the
breaker opens, the handle promotes the first replica — which expires any
leases that lapsed in the failover window before serving — and retries
the failed call there, so a primary crash costs availability only for
the instant of detection.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.context import CallContext, Clock, current_context
from repro.naming.refs import ServiceRef
from repro.rpc.resilience import STATE_OPEN, BreakerPolicy, CircuitBreaker
from repro.telemetry.metrics import METRICS
from repro.trader.errors import OfferNotFound, TraderError
from repro.trader.federation import DEFAULT_FANOUT_WORKERS, TraderLink, fan_out
from repro.trader.offers import ServiceOffer
from repro.trader.policies import parse_preference
from repro.trader.service_types import ServiceType
from repro.trader.sharding.hashing import ShardMap
from repro.trader.sharding.replication import ShardUnavailable
from repro.trader.sharding.shard import TraderShard
from repro.trader.trader import ImportRequest
from repro.trader.type_manager import TypeManager

#: Breaker policy for shard primaries: one hard failure opens the
#: circuit, because unlike a federation peer a shard has a warm replica
#: standing by — failing over immediately beats retrying a corpse.
SHARD_BREAKER = BreakerPolicy(failure_threshold=1, probe_interval=30.0)


class ShardHandle:
    """One shard's primary + replicas behind a circuit breaker."""

    def __init__(
        self,
        shard_id: str,
        primary: Any,
        replicas: Iterable[Any] = (),
        clock: Optional[Clock] = None,
        policy: BreakerPolicy = SHARD_BREAKER,
        router_id: str = "router",
    ) -> None:
        self.shard_id = shard_id
        self.primary = primary
        self.replicas: List[Any] = list(replicas)
        self._clock = clock or (lambda: 0.0)
        self._policy = policy
        self._router_id = router_id
        self.breaker = self._new_breaker()

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            f"{self._router_id}/{self.shard_id}", self._policy, self._clock
        )

    def call(self, op: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``op`` on the primary, failing over when its breaker opens.

        Application errors (:class:`TraderError` — unknown type, missing
        offer…) are *successful* calls of the backend and propagate
        untouched; only infrastructure failures trip the breaker.
        """
        if self.breaker.allow():
            try:
                result = getattr(self.primary, op)(*args, **kwargs)
            except TraderError:
                self.breaker.record_success()
                raise
            except Exception as failure:  # noqa: BLE001 - backend is down
                self.breaker.record_failure()
                if self.breaker.state != STATE_OPEN:
                    raise  # transient; breaker still closed, let caller retry
                return self._failover(op, args, kwargs, failure)
            else:
                self.breaker.record_success()
                return result
        return self._failover(op, args, kwargs, None)

    def _failover(self, op, args, kwargs, failure: Optional[Exception]) -> Any:
        if not self.replicas:
            raise ShardUnavailable(
                f"shard {self.shard_id}: primary down, no replica to promote"
            ) from failure
        promoted = self.replicas.pop(0)
        now = self._clock()
        promoted.promote(now)
        self.primary = promoted
        self.breaker = self._new_breaker()
        METRICS.inc("sharding.failovers", (self._router_id, self.shard_id))
        return self.call(op, *args, **kwargs)

    def status(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "breaker": self.breaker.state_name,
            "replicas": len(self.replicas),
        }


class _RouterOffers:
    """Read-only aggregate of every shard's offers (duck-typing the
    corner of ``OfferStore`` that service wrappers and tools consume)."""

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def all(self) -> List[ServiceOffer]:
        offers: List[ServiceOffer] = []
        for shard_id in self._router.map.shard_ids:
            offers.extend(self._router.handle(shard_id).call("list_offers"))
        return offers

    def get(self, offer_id: str) -> ServiceOffer:
        for offer in self.all():
            if offer.offer_id == offer_id:
                return offer
        raise OfferNotFound(f"no offer {offer_id!r}")

    def __len__(self) -> int:
        return len(self.all())


class ShardRouter:
    """Route the trader surface over rendezvous-placed shards."""

    def __init__(
        self,
        router_id: str = "router",
        offer_prefix: Optional[str] = None,
        seed: int = 0,
        clock: Optional[Clock] = None,
        fanout_workers: int = DEFAULT_FANOUT_WORKERS,
        breaker_policy: BreakerPolicy = SHARD_BREAKER,
    ) -> None:
        self.trader_id = router_id
        self.offer_prefix = offer_prefix or router_id
        self.types = TypeManager()
        self.rng = random.Random(seed)
        self.map = ShardMap((), version=0)
        self.clock = clock
        self.fanout_workers = fanout_workers
        self.fanout_loop = None  # duck compat with LocalTrader (sim stacks)
        self.links: Dict[str, TraderLink] = {}  # routers do not federate (yet)
        self.dynamic_evaluator = None
        self._breaker_policy = breaker_policy
        self._handles: Dict[str, ShardHandle] = {}
        self.offers = _RouterOffers(self)
        self.exports_accepted = 0
        self.imports_served = 0

    # -- topology ---------------------------------------------------------------

    def add_shard(self, shard_id: str, primary: Any, replicas: Iterable[Any] = ()) -> None:
        """Register a shard backend and re-version the map.

        Backends are anything exposing the shard surface —
        :class:`TraderShard` in-process, or the RPC backend from
        :mod:`repro.trader.sharding.rpc` for a shard living elsewhere.
        """
        self._handles[shard_id] = ShardHandle(
            shard_id,
            primary,
            replicas,
            clock=self.clock,
            policy=self._breaker_policy,
            router_id=self.trader_id,
        )
        self.map = self.map.with_shard(shard_id)
        self._push_map()

    def remove_shard(self, shard_id: str) -> None:
        self._handles.pop(shard_id, None)
        self.map = self.map.without_shard(shard_id)
        self._push_map()

    def handle(self, shard_id: str) -> ShardHandle:
        return self._handles[shard_id]

    def _push_map(self) -> None:
        METRICS.set_gauge("sharding.map_version", self.map.version, (self.trader_id,))
        map_wire = self.map.to_wire()
        for handle in self._handles.values():
            try:
                handle.call("set_map", map_wire)
            except Exception:  # noqa: BLE001 - a dark shard learns the map on sync
                METRICS.inc("sharding.map_push_failed", (self.trader_id,))

    # -- management interface (broadcast) ----------------------------------------

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> None:
        # The router's mirror first: it raises on duplicates/unknown
        # supers exactly as a single trader would, before any shard moves.
        self.types.add(service_type, now)
        for handle in self._handles.values():
            handle.call("add_type", service_type, now)

    def remove_type(self, name: str) -> bool:
        removed = self.types.remove(name)
        for handle in self._handles.values():
            handle.call("remove_type", name)
        return removed

    def mask_type(self, name: str) -> None:
        self.types.mask(name)
        for handle in self._handles.values():
            handle.call("mask_type", name)

    # -- exporter interface --------------------------------------------------------

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        owner = self.map.owner(service_type)
        offer_id = self._handles[owner].call(
            "export", service_type, ref, properties, now, lifetime, lease_seconds
        )
        self.exports_accepted += 1
        METRICS.inc("sharding.routed", (self.trader_id, owner, "export"))
        return offer_id

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        owner = self._owner_of_offer(offer_id)
        METRICS.inc("sharding.routed", (self.trader_id, owner, "renew"))
        return self._handles[owner].call("renew", offer_id, now)

    def withdraw(self, offer_id: str) -> ServiceOffer:
        owner = self._owner_of_offer(offer_id)
        METRICS.inc("sharding.routed", (self.trader_id, owner, "withdraw"))
        return self._handles[owner].call("withdraw", offer_id)

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        owner = self._owner_of_offer(offer_id)
        METRICS.inc("sharding.routed", (self.trader_id, owner, "modify"))
        return self._handles[owner].call("modify", offer_id, properties)

    def expire_offers(self, now: float) -> int:
        """Broadcast the lease sweep; each primary replicates its own."""
        return sum(
            self._handles[shard_id].call("expire_offers", now)
            for shard_id in self.map.shard_ids
        )

    def purge_expired(self, now: float) -> int:
        return self.expire_offers(now)

    def _owner_of_offer(self, offer_id: str) -> str:
        """Offer ids are ``prefix:type:n`` — placement needs no lookup."""
        prefix = self.offer_prefix + ":"
        if offer_id.startswith(prefix):
            service_type, _, suffix = offer_id[len(prefix) :].rpartition(":")
            if service_type and suffix.isdigit():
                return self.map.owner(service_type)
        raise OfferNotFound(f"no offer {offer_id!r}")

    # -- importer interface ---------------------------------------------------------

    def import_(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        """Fan the query out to every covering shard; rank at the router.

        The router restores the single-trader candidate order — types in
        ``matching_types`` order, offers in per-type export order, both
        recoverable from the offer id — and applies the preference once,
        so ranking (and the rng behind ``random``) is bit-identical to an
        unsharded trader.

        Bounded queries with a deterministic preference are answered by
        **scatter-gather top-K**: ``max_matches`` and the preference are
        pushed down so each shard returns only its local top-K (riding
        the sorted-index fast path for ``min``/``max``), and the router
        re-ranks the union.  This is exact: every deterministic
        preference is a total order whose ties break on the canonical
        candidate order, and a shard's candidate order is the global one
        restricted to that shard — so the global top-K is contained in
        the union of the shards' local top-Ks.  ``random`` (rng over the
        full match set) and unbounded queries gather raw matches.
        """
        if ctx is None:
            ctx = current_context()
        if ctx is None:
            ctx = CallContext.background(
                hops=request.hop_limit, visited=tuple(request.visited)
            )
        self.imports_served += 1
        METRICS.inc("trader.imports", (self.trader_id,))
        preference = parse_preference(request.preference)
        type_names = self.types.matching_types(
            request.service_type, structural=request.structural
        )
        owners = self.map.owners(type_names)
        forwarded = request.to_wire()
        if request.max_matches > 0 and preference.kind != "random":
            METRICS.inc("sharding.topk_pushdown", (self.trader_id,))
        else:
            forwarded["preference"] = ""  # shards return raw matches; we order
            forwarded["max_matches"] = 0
        forwarded["hop_limit"] = 0  # shards are partitions, not federation hops
        wire_lists = self._gather(owners, forwarded, ctx, now)
        merged: Dict[str, ServiceOffer] = {}
        for wires in wire_lists:
            for item in wires or ():
                offer = ServiceOffer.from_wire(item)
                merged.setdefault(offer.offer_id, offer)
        position = {name: index for index, name in enumerate(type_names)}
        candidates = sorted(
            merged.values(),
            key=lambda offer: (
                position.get(offer.service_type, len(position)),
                self._export_seq(offer.offer_id),
            ),
        )
        ordered = preference.apply(candidates, self.rng)
        if request.max_matches > 0:
            ordered = ordered[: request.max_matches]
        return ordered

    def _gather(
        self,
        owners: List[str],
        forwarded: Dict[str, Any],
        ctx: CallContext,
        now: float,
    ) -> List[Optional[List[Dict[str, Any]]]]:
        METRICS.inc(
            "sharding.fanout", (self.trader_id,), amount=max(len(owners), 1)
        )
        if len(owners) == 1 or self.fanout_workers <= 1:
            results: List[Optional[List[Dict[str, Any]]]] = []
            for shard_id in owners:
                results.append(
                    self._handles[shard_id].call("import_wire", forwarded, now, ctx)
                )
            return results
        clock = self.clock or (lambda: now)
        links = []
        for shard_id in owners:
            handle = self._handles[shard_id]

            def forward(wire, ctx=None, _handle=handle, _now=now):
                return _handle.call("import_wire", wire, _now, ctx)

            links.append(TraderLink(f"shard:{shard_id}", forward))
        return fan_out(links, forwarded, ctx, clock, workers=self.fanout_workers)

    def _export_seq(self, offer_id: str) -> int:
        suffix = offer_id.rpartition(":")[2]
        return int(suffix) if suffix.isdigit() else 0

    def select_best(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> Optional[ServiceOffer]:
        narrowed = ImportRequest(**{**request.__dict__, "max_matches": 1})
        offers = self.import_(narrowed, now, ctx)
        return offers[0] if offers else None

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        try:
            offers = self.import_(ImportRequest.from_wire(request_wire), now, ctx)
        except TraderError:
            return []
        return [offer.to_wire() for offer in offers]

    # -- introspection ----------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return {
            "router_id": self.trader_id,
            "map_version": self.map.version,
            "shards": {
                shard_id: self._handles[shard_id].status()
                for shard_id in self.map.shard_ids
            },
        }


def build_local_router(
    shard_ids: Iterable[str],
    replicas: int = 0,
    router_id: str = "router",
    offer_prefix: Optional[str] = None,
    seed: int = 0,
    clock: Optional[Clock] = None,
    fanout_workers: int = 1,
    breaker_policy: BreakerPolicy = SHARD_BREAKER,
    dynamic_evaluator=None,
    range_index: bool = True,
) -> ShardRouter:
    """An in-process sharded trader: N primaries, R replicas each, wired.

    Every primary pushes deltas straight into its replicas' ``apply_delta``;
    a push that finds the replica out of sequence falls back to a pull
    ``sync_from`` (which also runs the lease-expiry catch-up step).
    """
    router = ShardRouter(
        router_id=router_id,
        offer_prefix=offer_prefix,
        seed=seed,
        clock=clock,
        fanout_workers=fanout_workers,
        breaker_policy=breaker_policy,
    )
    for shard_id in shard_ids:
        primary = TraderShard(
            f"{router.trader_id}/{shard_id}",
            offer_prefix=router.offer_prefix,
            seed=seed,
            dynamic_evaluator=dynamic_evaluator,
            clock=clock,
            range_index=range_index,
        )
        shard_replicas = []
        for replica_index in range(replicas):
            replica = TraderShard(
                f"{router.trader_id}/{shard_id}-r{replica_index + 1}",
                offer_prefix=router.offer_prefix,
                seed=seed,
                dynamic_evaluator=dynamic_evaluator,
                clock=clock,
                range_index=range_index,
                role="replica",
            )
            primary.attach_replica(
                replica.shard_id, _push_with_sync(primary, replica, clock)
            )
            shard_replicas.append(replica)
        router.add_shard(shard_id, primary, shard_replicas)
    return router


def _push_with_sync(
    primary: TraderShard, replica: TraderShard, clock: Optional[Clock]
) -> Callable[[Dict[str, Any]], None]:
    def push(delta_wire: Dict[str, Any]) -> None:
        if not replica.apply_delta(delta_wire):
            now = clock() if clock is not None else 0.0
            replica.sync_from(primary.deltas_since, now)

    return push
