"""The shard router: the full trader surface over a partitioned offer space.

The router implements the same computational and management interface as
:class:`~repro.trader.trader.LocalTrader` — ``TraderService`` can wrap
either without knowing which it got.  EXPORT/WITHDRAW/MODIFY/RENEW route
to the one shard that owns the offer's service type (rendezvous placement
over the versioned :class:`ShardMap`); IMPORT fans out to the owner plus
every shard covering a subtype-widened query, over the same
deadline-ledger engine federation uses; management ops broadcast.

Each shard is a :class:`ShardHandle`: a primary backend, an ordered list
of replica backends, and a circuit breaker around the primary.  When the
breaker opens, the handle promotes the first replica — which expires any
leases that lapsed in the failover window before serving — and retries
the failed call there, so a primary crash costs availability only for
the instant of detection.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.context import CallContext, Clock, current_context
from repro.naming.refs import ServiceRef
from repro.rpc.errors import RemoteFault
from repro.rpc.resilience import STATE_OPEN, BreakerPolicy, CircuitBreaker
from repro.telemetry.metrics import METRICS
from repro.trader.errors import OfferNotFound, TraderError
from repro.trader.federation import DEFAULT_FANOUT_WORKERS, TraderLink, fan_out
from repro.trader.offers import ServiceOffer
from repro.trader.policies import parse_preference
from repro.trader.service_types import ServiceType
from repro.trader.sharding.hashing import ShardMap
from repro.trader.sharding.migration import DUAL_READ_PHASES, MigrationState
from repro.trader.sharding.replication import (
    MigrationSealed,
    ShardNotDrained,
    ShardUnavailable,
)
from repro.trader.sharding.shard import TraderShard
from repro.trader.trader import ImportRequest
from repro.trader.type_manager import TypeManager

#: Breaker policy for shard primaries: one hard failure opens the
#: circuit, because unlike a federation peer a shard has a warm replica
#: standing by — failing over immediately beats retrying a corpse.
SHARD_BREAKER = BreakerPolicy(failure_threshold=1, probe_interval=30.0)


class ShardHandle:
    """One shard's primary + replicas behind a circuit breaker."""

    def __init__(
        self,
        shard_id: str,
        primary: Any,
        replicas: Iterable[Any] = (),
        clock: Optional[Clock] = None,
        policy: BreakerPolicy = SHARD_BREAKER,
        router_id: str = "router",
    ) -> None:
        self.shard_id = shard_id
        self.primary = primary
        self.replicas: List[Any] = list(replicas)
        self._clock = clock or (lambda: 0.0)
        self._policy = policy
        self._router_id = router_id
        self.breaker = self._new_breaker()

    def _new_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            f"{self._router_id}/{self.shard_id}", self._policy, self._clock
        )

    def call(self, op: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``op`` on the primary, failing over when its breaker opens.

        Application errors (:class:`TraderError` — unknown type, missing
        offer…) are *successful* calls of the backend and propagate
        untouched; only infrastructure failures trip the breaker.
        """
        if self.breaker.allow():
            try:
                result = getattr(self.primary, op)(*args, **kwargs)
            except TraderError:
                self.breaker.record_success()
                raise
            except RemoteFault as fault:
                if fault.kind == "MigrationSealed":
                    # A remote donor refusing a sealed type is an
                    # application answer, not an outage: re-raise it
                    # typed so the router's forwarding window catches it.
                    self.breaker.record_success()
                    raise MigrationSealed(fault.detail) from fault
                self.breaker.record_failure()
                if self.breaker.state != STATE_OPEN:
                    raise
                return self._failover(op, args, kwargs, fault)
            except Exception as failure:  # noqa: BLE001 - backend is down
                self.breaker.record_failure()
                if self.breaker.state != STATE_OPEN:
                    raise  # transient; breaker still closed, let caller retry
                return self._failover(op, args, kwargs, failure)
            else:
                self.breaker.record_success()
                return result
        return self._failover(op, args, kwargs, None)

    def _failover(self, op, args, kwargs, failure: Optional[Exception]) -> Any:
        if not self.replicas:
            raise ShardUnavailable(
                f"shard {self.shard_id}: primary down, no replica to promote"
            ) from failure
        promoted = self.replicas.pop(0)
        now = self._clock()
        promoted.promote(now)
        self.primary = promoted
        self.breaker = self._new_breaker()
        METRICS.inc("sharding.failovers", (self._router_id, self.shard_id))
        return self.call(op, *args, **kwargs)

    def status(self) -> Dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "breaker": self.breaker.state_name,
            "replicas": len(self.replicas),
        }


class _RouterOffers:
    """Read-only aggregate of every shard's offers (duck-typing the
    corner of ``OfferStore`` that service wrappers and tools consume)."""

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def all(self) -> List[ServiceOffer]:
        # While a migration is open the same offer lives on two shards:
        # dedup by id, the effective owner's copy winning.
        merged: Dict[str, ServiceOffer] = {}
        for shard_id in self._router.map.shard_ids:
            for offer in self._router.handle(shard_id).call("list_offers"):
                if (
                    offer.offer_id not in merged
                    or shard_id == self._router.effective_owner(offer.service_type)
                ):
                    merged[offer.offer_id] = offer
        return list(merged.values())

    def get(self, offer_id: str) -> ServiceOffer:
        for offer in self.all():
            if offer.offer_id == offer_id:
                return offer
        raise OfferNotFound(f"no offer {offer_id!r}")

    def __len__(self) -> int:
        return len(self.all())


class ShardRouter:
    """Route the trader surface over rendezvous-placed shards."""

    def __init__(
        self,
        router_id: str = "router",
        offer_prefix: Optional[str] = None,
        seed: int = 0,
        clock: Optional[Clock] = None,
        fanout_workers: int = DEFAULT_FANOUT_WORKERS,
        breaker_policy: BreakerPolicy = SHARD_BREAKER,
    ) -> None:
        self.trader_id = router_id
        self.offer_prefix = offer_prefix or router_id
        self.types = TypeManager()
        self.rng = random.Random(seed)
        self.map = ShardMap((), version=0)
        self.clock = clock
        self.fanout_workers = fanout_workers
        self.fanout_loop = None  # duck compat with LocalTrader (sim stacks)
        self.links: Dict[str, TraderLink] = {}  # routers do not federate (yet)
        self.dynamic_evaluator = None
        self._breaker_policy = breaker_policy
        self._handles: Dict[str, ShardHandle] = {}
        self.offers = _RouterOffers(self)
        self.exports_accepted = 0
        self.imports_served = 0
        #: Open migrations by service type: the dual-ownership window.
        self._migrations: Dict[str, MigrationState] = {}
        #: Routing pins that override rendezvous placement: a type whose
        #: map owner changed stays pinned to the shard actually holding
        #: its offers until a migration FLIPs it across.
        self._pins: Dict[str, str] = {}

    # -- topology ---------------------------------------------------------------

    def add_shard(self, shard_id: str, primary: Any, replicas: Iterable[Any] = ()) -> set:
        """Register a shard backend and re-version the map; returns the
        set of registered types whose rendezvous ownership moved.

        Backends are anything exposing the shard surface —
        :class:`TraderShard` in-process, or the RPC backend from
        :mod:`repro.trader.sharding.rpc` for a shard living elsewhere.

        Moved types are **pinned** to their old owner, so their resident
        offers keep being found and mutated exactly where they are; the
        returned set is the work-list a
        :class:`~repro.trader.sharding.migration.MigrationCoordinator`
        streams across (each migration's FLIP repoints the pin).
        """
        old_map = self.map if len(self.map) else None
        self._handles[shard_id] = ShardHandle(
            shard_id,
            primary,
            replicas,
            clock=self.clock,
            policy=self._breaker_policy,
            router_id=self.trader_id,
        )
        self.map = self.map.with_shard(shard_id)
        self._seed_types(self._handles[shard_id])
        moved: set = set()
        if old_map is not None:
            for service_type in self.types:
                name = service_type.name
                if name in self._pins or name in self._migrations:
                    continue  # routing is pinned: map movement is latent
                old_owner = old_map.owner(name)
                if old_owner != self.map.owner(name):
                    moved.add(name)
                    self._pins[name] = old_owner
        self._push_map()
        return moved

    def remove_shard(self, shard_id: str, force: bool = False) -> None:
        """Retire a shard.  Refused while the victim still holds offers —
        a removal would silently strand them — unless ``force=True``
        (accepting the loss; e.g. the shard's data is already gone).
        Drain it first: ``MigrationCoordinator.drain(shard_id)``.
        """
        handle = self._handles.get(shard_id)
        if handle is not None and not force:
            resident = handle.call("list_offers")
            if resident:
                raise ShardNotDrained(
                    f"shard {shard_id!r} still holds {len(resident)} offers; "
                    "drain it with a migration or pass force=True"
                )
        self._handles.pop(shard_id, None)
        self.map = self.map.without_shard(shard_id)
        for name, pin in list(self._pins.items()):
            if pin == shard_id or (len(self.map) and self.map.owner(name) == pin):
                del self._pins[name]
        self._push_map()

    def handle(self, shard_id: str) -> ShardHandle:
        return self._handles[shard_id]

    def _seed_types(self, handle: ShardHandle) -> None:
        """A shard joining a live router learns the registered types (in
        registration order, so supers always precede their subtypes)."""
        for service_type in self.types:
            name = service_type.name
            try:
                handle.call(
                    "add_type", service_type, self.types.registered_at(name) or 0.0
                )
            except TraderError:
                continue  # backend already knows it (rejoining shard)
            if self.types.masked(name):
                handle.call("mask_type", name)

    # -- live resharding: the dual-ownership window -------------------------------

    def migration_for(self, service_type: str) -> Optional[MigrationState]:
        return self._migrations.get(service_type)

    def open_migration(self, state: MigrationState) -> None:
        """Open (or re-open, on resume) the forwarding window for a type."""
        self._migrations[state.service_type] = state

    def close_migration(self, state: MigrationState) -> None:
        self._migrations.pop(state.service_type, None)

    def flip_type(self, state: MigrationState) -> None:
        """The atomic cutover: repoint the type's routing at the migration
        target and bump the shard-map version so every shard (and every
        delta logged from here on) sees the new ownership epoch.
        Idempotent — resuming a flipped migration re-applies at no cost."""
        name = state.service_type
        if self.map.owner(name) == state.target:
            changed = self._pins.pop(name, None) is not None
        else:
            changed = self._pins.get(name) != state.target
            self._pins[name] = state.target
        if changed:
            self.map = ShardMap(self.map.shard_ids, self.map.version + 1)
            self._push_map()

    def effective_owner(self, service_type: str) -> str:
        """Where the type's offers actually live *right now*: the open
        migration's authoritative side, else the pin, else the map."""
        state = self._migrations.get(service_type)
        if state is not None:
            return state.target if state.flipped else state.source
        pin = self._pins.get(service_type)
        if pin is not None:
            return pin
        return self.map.owner(service_type)

    def _forward_target(self, service_type: str, owner: str) -> Optional[str]:
        """Where to retry a write the sealed donor refused."""
        state = self._migrations.get(service_type)
        if state is not None:
            return state.target if owner != state.target else state.source
        pin = self._pins.get(service_type)
        if pin is not None and pin != owner:
            return pin
        mapped = self.map.owner(service_type)
        return mapped if mapped != owner else None

    def _route_write(self, op: str, service_type: str, *args: Any) -> Any:
        """Route a mutation to the effective owner; a ``MigrationSealed``
        refusal (the donor was flipped under the call) forwards to the
        other side of the window — the caller never sees the cutover."""
        owner = self.effective_owner(service_type)
        METRICS.inc("sharding.routed", (self.trader_id, owner, op))
        try:
            return self._handles[owner].call(op, *args)
        except MigrationSealed:
            fallback = self._forward_target(service_type, owner)
            if fallback is None:
                raise
            METRICS.inc(
                "sharding.migration.forwarded_calls",
                (self.trader_id, service_type),
            )
            METRICS.inc("sharding.routed", (self.trader_id, fallback, op))
            return self._handles[fallback].call(op, *args)

    def _push_map(self) -> None:
        METRICS.set_gauge("sharding.map_version", self.map.version, (self.trader_id,))
        map_wire = self.map.to_wire()
        for handle in self._handles.values():
            try:
                handle.call("set_map", map_wire)
            except Exception:  # noqa: BLE001 - a dark shard learns the map on sync
                METRICS.inc("sharding.map_push_failed", (self.trader_id,))

    # -- management interface (broadcast) ----------------------------------------

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> None:
        # The router's mirror first: it raises on duplicates/unknown
        # supers exactly as a single trader would, before any shard moves.
        self.types.add(service_type, now)
        for handle in self._handles.values():
            handle.call("add_type", service_type, now)

    def remove_type(self, name: str) -> bool:
        removed = self.types.remove(name)
        for handle in self._handles.values():
            handle.call("remove_type", name)
        return removed

    def mask_type(self, name: str) -> None:
        self.types.mask(name)
        for handle in self._handles.values():
            handle.call("mask_type", name)

    # -- exporter interface --------------------------------------------------------

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        offer_id = self._route_write(
            "export", service_type, service_type, ref, properties, now, lifetime,
            lease_seconds,
        )
        self.exports_accepted += 1
        return offer_id

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        return self._route_write("renew", self._type_of_offer(offer_id), offer_id, now)

    def withdraw(self, offer_id: str) -> ServiceOffer:
        return self._route_write("withdraw", self._type_of_offer(offer_id), offer_id)

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        return self._route_write(
            "modify", self._type_of_offer(offer_id), offer_id, properties
        )

    def expire_offers(self, now: float) -> int:
        """Broadcast the lease sweep; each primary replicates its own."""
        return sum(
            self._handles[shard_id].call("expire_offers", now)
            for shard_id in self.map.shard_ids
        )

    def purge_expired(self, now: float) -> int:
        return self.expire_offers(now)

    def _type_of_offer(self, offer_id: str) -> str:
        """Offer ids are ``prefix:type:n`` — placement needs no lookup."""
        prefix = self.offer_prefix + ":"
        if offer_id.startswith(prefix):
            service_type, _, suffix = offer_id[len(prefix) :].rpartition(":")
            if service_type and suffix.isdigit():
                return service_type
        raise OfferNotFound(f"no offer {offer_id!r}")

    # -- importer interface ---------------------------------------------------------

    def import_(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        """Fan the query out to every covering shard; rank at the router.

        The router restores the single-trader candidate order — types in
        ``matching_types`` order, offers in per-type export order, both
        recoverable from the offer id — and applies the preference once,
        so ranking (and the rng behind ``random``) is bit-identical to an
        unsharded trader.

        Bounded queries with a deterministic preference are answered by
        **scatter-gather top-K**: ``max_matches`` and the preference are
        pushed down so each shard returns only its local top-K (riding
        the sorted-index fast path for ``min``/``max``), and the router
        re-ranks the union.  This is exact: every deterministic
        preference is a total order whose ties break on the canonical
        candidate order, and a shard's candidate order is the global one
        restricted to that shard — so the global top-K is contained in
        the union of the shards' local top-Ks.  ``random`` (rng over the
        full match set) and unbounded queries gather raw matches.
        """
        if ctx is None:
            ctx = current_context()
        if ctx is None:
            ctx = CallContext.background(
                hops=request.hop_limit, visited=tuple(request.visited)
            )
        self.imports_served += 1
        METRICS.inc("trader.imports", (self.trader_id,))
        preference = parse_preference(request.preference)
        type_names = self.types.matching_types(
            request.service_type, structural=request.structural
        )
        owners = self._covering_shards(type_names)
        forwarded = request.to_wire()
        if request.max_matches > 0 and preference.kind != "random":
            METRICS.inc("sharding.topk_pushdown", (self.trader_id,))
        else:
            forwarded["preference"] = ""  # shards return raw matches; we order
            forwarded["max_matches"] = 0
        forwarded["hop_limit"] = 0  # shards are partitions, not federation hops
        wire_lists = self._gather(owners, forwarded, ctx, now)
        # Merge with dual-ownership awareness: while a type is migrating,
        # both sides may return the same offer; the copy from the type's
        # *effective owner* wins, so a not-yet-replayed RENEW or MODIFY on
        # the other side is never observable — no stale mediation.
        merged: Dict[str, ServiceOffer] = {}
        for shard_id, wires in zip(owners, wire_lists):
            for item in wires or ():
                offer = ServiceOffer.from_wire(item)
                if (
                    offer.offer_id not in merged
                    or shard_id == self.effective_owner(offer.service_type)
                ):
                    merged[offer.offer_id] = offer
        position = {name: index for index, name in enumerate(type_names)}
        candidates = sorted(
            merged.values(),
            key=lambda offer: (
                position.get(offer.service_type, len(position)),
                self._export_seq(offer.offer_id),
            ),
        )
        ordered = preference.apply(candidates, self.rng)
        if request.max_matches > 0:
            ordered = ordered[: request.max_matches]
        return ordered

    def _covering_shards(self, type_names: List[str]) -> List[str]:
        """The shards an import must ask: each queried type's effective
        owner, plus — for types inside a dual-ownership window — the other
        side of the migration (the double-read), appended after the
        authoritative owners so its rows only fill gaps in the merge."""
        owners: List[str] = []
        for name in type_names:
            owner = self.effective_owner(name)
            if owner not in owners:
                owners.append(owner)
        for name in type_names:
            state = self._migrations.get(name)
            if state is None or state.phase not in DUAL_READ_PHASES:
                continue
            other = state.source if state.flipped else state.target
            if other not in owners:
                owners.append(other)
        return owners

    def _gather(
        self,
        owners: List[str],
        forwarded: Dict[str, Any],
        ctx: CallContext,
        now: float,
    ) -> List[Optional[List[Dict[str, Any]]]]:
        METRICS.inc(
            "sharding.fanout", (self.trader_id,), amount=max(len(owners), 1)
        )
        if len(owners) == 1 or self.fanout_workers <= 1:
            results: List[Optional[List[Dict[str, Any]]]] = []
            for shard_id in owners:
                results.append(
                    self._handles[shard_id].call("import_wire", forwarded, now, ctx)
                )
            return results
        clock = self.clock or (lambda: now)
        links = []
        for shard_id in owners:
            handle = self._handles[shard_id]

            def forward(wire, ctx=None, _handle=handle, _now=now):
                return _handle.call("import_wire", wire, _now, ctx)

            links.append(TraderLink(f"shard:{shard_id}", forward))
        return fan_out(links, forwarded, ctx, clock, workers=self.fanout_workers)

    def _export_seq(self, offer_id: str) -> int:
        suffix = offer_id.rpartition(":")[2]
        return int(suffix) if suffix.isdigit() else 0

    def select_best(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> Optional[ServiceOffer]:
        narrowed = ImportRequest(**{**request.__dict__, "max_matches": 1})
        offers = self.import_(narrowed, now, ctx)
        return offers[0] if offers else None

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        try:
            offers = self.import_(ImportRequest.from_wire(request_wire), now, ctx)
        except TraderError:
            return []
        return [offer.to_wire() for offer in offers]

    # -- introspection ----------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return {
            "router_id": self.trader_id,
            "map_version": self.map.version,
            "shards": {
                shard_id: self._handles[shard_id].status()
                for shard_id in self.map.shard_ids
            },
            "migrations": {
                name: state.phase for name, state in sorted(self._migrations.items())
            },
            "pins": dict(sorted(self._pins.items())),
        }


def build_local_router(
    shard_ids: Iterable[str],
    replicas: int = 0,
    router_id: str = "router",
    offer_prefix: Optional[str] = None,
    seed: int = 0,
    clock: Optional[Clock] = None,
    fanout_workers: int = 1,
    breaker_policy: BreakerPolicy = SHARD_BREAKER,
    dynamic_evaluator=None,
    range_index: bool = True,
) -> ShardRouter:
    """An in-process sharded trader: N primaries, R replicas each, wired.

    Every primary pushes deltas straight into its replicas' ``apply_delta``;
    a push that finds the replica out of sequence falls back to a pull
    ``sync_from`` (which also runs the lease-expiry catch-up step).
    """
    router = ShardRouter(
        router_id=router_id,
        offer_prefix=offer_prefix,
        seed=seed,
        clock=clock,
        fanout_workers=fanout_workers,
        breaker_policy=breaker_policy,
    )
    for shard_id in shard_ids:
        primary = TraderShard(
            f"{router.trader_id}/{shard_id}",
            offer_prefix=router.offer_prefix,
            seed=seed,
            dynamic_evaluator=dynamic_evaluator,
            clock=clock,
            range_index=range_index,
        )
        shard_replicas = []
        for replica_index in range(replicas):
            replica = TraderShard(
                f"{router.trader_id}/{shard_id}-r{replica_index + 1}",
                offer_prefix=router.offer_prefix,
                seed=seed,
                dynamic_evaluator=dynamic_evaluator,
                clock=clock,
                range_index=range_index,
                role="replica",
            )
            primary.attach_replica(
                replica.shard_id, _push_with_sync(primary, replica, clock)
            )
            shard_replicas.append(replica)
        router.add_shard(shard_id, primary, shard_replicas)
    return router


def _push_with_sync(
    primary: TraderShard, replica: TraderShard, clock: Optional[Clock]
) -> Callable[[Dict[str, Any]], None]:
    def push(delta_wire: Dict[str, Any]) -> None:
        if not replica.apply_delta(delta_wire):
            now = clock() if clock is not None else 0.0
            replica.sync_from(primary.deltas_since, now)

    return push
