"""The importer's constraint language.

A small, total expression language evaluated over an offer's property
dict, in the spirit of the ODP trader constraint language::

    ChargePerDay < 90 and ChargeCurrency == 'USD'
    CarModel in ['AUDI', 'VW-Golf'] or not exist Discount
    AverageMilage * 1.6 <= 20000

Semantics are *matching-oriented*: referencing a property the offer does
not carry makes the enclosing comparison false (never an error), and type
mismatches compare unequal instead of raising — a malformed offer should
fail to match, not take the trader down.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.trader.errors import ConstraintSyntaxError


class _Missing:
    """Sentinel for properties absent from the offer."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


MISSING = _Missing()

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|==|!=|<|>|\(|\)|\[|\]|,|\+|-|\*|/)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "exist", "true", "false"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ConstraintSyntaxError(
                f"bad character {text[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append(match.group())
    tokens.append("\0")
    return tokens


class Constraint:
    """A parsed constraint; evaluate against property dicts.

    ``equality_conjuncts`` lists the ``(property, literal)`` pairs that the
    whole constraint requires to hold exactly — the top-level ``and``-chain
    of ``Prop == literal`` comparisons.  An offer whose stored value for
    such a property differs from the literal can never satisfy the
    constraint, which lets an offer store pre-filter candidates by index
    before paying for full evaluation.  Empty for every other shape.

    ``range_conjuncts`` is the ordering twin: the ``(property, operator,
    literal)`` triples the top-level ``and``-chain pins with ``<``,
    ``<=``, ``>`` or ``>=`` against a literal (mirrored comparisons are
    normalised, so ``30 > ChargePerDay`` records ``("ChargePerDay", "<",
    30)``).  They let a sorted index pre-filter ceilings and floors the
    same way the equality index pre-filters pins.
    """

    def __init__(self, source: str, root) -> None:
        self.source = source
        self._root = root
        self.equality_conjuncts: Tuple[Tuple[str, Any], ...] = getattr(
            root, "eq_conjuncts", ()
        )
        self.range_conjuncts: Tuple[Tuple[str, str, Any], ...] = getattr(
            root, "range_conjuncts", ()
        )

    def evaluate(self, properties: Dict[str, Any]) -> bool:
        """True when the offer's properties satisfy the constraint."""
        return _truth(self._root(properties))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Constraint {self.source!r}>"


_ALWAYS_TRUE = Constraint("", lambda properties: True)


@lru_cache(maxsize=1024)
def _compile(text: str) -> Constraint:
    """Parse ``text`` into a :class:`Constraint`; pure, hence cacheable.

    Evaluation closes over nothing but the (immutable) parse, so one
    compiled constraint is safely shared across imports and threads;
    failed parses raise and are never cached.
    """
    parser = _Parser(_tokenize(text))
    root = parser.parse_or()
    parser.expect("\0")
    return Constraint(text, root)


def parse_constraint(text: Optional[str]) -> Constraint:
    """Parse constraint text; ``None``/blank matches every offer.

    Compiles are memoised by constraint text (the import hot path parses
    the same handful of query strings over and over).
    """
    if text is None or not text.strip():
        return _ALWAYS_TRUE
    return _compile(text)


def _truth(value: Any) -> bool:
    if value is MISSING:
        return False
    return bool(value)


class _Parser:
    """Recursive descent over the token list; builds evaluator closures."""

    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str:
        return self._tokens[self._pos]

    def advance(self) -> str:
        token = self._tokens[self._pos]
        if token != "\0":
            self._pos += 1
        return token

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.advance()
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            want = "end of input" if token == "\0" else repr(token)
            raise ConstraintSyntaxError(f"expected {want}, found {self.peek()!r}")

    # -- grammar --------------------------------------------------------------

    def parse_or(self):
        left = self.parse_and()
        while self.accept("or"):
            right = self.parse_and()
            left = _make_or(left, right)
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.accept("and"):
            right = self.parse_not()
            left = _make_and(left, right)
        return left

    def parse_not(self):
        if self.accept("not"):
            inner = self.parse_not()
            return lambda props: not _truth(inner(props))
        return self.parse_comparison()

    def parse_comparison(self):
        if self.accept("exist"):
            token = self.advance()
            if not _is_ident(token):
                raise ConstraintSyntaxError(f"exist needs a property name, found {token!r}")
            return lambda props, name=token: name in props
        left = self.parse_sum()
        operator = self.peek()
        if operator in ("==", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_sum()
            return _make_comparison(left, operator, right)
        if operator == "in":
            self.advance()
            right = self.parse_sum()
            return _make_in(left, right)
        return left

    def parse_sum(self):
        left = self.parse_term()
        while self.peek() in ("+", "-"):
            operator = self.advance()
            right = self.parse_term()
            left = _make_arith(left, operator, right)
        return left

    def parse_term(self):
        left = self.parse_factor()
        while self.peek() in ("*", "/"):
            operator = self.advance()
            right = self.parse_factor()
            left = _make_arith(left, operator, right)
        return left

    def parse_factor(self):
        token = self.peek()
        if token == "(":
            self.advance()
            inner = self.parse_or()
            self.expect(")")
            return inner
        if token == "[":
            self.advance()
            items = []
            if self.peek() != "]":
                items.append(self.parse_sum())
                while self.accept(","):
                    items.append(self.parse_sum())
            self.expect("]")
            return _make_list(items)
        if token == "-":
            self.advance()
            inner = self.parse_factor()
            return _make_negate(inner)
        if re.fullmatch(r"\d+\.\d+", token):
            self.advance()
            return _make_literal(float(token))
        if re.fullmatch(r"\d+", token):
            self.advance()
            return _make_literal(int(token))
        if token and token[0] in "'\"":
            self.advance()
            return _make_literal(token[1:-1])
        if token == "true":
            self.advance()
            return _make_literal(True)
        if token == "false":
            self.advance()
            return _make_literal(False)
        if _is_ident(token):
            self.advance()
            return _make_property(token)
        raise ConstraintSyntaxError(f"unexpected token {token!r}")


def _is_ident(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token)) and token not in _KEYWORDS


def _make_literal(value):
    def literal(props, v=value):
        return v

    literal.literal_value = value
    return literal


def _make_property(name: str):
    def lookup(props, key=name):
        return props.get(key, MISSING)

    lookup.prop_name = name
    return lookup


def _make_or(left, right):
    return lambda props: _truth(left(props)) or _truth(right(props))


def _make_and(left, right):
    combined = lambda props: _truth(left(props)) and _truth(right(props))  # noqa: E731
    # An and-node requires every equality and range bound its children require.
    combined.eq_conjuncts = getattr(left, "eq_conjuncts", ()) + getattr(
        right, "eq_conjuncts", ()
    )
    combined.range_conjuncts = getattr(left, "range_conjuncts", ()) + getattr(
        right, "range_conjuncts", ()
    )
    return combined


#: Mirrored comparison operators: ``lit OP Prop`` == ``Prop MIRROR[OP] lit``.
_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _make_comparison(left, operator: str, right):
    def compare(props):
        lhs = left(props)
        rhs = right(props)
        if lhs is MISSING or rhs is MISSING:
            return False
        try:
            if operator == "==":
                return lhs == rhs
            if operator == "!=":
                return lhs != rhs
            if operator == "<":
                return lhs < rhs
            if operator == "<=":
                return lhs <= rhs
            if operator == ">":
                return lhs > rhs
            return lhs >= rhs
        except TypeError:
            return False

    if operator == "==":
        name = getattr(left, "prop_name", None)
        value = getattr(right, "literal_value", MISSING)
        if name is None:  # also recognise the mirrored `literal == Prop`
            name = getattr(right, "prop_name", None)
            value = getattr(left, "literal_value", MISSING)
        if name is not None and value is not MISSING:
            compare.eq_conjuncts = ((name, value),)
    elif operator in _MIRRORED:
        name = getattr(left, "prop_name", None)
        value = getattr(right, "literal_value", MISSING)
        bound = operator
        if name is None:  # mirrored `literal < Prop` pins `Prop > literal`
            name = getattr(right, "prop_name", None)
            value = getattr(left, "literal_value", MISSING)
            bound = _MIRRORED[operator]
        if name is not None and value is not MISSING:
            compare.range_conjuncts = ((name, bound, value),)
    return compare


def _make_in(left, right):
    def contains(props):
        lhs = left(props)
        rhs = right(props)
        if lhs is MISSING or rhs is MISSING:
            return False
        try:
            return lhs in rhs
        except TypeError:
            return False

    return contains


def _make_arith(left, operator: str, right):
    def apply(props):
        lhs = left(props)
        rhs = right(props)
        if lhs is MISSING or rhs is MISSING:
            return MISSING
        try:
            if operator == "+":
                return lhs + rhs
            if operator == "-":
                return lhs - rhs
            if operator == "*":
                return lhs * rhs
            if isinstance(rhs, (int, float)) and rhs == 0:
                return MISSING
            return lhs / rhs
        except TypeError:
            return MISSING

    return apply


def _make_negate(inner):
    def negate(props):
        value = inner(props)
        if value is MISSING or not isinstance(value, (int, float)):
            return MISSING
        return -value

    return negate


def _make_list(items):
    def build(props):
        values = [item(props) for item in items]
        if any(value is MISSING for value in values):
            return MISSING
        return values

    return build
