"""Offer liveness leases: the exporter-side heartbeat.

The trader side of leasing lives in :mod:`repro.trader.trader` — export
grants ``lease_seconds`` of life, RENEW refreshes it, expiry excludes the
offer from matching (lazily) and :meth:`LocalTrader.expire_offers` sweeps
it out of the store and its indexes.  This module is the *exporter* side:
a :class:`LeaseHeartbeat` renews an offer every ``interval`` seconds so
the offer stays matchable exactly as long as its exporter is alive — a
crashed or partitioned exporter simply stops renewing, and the lease
lapses on its own (the registry-liveness argument of Miraz 2008 and the
Grid Market Directory's leased publications).

The heartbeat is clock-agnostic:

* :meth:`LeaseHeartbeat.schedule_on` self-reschedules on a
  :class:`~repro.net.clock.SimClock`, so simulated exporters heartbeat in
  virtual time (and crashing the exporter's *host* silently eats the
  RENEW datagrams — no special test plumbing needed);
* :meth:`LeaseHeartbeat.start_thread` runs the same loop on a daemon
  thread against the wall clock for TCP deployments.

Either way :meth:`beat` is one renewal attempt; when the trader reports
the offer gone (swept after a missed lease) an optional ``reexport``
callback re-registers it, which is how a recovered exporter re-enters the
market without operator action.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.telemetry.metrics import METRICS
from repro.trader.errors import OfferNotFound

#: Renew this many times per lease period; 3 gives two retries' worth of
#: slack before a single lost heartbeat can lapse the lease.
BEATS_PER_LEASE = 3.0

Renewer = Callable[[str], Optional[float]]


def heartbeat_interval(lease_seconds: float) -> float:
    """The default renewal cadence for a lease of ``lease_seconds``."""
    return lease_seconds / BEATS_PER_LEASE


class LeaseHeartbeat:
    """Keeps one exported offer's lease alive.

    ``renew`` is the renewal callable — ``TraderClient.renew`` for remote
    traders, or ``lambda oid: trader.renew(oid, clock())`` for co-located
    ones.  ``reexport`` (optional) is invoked when the trader no longer
    knows the offer (it was swept or withdrawn); it must return the fresh
    offer id, which the heartbeat adopts.
    """

    def __init__(
        self,
        renew: Renewer,
        offer_id: str,
        interval: float,
        reexport: Optional[Callable[[], str]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive: {interval!r}")
        self.renew = renew
        self.offer_id = offer_id
        self.interval = interval
        self.reexport = reexport
        self.stopped = False
        self.beats = 0
        self.failures = 0
        self.reexports = 0

    def stop(self) -> None:
        """No further renewals; the lease lapses naturally."""
        self.stopped = True

    def beat(self) -> bool:
        """One renewal attempt; True when the lease (still) stands.

        Transport errors are swallowed — a heartbeat must never take its
        exporter down — and counted; the next beat retries.  An offer the
        trader has swept triggers ``reexport`` when one was given.
        """
        if self.stopped:
            return False
        try:
            self.renew(self.offer_id)
        except OfferNotFound:
            return self._handle_lost()
        except Exception as exc:  # noqa: BLE001 - liveness must not propagate
            if type(exc).__name__ == "RemoteFault" and getattr(exc, "kind", "") == "OfferNotFound":
                return self._handle_lost()
            self.failures += 1
            METRICS.inc("trader.lease.heartbeats", ("failed",))
            return False
        self.beats += 1
        METRICS.inc("trader.lease.heartbeats", ("ok",))
        return True

    def _handle_lost(self) -> bool:
        self.failures += 1
        METRICS.inc("trader.lease.heartbeats", ("lost",))
        if self.reexport is None:
            return False
        try:
            self.offer_id = self.reexport()
        except Exception:  # noqa: BLE001 - retried on the next beat
            METRICS.inc("trader.lease.heartbeats", ("reexport_failed",))
            return False
        self.reexports += 1
        METRICS.inc("trader.lease.heartbeats", ("reexported",))
        return True

    # -- clock bindings ----------------------------------------------------

    def schedule_on(self, clock: Any) -> None:
        """Heartbeat forever on a SimClock-style scheduler (virtual time)."""

        def tick() -> None:
            if self.stopped:
                return
            self.beat()
            if not self.stopped:
                clock.schedule(self.interval, tick)

        clock.schedule(self.interval, tick)

    def start_task(self, loop: Optional[Any] = None) -> "Any":
        """Heartbeat as an asyncio task; :meth:`stop` cancels it.

        On a :class:`~repro.net.aioclock.SimEventLoop` the sleeps are
        virtual seconds — an exporter's heartbeat then costs no wall
        time at all, and crashing its simulated host eats the RENEW
        datagrams exactly as with :meth:`schedule_on`.  With no ``loop``
        the running loop is used (call from a coroutine).
        """
        import asyncio

        loop = loop if loop is not None else asyncio.get_running_loop()

        async def beat_forever() -> None:
            try:
                while not self.stopped:
                    await asyncio.sleep(self.interval)
                    if not self.stopped:
                        self.beat()
            except asyncio.CancelledError:
                pass  # stop() cancelled us; the lease lapses naturally

        task = loop.create_task(beat_forever())
        original_stop = self.stop

        def stop_task() -> None:
            original_stop()
            task.cancel()

        self.stop = stop_task  # type: ignore[method-assign]
        return task

    def start_thread(self) -> threading.Thread:
        """Heartbeat on the wall clock (daemon thread); :meth:`stop` ends it."""
        stop_event = threading.Event()
        original_stop = self.stop

        def stop_both() -> None:
            stop_event.set()
            original_stop()

        self.stop = stop_both  # type: ignore[method-assign]

        def loop() -> None:
            while not stop_event.wait(self.interval):
                self.beat()

        thread = threading.Thread(target=loop, name="lease-heartbeat", daemon=True)
        thread.start()
        return thread


def keep_alive(
    renew: Renewer,
    offer_id: str,
    lease_seconds: float,
    clock: Optional[Any] = None,
    reexport: Optional[Callable[[], str]] = None,
) -> LeaseHeartbeat:
    """Convenience: a heartbeat at the default cadence, scheduled if a
    virtual clock is given (otherwise the caller drives ``beat`` or
    ``start_thread``)."""
    heartbeat = LeaseHeartbeat(
        renew, offer_id, heartbeat_interval(lease_seconds), reexport=reexport
    )
    if clock is not None:
        heartbeat.schedule_on(clock)
    return heartbeat
