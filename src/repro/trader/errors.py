"""Trader error hierarchy."""

from __future__ import annotations

from repro.errors import CosmError, LookupFailure


class TraderError(CosmError):
    """Base class for trading failures."""


class UnknownServiceType(TraderError, LookupFailure):
    """The request names a service type the type manager does not hold."""


class DuplicateServiceType(TraderError):
    """A service type with this name is already registered."""


class OfferNotFound(TraderError, LookupFailure):
    """No offer is stored under the given offer id."""


class InvalidOfferProperties(TraderError):
    """An exported offer's properties do not match its service type."""


class ConstraintSyntaxError(TraderError):
    """The importer's constraint expression could not be parsed."""
