"""ODP trader (§2): service types, offers, constraints, import/export.

The trader matches importer requests against exported service offers
(Fig. 1).  Its pieces:

* :mod:`repro.trader.service_types` — service types: an interface
  signature plus characterising attribute types (§2.1),
* :mod:`repro.trader.type_manager` — the type manager [5]: a registry
  with subtype relationships and standardisation bookkeeping,
* :mod:`repro.trader.offers` — the offer store,
* :mod:`repro.trader.constraints` — the importer constraint language,
* :mod:`repro.trader.policies` — preference/selection policies
  ("best possible" per given criteria),
* :mod:`repro.trader.trader` — the local trader plus its RPC service and
  client stubs,
* :mod:`repro.trader.federation` — trader-to-trader links with hop-limited
  query forwarding (the trader federation of §2.2),
* :mod:`repro.trader.leases` — exporter-side lease heartbeats keeping
  offers matchable exactly as long as their exporter is alive.
"""

from repro.trader.constraints import Constraint, parse_constraint
from repro.trader.dynamic import BindingEvaluator, dynamic_property, is_dynamic
from repro.trader.errors import (
    ConstraintSyntaxError,
    DuplicateServiceType,
    InvalidOfferProperties,
    OfferNotFound,
    TraderError,
    UnknownServiceType,
)
from repro.trader.federation import DEFAULT_FANOUT_WORKERS, TraderLink, fan_out
from repro.trader.leases import LeaseHeartbeat, heartbeat_interval, keep_alive
from repro.trader.offers import OfferStore, ServiceOffer
from repro.trader.policies import Preference, parse_preference
from repro.trader.service_types import ServiceType, service_type_from_sid
from repro.trader.trader import (
    ImportRequest,
    LocalTrader,
    TRADER_PROGRAM,
    TraderClient,
    TraderService,
)
from repro.trader.type_manager import TypeManager

__all__ = [
    "BindingEvaluator",
    "Constraint",
    "DEFAULT_FANOUT_WORKERS",
    "ConstraintSyntaxError",
    "dynamic_property",
    "is_dynamic",
    "DuplicateServiceType",
    "ImportRequest",
    "InvalidOfferProperties",
    "LeaseHeartbeat",
    "LocalTrader",
    "OfferNotFound",
    "OfferStore",
    "Preference",
    "ServiceOffer",
    "ServiceType",
    "TRADER_PROGRAM",
    "TraderClient",
    "TraderError",
    "TraderLink",
    "TraderService",
    "TypeManager",
    "UnknownServiceType",
    "fan_out",
    "heartbeat_interval",
    "keep_alive",
    "parse_constraint",
    "parse_preference",
    "service_type_from_sid",
]
