"""Dynamic service properties — ODP-trader style late-bound attributes.

§2.1's trader selects "a best-fitting service according to some given
criteria"; for volatile attributes (current charge, current load) a
static exported value goes stale.  A *dynamic property* is exported as a
marker instead of a value::

    {"__cosm__": "dynamic_property", "ref": <service ref>, "operation": "CurrentCharge"}

At import time the trader resolves it by invoking the named operation on
the exporting service (through the uniform COSM protocol), then runs
constraints and preferences over the fresh values.  Unresolvable dynamic
properties evaluate to *missing*, so such offers fail constraints rather
than failing the import.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.naming.binder import Binder
from repro.naming.refs import ServiceRef

DYNAMIC_MARKER = "dynamic_property"
_MARKER_KEY = "__cosm__"

Evaluator = Callable[[Dict[str, Any]], Any]


def dynamic_property(
    ref: Union[ServiceRef, Dict[str, Any]],
    operation: str,
    arguments: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the exportable marker for a dynamic property."""
    ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else dict(ref)
    return {
        _MARKER_KEY: DYNAMIC_MARKER,
        "ref": ref_wire,
        "operation": operation,
        "arguments": dict(arguments or {}),
    }


def is_dynamic(value: Any) -> bool:
    return isinstance(value, dict) and value.get(_MARKER_KEY) == DYNAMIC_MARKER


def resolve_properties(
    properties: Dict[str, Any],
    evaluator: Optional[Evaluator],
) -> Dict[str, Any]:
    """Materialise dynamic markers; static values pass through untouched.

    With no evaluator configured, or when evaluation fails, the property
    is dropped from the resolved dict (missing -> constraint false).
    """
    if not any(is_dynamic(value) for value in properties.values()):
        return properties
    resolved: Dict[str, Any] = {}
    for key, value in properties.items():
        if not is_dynamic(value):
            resolved[key] = value
            continue
        if evaluator is None:
            continue
        try:
            resolved[key] = evaluator(value)
        except Exception:  # noqa: BLE001 - a dead exporter just fails to match
            continue
    return resolved


class BindingEvaluator:
    """Default evaluator: invoke the property operation over COSM bindings.

    Bindings to exporters are cached per service id, so one import over
    many offers of the same service pays one BIND.
    """

    def __init__(self, client) -> None:
        self._binder = Binder(client)
        self._bindings: Dict[str, Any] = {}
        self.evaluations = 0

    def __call__(self, marker: Dict[str, Any]) -> Any:
        ref = ServiceRef.from_wire(marker["ref"])
        binding = self._bindings.get(ref.service_id)
        if binding is None or not binding.bound:
            binding = self._binder.bind(ref)
            self._bindings[ref.service_id] = binding
        self.evaluations += 1
        return binding.invoke(marker["operation"], marker.get("arguments") or {})

    def close(self) -> None:
        for binding in self._bindings.values():
            binding.unbind()
        self._bindings.clear()
