"""Trader federation (§2.2): links between traders with hop-limited search.

A link names a peer trader and a *forwarder* — a callable taking an
import-request wire dict (and, for context-aware forwarders, a ``ctx``
keyword) and returning a list of offer wire dicts.  For co-located
traders the forwarder calls the peer's
:meth:`~repro.trader.trader.LocalTrader.import_wire` directly; for
networked federation :meth:`repro.trader.trader.TraderService.link_to`
installs a forwarder that issues the IMPORT RPC.

Hop budget and loop breaking are carried by the request's
:class:`~repro.context.CallContext` (``hops`` and ``visited``); the
``hop_limit``/``visited`` wire fields remain as the on-the-wire encoding
and as a compatibility surface for pre-context callers.
"""

from __future__ import annotations

import asyncio
import inspect
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import math

from repro.context import CallContext, Clock, DeadlineLedger, SpanRecord, use_context
from repro.rpc.errors import DeadlineExceeded, ServerShedding
from repro.telemetry.metrics import METRICS

Forwarder = Callable[..., List[Dict[str, Any]]]

#: Default cap on concurrent link forwards during a fan-out.
DEFAULT_FANOUT_WORKERS = 8


def _accepts_ctx(forwarder: Forwarder) -> bool:
    """True when the forwarder takes a ``ctx`` keyword (or ``**kwargs``)."""
    try:
        signature = inspect.signature(forwarder)
    except (TypeError, ValueError):  # builtins / odd callables: stay legacy
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
    return "ctx" in signature.parameters


@dataclass
class TraderLink:
    """One edge of the trading graph."""

    name: str
    forwarder: Forwarder
    # A link may cap how deep queries travel onward from here, on top of
    # the request's own hop budget (the ODP notion of link scope).
    max_hops: int = 8
    #: Optional coroutine-function twin of ``forwarder`` used by the
    #: async fan-out; when absent the sync forwarder runs inline (fine
    #: for co-located traders, which answer without blocking).
    aforwarder: Optional[Forwarder] = None
    _wants_ctx: Optional[bool] = field(default=None, repr=False, compare=False)
    _awants_ctx: Optional[bool] = field(default=None, repr=False, compare=False)

    def _capped(
        self,
        request_wire: Dict[str, Any],
        ctx: Optional[CallContext],
    ) -> Tuple[Dict[str, Any], Optional[CallContext]]:
        """Apply this link's hop scope to the wire dict and the context."""
        capped = dict(request_wire)
        # A request that omits hop_limit gets this link's full allowance —
        # min() against a default of 0 would silently zero the budget.
        budget = capped.get("hop_limit", self.max_hops)
        capped["hop_limit"] = min(budget, self.max_hops)
        if ctx is not None:
            if ctx.hops is not None:
                capped["hop_limit"] = min(capped["hop_limit"], ctx.hops)
            # The link scope narrows the context's budget as well: the
            # peer trusts the context over the legacy wire field.
            ctx = ctx.derive(hops=capped["hop_limit"])
        return capped, ctx

    def forward(
        self,
        request_wire: Dict[str, Any],
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        capped, ctx = self._capped(request_wire, ctx)
        if self._wants_ctx is None:
            self._wants_ctx = _accepts_ctx(self.forwarder)
        if self._wants_ctx:
            return self.forwarder(capped, ctx=ctx)
        return self.forwarder(capped)

    async def forward_async(
        self,
        request_wire: Dict[str, Any],
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        """Coroutine twin of :meth:`forward` — used by :func:`fan_out_async`.

        Prefers ``aforwarder``; without one the sync forwarder runs
        inline on the event loop, and a sync forwarder that happens to
        return an awaitable is awaited.
        """
        capped, ctx = self._capped(request_wire, ctx)
        if self.aforwarder is not None:
            if self._awants_ctx is None:
                self._awants_ctx = _accepts_ctx(self.aforwarder)
            if self._awants_ctx:
                return await self.aforwarder(capped, ctx=ctx)
            return await self.aforwarder(capped)
        if self._wants_ctx is None:
            self._wants_ctx = _accepts_ctx(self.forwarder)
        result = (
            self.forwarder(capped, ctx=ctx)
            if self._wants_ctx
            else self.forwarder(capped)
        )
        if inspect.isawaitable(result):
            result = await result
        return result


def fan_out(
    links: List[TraderLink],
    request_wire: Dict[str, Any],
    ctx: CallContext,
    clock: Clock,
    workers: int = DEFAULT_FANOUT_WORKERS,
    needed: int = 0,
) -> List[Optional[List[Dict[str, Any]]]]:
    """Forward one import over every link concurrently, splitting the budget.

    Each link runs on a bounded worker pool and receives a *lease* on the
    shared deadline: ``remaining / outstanding`` at the moment it starts,
    re-donated through the :class:`~repro.context.DeadlineLedger` as fast
    links finish (see docs/PROTOCOL.md, "Deadline splitting").  The leased
    context is installed ambiently in the worker via ``use_context`` so
    forwarders that consult :func:`~repro.context.current_context` — and
    anything they call — inherit the query's deadline, hops, and trace.

    Degrades the way the serial sweep does: an unreachable peer yields
    ``None`` in its slot (and an error span), an exhausted budget stops the
    wait and returns whatever has arrived, and with ``needed > 0`` the wait
    ends early once that many offers have been gathered.  Results come back
    in link order regardless of completion order, so merges stay
    deterministic.
    """
    links = list(links)
    results: List[Optional[List[Dict[str, Any]]]] = [None] * len(links)
    if not links:
        return results
    ledger = DeadlineLedger(ctx, clock, len(links))

    def forward_one(index: int, link: TraderLink) -> None:
        leased = ledger.lease()
        try:
            if leased.expired(clock()):
                leased.record_span(
                    SpanRecord(
                        "federation",
                        f"link {link.name}",
                        started_at=clock(),
                        outcome="expired",
                    )
                )
                METRICS.inc("federation.link", (link.name, "expired"))
                return
            with use_context(leased):
                with leased.span("federation", f"link {link.name}", clock):
                    results[index] = link.forward(request_wire, leased)
            METRICS.inc("federation.link", (link.name, "ok"))
        except ServerShedding:
            # An overloaded peer shed the forward: degrade to a partial
            # merge (this link's slot stays None) exactly as for an
            # unreachable peer, but counted separately — shedding is a
            # load signal, not a liveness one.
            METRICS.inc("federation.link", (link.name, "shed"))
        except DeadlineExceeded:
            # The lease lapsed mid-forward: a budget outcome, not a
            # liveness one — counted like the pre-flight expiry check.
            METRICS.inc("federation.link", (link.name, "expired"))
        except Exception:  # noqa: BLE001 - unreachable peers are skipped
            # the span already recorded the failure outcome
            METRICS.inc("federation.link", (link.name, "unreachable"))
        finally:
            ledger.release()

    executor = ThreadPoolExecutor(
        max_workers=max(1, min(workers, len(links))),
        thread_name_prefix="trader-fanout",
    )
    link_for = {}
    pending = set()
    budget_exhausted = False
    try:
        for index, link in enumerate(links):
            future = executor.submit(forward_one, index, link)
            link_for[future] = link
            pending.add(future)
        while pending:
            budget = ledger.remaining()
            timeout = None if math.isinf(budget) else budget
            done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                budget_exhausted = True
                break  # budget spent: return the partial sweep
            if needed > 0:
                gathered = sum(len(r) for r in results if r)
                if gathered >= needed:
                    break
    finally:
        for future in pending:
            # Links a spent budget kept from ever starting are counted
            # "expired", matching the serial sweep's skip accounting; an
            # early exit because ``needed`` was reached counts nothing
            # (the serial sweep does not either).  Links already running
            # count their own outcome in ``forward_one``.
            if future.cancel() and budget_exhausted:
                METRICS.inc("federation.link", (link_for[future].name, "expired"))
        executor.shutdown(wait=False)
    # Snapshot: links still running past an early exit must not mutate
    # what the importer already merged.
    return list(results)


async def fan_out_async(
    links: List[TraderLink],
    request_wire: Dict[str, Any],
    ctx: CallContext,
    clock: Clock,
    workers: int = DEFAULT_FANOUT_WORKERS,
    needed: int = 0,
) -> List[Optional[List[Dict[str, Any]]]]:
    """Coroutine fan-out: :func:`fan_out` semantics on the event loop.

    Identical outcome accounting and deadline-ledger leasing, but each
    link is a task instead of a pooled thread — on a virtual-time
    :class:`~repro.net.aioclock.SimEventLoop` every link is genuinely in
    flight at once while the run stays deterministic (tasks start in
    link order; the loop interleaves them in virtual-time order).  On a
    spent budget, links that never started are counted ``expired`` and
    links cancelled mid-flight count ``expired`` too — the async stack's
    cancellation-on-deadline reaches into the fan-out itself.
    """
    links = list(links)
    results: List[Optional[List[Dict[str, Any]]]] = [None] * len(links)
    if not links:
        return results
    ledger = DeadlineLedger(ctx, clock, len(links))
    semaphore = asyncio.Semaphore(max(1, min(workers, len(links))))
    started: Dict[int, bool] = {}
    budget_exhausted = {"flag": False}

    async def forward_one(index: int, link: TraderLink) -> None:
        async with semaphore:
            started[index] = True
            leased = ledger.lease()
            try:
                if leased.expired(clock()):
                    leased.record_span(
                        SpanRecord(
                            "federation",
                            f"link {link.name}",
                            started_at=clock(),
                            outcome="expired",
                        )
                    )
                    METRICS.inc("federation.link", (link.name, "expired"))
                    return
                with use_context(leased):
                    with leased.span("federation", f"link {link.name}", clock):
                        results[index] = await link.forward_async(
                            request_wire, leased
                        )
                METRICS.inc("federation.link", (link.name, "ok"))
            except ServerShedding:
                # An overloaded peer shed the forward: degrade to a
                # partial merge exactly as for an unreachable peer, but
                # counted separately — shedding is a load signal, not a
                # liveness one.
                METRICS.inc("federation.link", (link.name, "shed"))
            except DeadlineExceeded:
                METRICS.inc("federation.link", (link.name, "expired"))
            except asyncio.CancelledError:
                if budget_exhausted["flag"]:
                    # Cancelled mid-flight by a spent budget: a budget
                    # outcome.  Cancellation from an early ``needed``
                    # exit counts nothing, like the sync paths.
                    METRICS.inc("federation.link", (link.name, "expired"))
                raise
            except Exception:  # noqa: BLE001 - unreachable peers are skipped
                # the span already recorded the failure outcome
                METRICS.inc("federation.link", (link.name, "unreachable"))
            finally:
                ledger.release()

    pending = set()
    link_index = {}
    for index, link in enumerate(links):
        task = asyncio.ensure_future(forward_one(index, link))
        link_index[task] = index
        pending.add(task)
    try:
        while pending:
            budget = ledger.remaining()
            timeout = None if math.isinf(budget) else max(0.0, budget)
            done, pending = await asyncio.wait(
                pending, timeout=timeout, return_when=asyncio.FIRST_COMPLETED
            )
            if not done:
                budget_exhausted["flag"] = True
                break  # budget spent: return the partial sweep
            if needed > 0:
                gathered = sum(len(r) for r in results if r)
                if gathered >= needed:
                    break
    finally:
        for task in pending:
            task.cancel()
            if budget_exhausted["flag"] and not started.get(link_index[task]):
                # Never started: counted like the serial sweep's skip.
                METRICS.inc(
                    "federation.link", (links[link_index[task]].name, "expired")
                )
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
    # Snapshot for symmetry with the sync fan-out.
    return list(results)
