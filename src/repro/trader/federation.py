"""Trader federation (§2.2): links between traders with hop-limited search.

A link names a peer trader and a *forwarder* — a callable taking an
import-request wire dict (and, for context-aware forwarders, a ``ctx``
keyword) and returning a list of offer wire dicts.  For co-located
traders the forwarder calls the peer's
:meth:`~repro.trader.trader.LocalTrader.import_wire` directly; for
networked federation :meth:`repro.trader.trader.TraderService.link_to`
installs a forwarder that issues the IMPORT RPC.

Hop budget and loop breaking are carried by the request's
:class:`~repro.context.CallContext` (``hops`` and ``visited``); the
``hop_limit``/``visited`` wire fields remain as the on-the-wire encoding
and as a compatibility surface for pre-context callers.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.context import CallContext

Forwarder = Callable[..., List[Dict[str, Any]]]


def _accepts_ctx(forwarder: Forwarder) -> bool:
    """True when the forwarder takes a ``ctx`` keyword (or ``**kwargs``)."""
    try:
        signature = inspect.signature(forwarder)
    except (TypeError, ValueError):  # builtins / odd callables: stay legacy
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
    return "ctx" in signature.parameters


@dataclass
class TraderLink:
    """One edge of the trading graph."""

    name: str
    forwarder: Forwarder
    # A link may cap how deep queries travel onward from here, on top of
    # the request's own hop budget (the ODP notion of link scope).
    max_hops: int = 8
    _wants_ctx: Optional[bool] = field(default=None, repr=False, compare=False)

    def forward(
        self,
        request_wire: Dict[str, Any],
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        capped = dict(request_wire)
        # A request that omits hop_limit gets this link's full allowance —
        # min() against a default of 0 would silently zero the budget.
        budget = capped.get("hop_limit", self.max_hops)
        capped["hop_limit"] = min(budget, self.max_hops)
        if ctx is not None:
            if ctx.hops is not None:
                capped["hop_limit"] = min(capped["hop_limit"], ctx.hops)
            # The link scope narrows the context's budget as well: the
            # peer trusts the context over the legacy wire field.
            ctx = ctx.derive(hops=capped["hop_limit"])
        if self._wants_ctx is None:
            self._wants_ctx = _accepts_ctx(self.forwarder)
        if self._wants_ctx:
            return self.forwarder(capped, ctx=ctx)
        return self.forwarder(capped)
