"""Trader federation (§2.2): links between traders with hop-limited search.

A link names a peer trader and a *forwarder* — any callable taking an
import-request wire dict and returning a list of offer wire dicts.  For
co-located traders the forwarder calls the peer's
:meth:`~repro.trader.trader.LocalTrader.import_wire` directly; for
networked federation :meth:`repro.trader.trader.TraderService.link_to`
installs a forwarder that issues the IMPORT RPC.  Loops are broken by the
``visited`` trader-id list each request accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

Forwarder = Callable[[Dict[str, Any]], List[Dict[str, Any]]]


@dataclass
class TraderLink:
    """One edge of the trading graph."""

    name: str
    forwarder: Forwarder
    # A link may cap how deep queries travel onward from here, on top of
    # the request's own hop limit (the ODP notion of link scope).
    max_hops: int = 8

    def forward(self, request_wire: Dict[str, Any]) -> List[Dict[str, Any]]:
        capped = dict(request_wire)
        capped["hop_limit"] = min(capped.get("hop_limit", 0), self.max_hops)
        return self.forwarder(capped)
