"""The type manager: registry of service types with a subtype hierarchy.

Models the type management system for an ODP trader [5]: types are
registered under unique names, may declare super-types, and import
requests match any registered subtype of the requested type.  The manager
also tracks *standardisation* metadata (when a type became available),
which the market simulation uses to quantify §2.2's time-to-market
argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.trader.errors import DuplicateServiceType, UnknownServiceType
from repro.trader.service_types import ServiceType


class TypeManager:
    """Stores service types; answers subtype queries."""

    def __init__(self) -> None:
        self._types: Dict[str, ServiceType] = {}
        self._registered_at: Dict[str, float] = {}
        self._masked: Set[str] = set()
        # matching_types is the import hot path; memoise per (name,
        # structural) until the type graph or mask set changes.
        self._match_cache: Dict[Tuple[str, bool], List[str]] = {}

    def _invalidate(self) -> None:
        self._match_cache.clear()

    # -- management interface (§2.1: insert/delete service type entries) -----

    def add(self, service_type: ServiceType, now: float = 0.0) -> None:
        if service_type.name in self._types:
            raise DuplicateServiceType(
                f"service type {service_type.name!r} already registered"
            )
        for super_name in service_type.super_types:
            if super_name not in self._types:
                raise UnknownServiceType(
                    f"{service_type.name}: unknown super type {super_name!r}"
                )
        self._types[service_type.name] = service_type
        self._registered_at[service_type.name] = now
        self._invalidate()

    def remove(self, name: str) -> bool:
        self._masked.discard(name)
        self._registered_at.pop(name, None)
        self._invalidate()
        return self._types.pop(name, None) is not None

    def mask(self, name: str) -> None:
        """Hide a type from matching without deleting it (deprecation)."""
        self.get(name)
        self._masked.add(name)
        self._invalidate()

    def unmask(self, name: str) -> None:
        self._masked.discard(name)
        self._invalidate()

    def masked(self, name: str) -> bool:
        return name in self._masked

    # -- queries ------------------------------------------------------------

    def get(self, name: str) -> ServiceType:
        service_type = self._types.get(name)
        if service_type is None:
            raise UnknownServiceType(f"unknown service type {name!r}")
        return service_type

    def has(self, name: str) -> bool:
        return name in self._types

    def names(self) -> List[str]:
        return sorted(self._types)

    def registered_at(self, name: str) -> Optional[float]:
        return self._registered_at.get(name)

    def declared_subtypes(self, name: str) -> Set[str]:
        """Transitive closure of the declared super-type hierarchy."""
        self.get(name)
        result: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for candidate in self._types.values():
                if candidate.name in result:
                    continue
                for super_name in candidate.super_types:
                    if super_name == name or super_name in result:
                        result.add(candidate.name)
                        changed = True
                        break
        return result

    def matching_types(self, name: str, structural: bool = False) -> List[str]:
        """Type names whose offers satisfy a request for ``name``.

        Always includes the type itself and its declared subtypes; with
        ``structural=True`` also any unrelated type that structurally
        conforms.  Masked types never match.
        """
        cached = self._match_cache.get((name, structural))
        if cached is not None:
            return list(cached)
        base = self.get(name)
        matches = {name} | self.declared_subtypes(name)
        if structural:
            for candidate in self._types.values():
                if candidate.name not in matches and candidate.conforms_to(base):
                    matches.add(candidate.name)
        result = sorted(m for m in matches if m not in self._masked)
        self._match_cache[(name, structural)] = result
        return list(result)

    def is_subtype(self, sub_name: str, super_name: str) -> bool:
        if sub_name == super_name:
            return True
        return sub_name in self.declared_subtypes(super_name)

    def __len__(self) -> int:
        return len(self._types)

    def __iter__(self) -> Iterable[ServiceType]:
        return iter(list(self._types.values()))
