"""Service types: the central notion of ODP trading (§2.1).

A service type couples an operational interface signature with a set of
characterising attribute (property) types.  Exported offers must refer to
a registered service type and supply a value for every attribute; import
requests select offers by type (or any subtype) plus attribute
constraints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sidl.codec import (
    interface_from_wire,
    interface_to_wire,
    type_from_wire,
    type_to_wire,
)
from repro.sidl.errors import SidlTypeError
from repro.sidl.sid import ServiceDescription
from repro.sidl.subtyping import interface_conforms, is_subtype
from repro.sidl.types import (
    BOOLEAN,
    DOUBLE,
    EnumType,
    InterfaceType,
    LONG,
    STRING,
    SidlType,
)
from repro.trader.errors import InvalidOfferProperties


class ServiceType:
    """A standardised service class: interface type + attribute types."""

    def __init__(
        self,
        name: str,
        interface: InterfaceType,
        attributes: Sequence[Tuple[str, SidlType]],
        super_types: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.interface = interface
        self.attributes: Dict[str, SidlType] = dict(attributes)
        self.super_types = tuple(super_types)

    # -- offer validation -----------------------------------------------------

    def check_properties(self, properties: Dict[str, Any]) -> Dict[str, Any]:
        """Validate an offer's property values against the attribute types.

        Every declared attribute must be present (the paper: the offer
        "has to specify the values for all attributes of the service
        type"); unknown extra properties are allowed and kept, supporting
        value-added description.
        """
        if not isinstance(properties, dict):
            raise InvalidOfferProperties(f"properties must be a dict: {properties!r}")
        from repro.trader.dynamic import is_dynamic

        checked: Dict[str, Any] = {}
        for attr_name, attr_type in self.attributes.items():
            if attr_name not in properties:
                raise InvalidOfferProperties(
                    f"offer for {self.name} missing attribute {attr_name!r}"
                )
            value = properties[attr_name]
            if is_dynamic(value):
                # late-bound: the type is checked against the live value
                # at import time, not at export time
                checked[attr_name] = value
                continue
            try:
                checked[attr_name] = attr_type.check(value)
            except SidlTypeError as exc:
                raise InvalidOfferProperties(f"{self.name}.{attr_name}: {exc}")
        for key, value in properties.items():
            if key not in checked:
                checked[key] = value
        return checked

    # -- type relationships -----------------------------------------------------

    def conforms_to(self, base: "ServiceType") -> bool:
        """Structural service-type conformance.

        A type serves requests for ``base`` when its interface conforms
        and it carries at least the base's attributes at subtypes.  (The
        declared ``super_types`` hierarchy is managed separately by the
        type manager; this is the structural check.)
        """
        if not interface_conforms(self.interface, base.interface):
            return False
        for attr_name, base_attr in base.attributes.items():
            own = self.attributes.get(attr_name)
            if own is None or not is_subtype(own, base_attr):
                return False
        return True

    # -- wire form --------------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "interface": interface_to_wire(self.interface, {}),
            "attributes": [
                [attr_name, type_to_wire(attr_type, {})]
                for attr_name, attr_type in self.attributes.items()
            ],
            "super_types": list(self.super_types),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ServiceType":
        memo: Dict[str, SidlType] = {}
        interface = interface_from_wire(data["interface"], {}, memo)
        attributes = [
            (attr_name, type_from_wire(attr_data, {}, memo))
            for attr_name, attr_data in data["attributes"]
        ]
        return cls(data["name"], interface, attributes, data.get("super_types", ()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceType):
            return NotImplemented
        return self.to_wire() == other.to_wire()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServiceType {self.name} attrs={sorted(self.attributes)}>"


def _attribute_type_for(value: Any) -> SidlType:
    if value is True or value is False:
        return BOOLEAN
    if isinstance(value, int):
        return LONG
    if isinstance(value, float):
        return DOUBLE
    return STRING


def service_type_from_sid(
    sid: ServiceDescription,
    name: Optional[str] = None,
    reserved: Sequence[str] = ("ServiceID", "TOD", "ServiceType"),
) -> ServiceType:
    """Derive a service type from a SID's ``COSM_TraderExport`` (§4.1).

    This is the maturation path: once an innovative service's description
    stabilises, its export embedding *is* the service type — the interface
    signature comes from the SID, attribute types are inferred from the
    exported attribute values (enum-typed attributes keep their declared
    enum when the SID declares one).
    """
    export = sid.trader_export or {}
    attributes: List[Tuple[str, SidlType]] = []
    for attr_name, value in export.items():
        if attr_name in reserved:
            continue
        declared = _declared_enum_for(sid, value)
        attributes.append((attr_name, declared or _attribute_type_for(value)))
    return ServiceType(
        name or sid.service_type_name or sid.name,
        sid.interface,
        attributes,
    )


def _declared_enum_for(sid: ServiceDescription, value: Any) -> Optional[SidlType]:
    """Find the SID-declared enum that an exported label value belongs to."""
    if not isinstance(value, str):
        return None
    for sidl_type in sid.types.values():
        if isinstance(sidl_type, EnumType) and value in sidl_type.labels:
            return sidl_type
    return None
