"""Service offers and the trader's offer store."""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from heapq import merge as _heap_merge
from typing import (  # noqa: F401
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.naming.refs import ServiceRef
from repro.telemetry.metrics import METRICS
from repro.trader.dynamic import is_dynamic
from repro.trader.errors import OfferNotFound


@dataclass
class ServiceOffer:
    """One exported offer: a reference plus characterising properties.

    ``expires_at`` implements offer lifetimes: an expired offer never
    matches an import and is reaped by the trader's expiry sweep.  ``None``
    means the offer lives until withdrawn.

    ``lease_seconds`` is the liveness lease granted at export: exporters
    refresh it via RENEW (the service runtime heartbeats it), and a lease
    that lapses — because the exporter crashed or lost connectivity —
    takes the offer out of matching without any explicit withdraw.
    """

    offer_id: str
    service_type: str
    ref: Dict[str, Any]  # ServiceRef wire form (kept marshallable)
    properties: Dict[str, Any] = field(default_factory=dict)
    exported_at: float = 0.0
    expires_at: Optional[float] = None
    lease_seconds: Optional[float] = None

    def service_ref(self) -> ServiceRef:
        return ServiceRef.from_wire(self.ref)

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def renew(self, now: float) -> Optional[float]:
        """Refresh the lease: a fresh ``lease_seconds`` of life from ``now``.

        A no-op for offers exported without a lease (they never expire).
        Returns the new ``expires_at``.
        """
        if self.lease_seconds is not None:
            self.expires_at = now + self.lease_seconds
        return self.expires_at

    def to_wire(self) -> Dict[str, Any]:
        return {
            "offer_id": self.offer_id,
            "service_type": self.service_type,
            "ref": dict(self.ref),
            "properties": dict(self.properties),
            "exported_at": self.exported_at,
            "expires_at": self.expires_at,
            "lease_seconds": self.lease_seconds,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ServiceOffer":
        return cls(
            offer_id=data["offer_id"],
            service_type=data["service_type"],
            ref=data["ref"],
            properties=data.get("properties", {}),
            exported_at=data.get("exported_at", 0.0),
            expires_at=data.get("expires_at"),
            lease_seconds=data.get("lease_seconds"),
        )


def _indexable(value: Any) -> bool:
    """Static, hashable values go in the equality index; the rest cannot.

    A dynamic-property marker's stored form is a dict, and its *resolved*
    value — the one constraints see — is unknown until import time, so
    such offers must always survive index pre-filtering.
    """
    if is_dynamic(value):
        return False
    try:
        hash(value)
    except TypeError:
        return False
    return True


def _range_class(value: Any) -> Optional[str]:
    """Which sorted-index value class ``value`` belongs to, if any.

    Numbers (bools included — they *are* ints under comparison) share one
    total order; strings another.  Everything else — dynamic markers,
    containers — has no order a range conjunct could exploit: comparing
    such a value against a numeric or string literal raises ``TypeError``,
    which constraint semantics turn into ``False``, so leaving those
    offers out of a range pre-filter is *correct*, not just convenient.
    Dynamic markers are the one exception (their import-time value is
    unknown) and they are re-admitted via the unindexed fallback bucket.
    """
    if isinstance(value, bool) or isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    return None


class _SortedValues:
    """One sorted run of ``(value, seq, offer_id)`` plus a write overlay.

    Keeping the run exactly sorted on every insert would cost an O(n)
    memmove per export at million-offer scale, so writes land in an
    unsorted ``pending`` list and removals in a ``dead`` tombstone set;
    both fold into the sorted run when they grow past a threshold
    (geometric in the run length, so a bulk load compacts O(log n)
    times).  Range lookups bisect the run and linearly scan the small
    overlay; ordered walks force a full compaction first.
    """

    #: Overlay sizes above which a *query* forces compaction.  Mutation
    #: uses ``max(_QUERY_LIMIT, len(entries) >> 3)`` so bulk loads stay
    #: amortised-linear while point queries never scan a huge overlay.
    _QUERY_LIMIT = 512

    __slots__ = ("entries", "pending", "dead", "ids")

    def __init__(self) -> None:
        self.entries: List[Tuple[Any, int, str]] = []
        self.pending: List[Tuple[Any, int, str]] = []
        self.dead: Set[Tuple[Any, int, str]] = set()
        self.ids: Dict[str, Tuple[Any, int]] = {}

    def add(self, value: Any, seq: int, offer_id: str) -> None:
        entry = (value, seq, offer_id)
        # Re-adding an entry that was just tombstoned (modify back to the
        # same value) must cancel the tombstone, not duplicate the entry.
        if entry in self.dead:
            self.dead.discard(entry)
        else:
            self.pending.append(entry)
        self.ids[offer_id] = (value, seq)
        limit = max(self._QUERY_LIMIT, len(self.entries) >> 3)
        if len(self.pending) > limit or len(self.dead) > limit:
            self.compact()

    def discard(self, value: Any, seq: int, offer_id: str) -> None:
        if self.ids.pop(offer_id, None) is None:
            return
        entry = (value, seq, offer_id)
        try:
            self.pending.remove(entry)
        except ValueError:
            self.dead.add(entry)

    def compact(self) -> None:
        if self.dead:
            dead = self.dead
            self.entries = [entry for entry in self.entries if entry not in dead]
            self.pending = [entry for entry in self.pending if entry not in dead]
            self.dead = set()
        if self.pending:
            # Timsort gallops over the already-sorted run, so this is an
            # O(n + k log k) merge, not a from-scratch sort.
            self.entries.extend(self.pending)
            self.entries.sort()
            self.pending = []

    def ids_matching(self, operator: str, literal: Any) -> Set[str]:
        """Live offer ids whose indexed value satisfies ``value OP literal``."""
        if len(self.pending) > self._QUERY_LIMIT or len(self.dead) > self._QUERY_LIMIT:
            self.compact()
        entries = self.entries
        # ``(x,)`` sorts before every ``(x, seq, id)`` and ``(x, inf)``
        # after (seq is always an int), giving clean half-open cuts.
        if operator == "<":
            start, stop = 0, bisect_left(entries, (literal,))
        elif operator == "<=":
            start, stop = 0, bisect_left(entries, (literal, float("inf")))
        elif operator == ">":
            start, stop = bisect_left(entries, (literal, float("inf"))), len(entries)
        else:  # ">="
            start, stop = bisect_left(entries, (literal,)), len(entries)
        dead = self.dead
        matched = {entry[2] for entry in entries[start:stop] if entry not in dead}
        for entry in self.pending:
            value = entry[0]
            try:
                if (
                    (operator == "<" and value < literal)
                    or (operator == "<=" and value <= literal)
                    or (operator == ">" and value > literal)
                    or (operator == ">=" and value >= literal)
                ):
                    matched.add(entry[2])
            except TypeError:  # mixed class within the overlay: no match
                continue
        return matched

    def walk(self, reverse: bool = False) -> Iterator[Tuple[Any, int, str]]:
        """Yield live entries ordered by ``(value, seq)``.

        For ``reverse`` the values descend but *ties keep ascending
        seq* — exactly the order a ``max`` preference ranks candidates
        (stable sort on the negated value preserves insertion order).
        """
        self.compact()
        entries = self.entries
        if not reverse:
            yield from entries
            return
        upper = len(entries)
        while upper:
            lower = upper - 1
            value = entries[lower][0]
            while lower and entries[lower - 1][0] == value:
                lower -= 1
            yield from entries[lower:upper]
            upper = lower


class OfferStore:
    """Offers indexed by id, by service type, and by property equality.

    The equality index maps ``(service_type, property) -> value -> ids``
    so an import whose constraint pins ``Prop == literal`` can pre-filter
    candidates without evaluating the constraint against every offer.
    Values that cannot be indexed (unhashable, or dynamic-property
    markers whose import-time value is unknown) land in a per-property
    fallback set that every index lookup includes.
    """

    def __init__(self, prefix: str = "offer", range_index: bool = True) -> None:
        self._prefix = prefix
        self._by_id: Dict[str, ServiceOffer] = {}
        self._by_type: Dict[str, Dict[str, ServiceOffer]] = {}
        self._eq_index: Dict[Tuple[str, str], Dict[Any, Set[str]]] = {}
        self._unindexed: Dict[Tuple[str, str], Set[str]] = {}
        self._range_index: Dict[Tuple[str, str], Dict[str, _SortedValues]] = {}
        self._range_enabled = range_index
        # Exactly what _index put where, per offer id.  _unindex replays
        # this record instead of re-deriving it from offer.properties,
        # which a caller may have mutated or aliased since indexing —
        # re-deriving would leave stale index entries behind.
        self._indexed: Dict[str, List[Tuple[Any, ...]]] = {}
        # Store-wide insertion sequence, stable across property modifies,
        # so sorted-index walks tie-break in exactly candidate order.
        self._order: Dict[str, int] = {}
        self._order_counter = itertools.count(1)
        self._counters: Dict[str, int] = {}

    @property
    def prefix(self) -> str:
        return self._prefix

    def new_offer_id(self, service_type: str) -> str:
        """Mint ``prefix:type:n`` with a counter *per service type*.

        Per-type numbering makes the id a pure function of the export
        sequence for that type — a sharded deployment that partitions by
        type then mints the same ids a single trader would, which is what
        lets parity tests compare outcome maps verbatim.
        """
        count = self._counters.get(service_type, 0)
        # skip ids already present (e.g. after a snapshot restore)
        while True:
            count += 1
            candidate = f"{self._prefix}:{service_type}:{count}"
            if candidate not in self._by_id:
                self._counters[service_type] = count
                return candidate

    def _note_minted(self, offer: ServiceOffer) -> None:
        """Advance the per-type counter past an id minted elsewhere.

        Offers arrive without a local mint on replicas (delta streams)
        and restores; the counter must reflect the highest id *ever
        seen*, not the ids currently present — a promoted replica that
        re-minted a withdrawn offer's id would fork from the id sequence
        an unsharded trader produces.
        """
        head, _, suffix = offer.offer_id.rpartition(":")
        if suffix.isdigit() and head == f"{self._prefix}:{offer.service_type}":
            number = int(suffix)
            if number > self._counters.get(offer.service_type, 0):
                self._counters[offer.service_type] = number

    def minted(self, service_type: str) -> int:
        """Highest id number ever minted (or seen) for ``service_type``."""
        return self._counters.get(service_type, 0)

    def burn_to(self, service_type: str, count: int) -> None:
        """Advance the per-type counter to at least ``count``.

        Ids up to ``count`` are spent even if no offer carrying them
        survives — a migration recipient burns the donor's counter at
        begin so it can never re-mint an id the donor already used,
        even when every such offer was withdrawn before the copy.
        """
        if count > self._counters.get(service_type, 0):
            self._counters[service_type] = count

    def add(self, offer: ServiceOffer) -> None:
        self._note_minted(offer)
        existing = self._by_id.get(offer.offer_id)
        if existing is not None:
            # Idempotent re-add (replication retry, snapshot double-apply):
            # drop the old generation's index entries first.
            self._unindex(existing)
            if existing.service_type != offer.service_type:
                self._drop_from_type(existing)
        self._by_id[offer.offer_id] = offer
        self._by_type.setdefault(offer.service_type, {})[offer.offer_id] = offer
        self._index(offer)

    def get(self, offer_id: str) -> ServiceOffer:
        offer = self._by_id.get(offer_id)
        if offer is None:
            raise OfferNotFound(f"no offer {offer_id!r}")
        return offer

    def remove(self, offer_id: str) -> ServiceOffer:
        offer = self.get(offer_id)
        del self._by_id[offer_id]
        self._drop_from_type(offer)
        self._unindex(offer)
        self._order.pop(offer_id, None)
        return offer

    def _drop_from_type(self, offer: ServiceOffer) -> None:
        per_type = self._by_type.get(offer.service_type, {})
        per_type.pop(offer.offer_id, None)
        if not per_type:
            self._by_type.pop(offer.service_type, None)

    def replace_properties(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        offer = self.get(offer_id)
        self._unindex(offer)
        offer.properties = dict(properties)
        self._index(offer)
        return offer

    def of_types(self, type_names: Iterable[str]) -> List[ServiceOffer]:
        offers: List[ServiceOffer] = []
        for type_name in type_names:
            offers.extend(self._by_type.get(type_name, {}).values())
        return offers

    def candidates(
        self,
        type_names: Iterable[str],
        equalities: Iterable[Tuple[str, Any]],
        ranges: Iterable[Tuple[str, str, Any]] = (),
    ) -> List[ServiceOffer]:
        """Offers of ``type_names`` that can still satisfy the conjuncts.

        For each equality ``(property, literal)`` pair the index keeps
        only offers whose stored value equals the literal; for each range
        ``(property, operator, literal)`` triple the sorted index keeps
        only offers whose stored value satisfies the bound.  Both always
        re-admit offers whose stored value is unindexable (dynamic
        markers), since the import-time value may yet match.  A superset
        of the true matches: callers still run the full constraint, they
        just run it over far fewer offers.
        """
        equalities = list(equalities)
        ranges = list(ranges)
        if equalities:
            METRICS.inc("offers.index_hits", (self._prefix,))
            return self._filter(type_names, self._eq_bucket, equalities)
        if ranges and self._range_enabled:
            METRICS.inc("offers.range_hits", (self._prefix,))
            return self._filter(type_names, self._range_bucket, ranges)
        # No exploitable conjunct: the full per-type scan.  Counted, so
        # benchmark output can say *why* an import was fast or slow.
        METRICS.inc("offers.fallback_scans", (self._prefix,))
        return self.of_types(type_names)

    def _filter(self, type_names, bucket_for, conjuncts) -> List[ServiceOffer]:
        offers: List[ServiceOffer] = []
        for type_name in type_names:
            per_type = self._by_type.get(type_name)
            if not per_type:
                continue
            surviving: Optional[Set[str]] = None
            for conjunct in conjuncts:
                bucket = bucket_for(type_name, per_type, conjunct)
                surviving = bucket if surviving is None else surviving & bucket
                if not surviving:
                    break
            if surviving:
                # _by_type preserves insertion order; keep it for determinism
                offers.extend(
                    offer
                    for offer_id, offer in per_type.items()
                    if offer_id in surviving
                )
        return offers

    def _eq_bucket(self, type_name, per_type, conjunct) -> Set[str]:
        prop, literal = conjunct
        bucket = set(self._unindexed.get((type_name, prop), ()))
        try:
            exact = self._eq_index.get((type_name, prop), {}).get(literal)
        except TypeError:  # unhashable literal: index can't help
            exact = set(per_type)
        if exact:
            bucket |= exact
        return bucket

    def _range_bucket(self, type_name, per_type, conjunct) -> Set[str]:
        prop, operator, literal = conjunct
        literal_class = _range_class(literal)
        if literal_class is None:  # e.g. list literal: index can't help
            return set(per_type)
        bucket = set(self._unindexed.get((type_name, prop), ()))
        sorted_values = self._range_index.get((type_name, prop), {}).get(literal_class)
        if sorted_values is not None:
            bucket |= sorted_values.ids_matching(operator, literal)
        return bucket

    def ordered_by(
        self, type_names: Iterable[str], prop: str, reverse: bool = False
    ) -> Iterator[ServiceOffer]:
        """Yield offers in exactly min/max-preference rank order.

        Offers with a numeric value for ``prop`` come first, ordered by
        ``(value, position)`` — position being the offer's index in the
        ``of_types`` candidate list — with values descending when
        ``reverse``; offers where the preference is undefined (missing
        property, non-numeric value) follow in candidate order, matching
        ``Preference.apply`` term for term.  Callers that only need the
        top-k stop early and skip sorting the whole candidate set.

        Only sound when no offer of these types carries a dynamic marker
        for ``prop`` (its resolved value could be numeric); callers must
        check :meth:`has_unindexed` first.
        """
        type_names = list(type_names)
        streams = []
        defined: List[Dict[str, Tuple[Any, int]]] = []
        for position, type_name in enumerate(type_names):
            sorted_values = self._range_index.get((type_name, prop), {}).get("num")
            if sorted_values is None or not sorted_values.ids:
                defined.append({})
                continue
            defined.append(sorted_values.ids)
            streams.append(
                (
                    ((-value if reverse else value), position, seq, offer_id)
                    for value, seq, offer_id in sorted_values.walk(reverse)
                )
            )
        for _value, _position, _seq, offer_id in _heap_merge(*streams):
            offer = self._by_id.get(offer_id)
            if offer is not None:
                yield offer
        for position, type_name in enumerate(type_names):
            in_index = defined[position]
            for offer_id, offer in self._by_type.get(type_name, {}).items():
                if offer_id not in in_index:
                    yield offer

    def has_unindexed(self, type_name: str, prop: str) -> bool:
        """True when some offer's value for ``prop`` could not be indexed."""
        return bool(self._unindexed.get((type_name, prop)))

    @property
    def range_index_enabled(self) -> bool:
        return self._range_enabled

    def all(self) -> List[ServiceOffer]:
        return list(self._by_id.values())

    def count_for_type(self, type_name: str) -> int:
        return len(self._by_type.get(type_name, {}))

    def __len__(self) -> int:
        return len(self._by_id)

    # -- index maintenance ---------------------------------------------------

    def _index(self, offer: ServiceOffer) -> None:
        offer_id = offer.offer_id
        seq = self._order.get(offer_id)
        if seq is None:
            seq = self._order[offer_id] = next(self._order_counter)
        recorded: List[Tuple[Any, ...]] = []
        for prop, value in offer.properties.items():
            key = (offer.service_type, prop)
            if _indexable(value):
                self._eq_index.setdefault(key, {}).setdefault(value, set()).add(
                    offer_id
                )
                recorded.append(("eq", key, value))
            else:
                self._unindexed.setdefault(key, set()).add(offer_id)
                recorded.append(("fb", key))
            if self._range_enabled:
                value_class = _range_class(value)
                if value_class is not None:
                    per_class = self._range_index.setdefault(key, {})
                    sorted_values = per_class.get(value_class)
                    if sorted_values is None:
                        sorted_values = per_class[value_class] = _SortedValues()
                    sorted_values.add(value, seq, offer_id)
                    recorded.append(("rg", key, value_class, value, seq))
        self._indexed[offer_id] = recorded

    def _unindex(self, offer: ServiceOffer) -> None:
        # Replay the record of what _index actually stored rather than
        # walking offer.properties again: the caller may have mutated or
        # aliased that dict since, and deriving removals from the current
        # values would strand the original entries in the index forever.
        offer_id = offer.offer_id
        for entry in self._indexed.pop(offer_id, ()):
            kind, key = entry[0], entry[1]
            if kind == "eq":
                per_value = self._eq_index.get(key)
                if per_value is None:
                    continue
                ids = per_value.get(entry[2])
                if ids is None:
                    continue
                ids.discard(offer_id)
                if not ids:
                    del per_value[entry[2]]
                if not per_value:
                    del self._eq_index[key]
            elif kind == "fb":
                ids = self._unindexed.get(key)
                if ids is None:
                    continue
                ids.discard(offer_id)
                if not ids:
                    del self._unindexed[key]
            else:  # "rg"
                per_class = self._range_index.get(key)
                if per_class is None:
                    continue
                sorted_values = per_class.get(entry[2])
                if sorted_values is not None:
                    sorted_values.discard(entry[3], entry[4], offer_id)
