"""Service offers and the trader's offer store."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple  # noqa: F401

from repro.naming.refs import ServiceRef
from repro.telemetry.metrics import METRICS
from repro.trader.dynamic import is_dynamic
from repro.trader.errors import OfferNotFound


@dataclass
class ServiceOffer:
    """One exported offer: a reference plus characterising properties.

    ``expires_at`` implements offer lifetimes: an expired offer never
    matches an import and is reaped by the trader's expiry sweep.  ``None``
    means the offer lives until withdrawn.

    ``lease_seconds`` is the liveness lease granted at export: exporters
    refresh it via RENEW (the service runtime heartbeats it), and a lease
    that lapses — because the exporter crashed or lost connectivity —
    takes the offer out of matching without any explicit withdraw.
    """

    offer_id: str
    service_type: str
    ref: Dict[str, Any]  # ServiceRef wire form (kept marshallable)
    properties: Dict[str, Any] = field(default_factory=dict)
    exported_at: float = 0.0
    expires_at: Optional[float] = None
    lease_seconds: Optional[float] = None

    def service_ref(self) -> ServiceRef:
        return ServiceRef.from_wire(self.ref)

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def renew(self, now: float) -> Optional[float]:
        """Refresh the lease: a fresh ``lease_seconds`` of life from ``now``.

        A no-op for offers exported without a lease (they never expire).
        Returns the new ``expires_at``.
        """
        if self.lease_seconds is not None:
            self.expires_at = now + self.lease_seconds
        return self.expires_at

    def to_wire(self) -> Dict[str, Any]:
        return {
            "offer_id": self.offer_id,
            "service_type": self.service_type,
            "ref": dict(self.ref),
            "properties": dict(self.properties),
            "exported_at": self.exported_at,
            "expires_at": self.expires_at,
            "lease_seconds": self.lease_seconds,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ServiceOffer":
        return cls(
            offer_id=data["offer_id"],
            service_type=data["service_type"],
            ref=data["ref"],
            properties=data.get("properties", {}),
            exported_at=data.get("exported_at", 0.0),
            expires_at=data.get("expires_at"),
            lease_seconds=data.get("lease_seconds"),
        )


def _indexable(value: Any) -> bool:
    """Static, hashable values go in the equality index; the rest cannot.

    A dynamic-property marker's stored form is a dict, and its *resolved*
    value — the one constraints see — is unknown until import time, so
    such offers must always survive index pre-filtering.
    """
    if is_dynamic(value):
        return False
    try:
        hash(value)
    except TypeError:
        return False
    return True


class OfferStore:
    """Offers indexed by id, by service type, and by property equality.

    The equality index maps ``(service_type, property) -> value -> ids``
    so an import whose constraint pins ``Prop == literal`` can pre-filter
    candidates without evaluating the constraint against every offer.
    Values that cannot be indexed (unhashable, or dynamic-property
    markers whose import-time value is unknown) land in a per-property
    fallback set that every index lookup includes.
    """

    def __init__(self, prefix: str = "offer") -> None:
        self._prefix = prefix
        self._by_id: Dict[str, ServiceOffer] = {}
        self._by_type: Dict[str, Dict[str, ServiceOffer]] = {}
        self._eq_index: Dict[Tuple[str, str], Dict[Any, Set[str]]] = {}
        self._unindexed: Dict[Tuple[str, str], Set[str]] = {}
        self._counter = itertools.count(1)

    def new_offer_id(self, service_type: str) -> str:
        # skip ids already present (e.g. after a snapshot restore)
        while True:
            candidate = f"{self._prefix}:{service_type}:{next(self._counter)}"
            if candidate not in self._by_id:
                return candidate

    def add(self, offer: ServiceOffer) -> None:
        self._by_id[offer.offer_id] = offer
        self._by_type.setdefault(offer.service_type, {})[offer.offer_id] = offer
        self._index(offer)

    def get(self, offer_id: str) -> ServiceOffer:
        offer = self._by_id.get(offer_id)
        if offer is None:
            raise OfferNotFound(f"no offer {offer_id!r}")
        return offer

    def remove(self, offer_id: str) -> ServiceOffer:
        offer = self.get(offer_id)
        del self._by_id[offer_id]
        per_type = self._by_type.get(offer.service_type, {})
        per_type.pop(offer_id, None)
        if not per_type:
            self._by_type.pop(offer.service_type, None)
        self._unindex(offer)
        return offer

    def replace_properties(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        offer = self.get(offer_id)
        self._unindex(offer)
        offer.properties = dict(properties)
        self._index(offer)
        return offer

    def of_types(self, type_names: Iterable[str]) -> List[ServiceOffer]:
        offers: List[ServiceOffer] = []
        for type_name in type_names:
            offers.extend(self._by_type.get(type_name, {}).values())
        return offers

    def candidates(
        self,
        type_names: Iterable[str],
        equalities: Iterable[Tuple[str, Any]],
    ) -> List[ServiceOffer]:
        """Offers of ``type_names`` that can still satisfy ``equalities``.

        For each ``(property, literal)`` pair the index keeps only offers
        whose stored value equals the literal — plus every offer whose
        stored value is unindexable, since its import-time value may yet
        match.  A superset of the true matches: callers still run the
        full constraint, they just run it over far fewer offers.
        """
        equalities = list(equalities)
        if not equalities:
            # No pinned conjunct: the full per-type scan.  Counted, so
            # benchmark output can say *why* an import was fast or slow.
            METRICS.inc("offers.fallback_scans", (self._prefix,))
            return self.of_types(type_names)
        METRICS.inc("offers.index_hits", (self._prefix,))
        offers: List[ServiceOffer] = []
        for type_name in type_names:
            per_type = self._by_type.get(type_name)
            if not per_type:
                continue
            surviving: Optional[Set[str]] = None
            for prop, literal in equalities:
                bucket = set(self._unindexed.get((type_name, prop), ()))
                try:
                    exact = self._eq_index.get((type_name, prop), {}).get(literal)
                except TypeError:  # unhashable literal: index can't help
                    exact = set(per_type)
                if exact:
                    bucket |= exact
                surviving = bucket if surviving is None else surviving & bucket
                if not surviving:
                    break
            if surviving:
                # _by_type preserves insertion order; keep it for determinism
                offers.extend(
                    offer
                    for offer_id, offer in per_type.items()
                    if offer_id in surviving
                )
        return offers

    def all(self) -> List[ServiceOffer]:
        return list(self._by_id.values())

    def count_for_type(self, type_name: str) -> int:
        return len(self._by_type.get(type_name, {}))

    def __len__(self) -> int:
        return len(self._by_id)

    # -- equality index maintenance -----------------------------------------

    def _index(self, offer: ServiceOffer) -> None:
        for prop, value in offer.properties.items():
            key = (offer.service_type, prop)
            if _indexable(value):
                self._eq_index.setdefault(key, {}).setdefault(value, set()).add(
                    offer.offer_id
                )
            else:
                self._unindexed.setdefault(key, set()).add(offer.offer_id)

    def _unindex(self, offer: ServiceOffer) -> None:
        for prop, value in offer.properties.items():
            key = (offer.service_type, prop)
            if _indexable(value):
                per_value = self._eq_index.get(key)
                if per_value is None:
                    continue
                ids = per_value.get(value)
                if ids is None:
                    continue
                ids.discard(offer.offer_id)
                if not ids:
                    del per_value[value]
                if not per_value:
                    del self._eq_index[key]
            else:
                ids = self._unindexed.get(key)
                if ids is None:
                    continue
                ids.discard(offer.offer_id)
                if not ids:
                    del self._unindexed[key]
