"""Service offers and the trader's offer store."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional  # noqa: F401

from repro.naming.refs import ServiceRef
from repro.trader.errors import OfferNotFound


@dataclass
class ServiceOffer:
    """One exported offer: a reference plus characterising properties.

    ``expires_at`` implements offer lifetimes: an expired offer never
    matches an import and is reaped by the trader's purge sweep.  ``None``
    means the offer lives until withdrawn.
    """

    offer_id: str
    service_type: str
    ref: Dict[str, Any]  # ServiceRef wire form (kept marshallable)
    properties: Dict[str, Any] = field(default_factory=dict)
    exported_at: float = 0.0
    expires_at: Optional[float] = None

    def service_ref(self) -> ServiceRef:
        return ServiceRef.from_wire(self.ref)

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def to_wire(self) -> Dict[str, Any]:
        return {
            "offer_id": self.offer_id,
            "service_type": self.service_type,
            "ref": dict(self.ref),
            "properties": dict(self.properties),
            "exported_at": self.exported_at,
            "expires_at": self.expires_at,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ServiceOffer":
        return cls(
            offer_id=data["offer_id"],
            service_type=data["service_type"],
            ref=data["ref"],
            properties=data.get("properties", {}),
            exported_at=data.get("exported_at", 0.0),
            expires_at=data.get("expires_at"),
        )


class OfferStore:
    """Offers indexed by id and by service type."""

    def __init__(self, prefix: str = "offer") -> None:
        self._prefix = prefix
        self._by_id: Dict[str, ServiceOffer] = {}
        self._by_type: Dict[str, Dict[str, ServiceOffer]] = {}
        self._counter = itertools.count(1)

    def new_offer_id(self, service_type: str) -> str:
        # skip ids already present (e.g. after a snapshot restore)
        while True:
            candidate = f"{self._prefix}:{service_type}:{next(self._counter)}"
            if candidate not in self._by_id:
                return candidate

    def add(self, offer: ServiceOffer) -> None:
        self._by_id[offer.offer_id] = offer
        self._by_type.setdefault(offer.service_type, {})[offer.offer_id] = offer

    def get(self, offer_id: str) -> ServiceOffer:
        offer = self._by_id.get(offer_id)
        if offer is None:
            raise OfferNotFound(f"no offer {offer_id!r}")
        return offer

    def remove(self, offer_id: str) -> ServiceOffer:
        offer = self.get(offer_id)
        del self._by_id[offer_id]
        per_type = self._by_type.get(offer.service_type, {})
        per_type.pop(offer_id, None)
        if not per_type:
            self._by_type.pop(offer.service_type, None)
        return offer

    def replace_properties(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        offer = self.get(offer_id)
        offer.properties = dict(properties)
        return offer

    def of_types(self, type_names: Iterable[str]) -> List[ServiceOffer]:
        offers: List[ServiceOffer] = []
        for type_name in type_names:
            offers.extend(self._by_type.get(type_name, {}).values())
        return offers

    def all(self) -> List[ServiceOffer]:
        return list(self._by_id.values())

    def count_for_type(self, type_name: str) -> int:
        return len(self._by_type.get(type_name, {}))

    def __len__(self) -> int:
        return len(self._by_id)
