"""The trader: export, withdraw, modify, import — plus the RPC service.

Implements the compound ODP trader of §2.1: a computational interface for
exporters and importers, a management interface for the service-type
domain, and (via :mod:`repro.trader.federation`) links to peer traders.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.context import CallContext, Clock, current_context, use_context
from repro.naming.refs import ServiceRef
from repro.net.endpoints import Address
from repro.rpc.client import RpcClient
from repro.rpc.codec import CODECS
from repro.rpc.errors import DeadlineExceeded, ServerShedding
from repro.rpc.server import RpcProgram, RpcServer
from repro.rpc.transport import SimTransport
from repro.sidl import layout
from repro.telemetry.log import LOG
from repro.telemetry.metrics import METRICS
from repro.trader.constraints import parse_constraint
from repro.trader.dynamic import resolve_properties
from repro.trader.errors import TraderError
from repro.trader.federation import (
    DEFAULT_FANOUT_WORKERS,
    TraderLink,
    fan_out,
    fan_out_async,
)
from repro.trader.offers import OfferStore, ServiceOffer
from repro.trader.policies import parse_preference
from repro.trader.service_types import ServiceType
from repro.trader.type_manager import TypeManager

TRADER_PROGRAM = 100200

_PROC_EXPORT = 1
_PROC_WITHDRAW = 2
_PROC_MODIFY = 3
_PROC_IMPORT = 4
_PROC_ADD_TYPE = 5
_PROC_REMOVE_TYPE = 6
_PROC_LIST_TYPES = 7
_PROC_GET_TYPE = 8
_PROC_LIST_OFFERS = 9
_PROC_MASK_TYPE = 10
_PROC_RENEW = 11

# Compiled wire codecs for the trader procedures whose signatures the
# SID pins down statically.  RENEW is the hot one — every exported offer
# heartbeats it for its whole lifetime — and the management calls are
# pure fixed-shape string traffic.  Procedures built on genuinely
# dynamic values (IMPORT constraints, EXPORT/MODIFY property dicts,
# type definitions) stay on the tagged path by simply not registering;
# EXPORT registers its *result* (the offer id string) only.
_OFFER_ID_ARGS = layout.struct(offer_id=layout.string())
_NAME_ARGS = layout.struct(name=layout.string())
CODECS.register(
    TRADER_PROGRAM, 1, _PROC_RENEW,
    args=_OFFER_ID_ARGS, result=layout.optional(layout.f64()),
)
CODECS.register(
    TRADER_PROGRAM, 1, _PROC_WITHDRAW,
    args=_OFFER_ID_ARGS, result=layout.boolean(),
)
CODECS.register(
    TRADER_PROGRAM, 1, _PROC_REMOVE_TYPE,
    args=_NAME_ARGS, result=layout.boolean(),
)
CODECS.register(
    TRADER_PROGRAM, 1, _PROC_MASK_TYPE,
    args=_NAME_ARGS, result=layout.boolean(),
)
CODECS.register(
    TRADER_PROGRAM, 1, _PROC_LIST_TYPES,
    args=layout.struct(), result=layout.seq(layout.string()),
)
CODECS.register(TRADER_PROGRAM, 1, _PROC_EXPORT, result=layout.string())


@dataclass
class ImportRequest:
    """An importer's query (step 2 of Fig. 1)."""

    service_type: str
    constraint: str = ""
    preference: str = ""
    max_matches: int = 0  # 0 = unlimited
    structural: bool = False  # also match structurally conforming types
    hop_limit: int = 0  # 0 = this trader only
    visited: List[str] = field(default_factory=list)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "service_type": self.service_type,
            "constraint": self.constraint,
            "preference": self.preference,
            "max_matches": self.max_matches,
            "structural": self.structural,
            "hop_limit": self.hop_limit,
            "visited": list(self.visited),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ImportRequest":
        return cls(
            service_type=data["service_type"],
            constraint=data.get("constraint", ""),
            preference=data.get("preference", ""),
            max_matches=data.get("max_matches", 0),
            structural=data.get("structural", False),
            hop_limit=data.get("hop_limit", 0),
            visited=list(data.get("visited", [])),
        )


class LocalTrader:
    """The trader's logic, independent of any transport."""

    def __init__(
        self,
        trader_id: str = "trader",
        type_manager: Optional[TypeManager] = None,
        seed: int = 0,
        dynamic_evaluator=None,
        fanout_workers: int = DEFAULT_FANOUT_WORKERS,
        clock: Optional[Clock] = None,
        offer_prefix: Optional[str] = None,
        range_index: bool = True,
    ) -> None:
        self.trader_id = trader_id
        self.types = type_manager or TypeManager()
        # ``offer_prefix`` decouples the minted offer-id namespace from
        # the trader's identity: shards of one logical trader share the
        # router's prefix so the ids they mint are indistinguishable from
        # a single trader's, while metrics stay keyed by trader_id.
        self.offers = OfferStore(
            prefix=offer_prefix or trader_id, range_index=range_index
        )
        self.links: Dict[str, TraderLink] = {}
        self.rng = random.Random(seed)
        # resolves dynamic-property markers at import time (ODP-style
        # late-bound attributes); None = dynamic properties never match
        self.dynamic_evaluator = dynamic_evaluator
        # Federated sweeps over 2+ links fan out on a bounded worker pool
        # (1 = always serial); ``clock`` feeds deadline splitting and the
        # per-link spans.  None freezes time at each import's ``now`` —
        # right for virtual-time tests, where budgets must not tick
        # between forwards; wall-clock traders pass their transport clock.
        self.fanout_workers = fanout_workers
        self.clock = clock
        # On virtual-time stacks concurrency comes from coroutines, not
        # threads: when set (by TraderService over a SimTransport), the
        # fan-out runs as tasks on this loop so links overlap in virtual
        # time while staying deterministic.
        self.fanout_loop = None
        self.exports_accepted = 0
        self.imports_served = 0

    # -- management interface ------------------------------------------------

    def add_type(self, service_type: ServiceType, now: float = 0.0) -> None:
        self.types.add(service_type, now)

    def remove_type(self, name: str) -> bool:
        return self.types.remove(name)

    def mask_type(self, name: str) -> None:
        self.types.mask(name)

    # -- exporter interface (step 1 of Fig. 1) ---------------------------------

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        now: float = 0.0,
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        """Register a service offer; returns the offer id.

        ``lease_seconds`` grants a liveness lease: the offer stops
        matching at ``now + lease_seconds`` unless the exporter refreshes
        it via :meth:`renew` (the RENEW wire operation — service runtimes
        heartbeat it).  ``None`` keeps the historical behaviour: the
        offer lives until withdrawn.  ``lifetime`` is the legacy spelling
        of the same grant — a lifetime-exported offer is renewable too.
        """
        if lease_seconds is None:
            lease_seconds = lifetime
        declared = self.types.get(service_type)
        checked = declared.check_properties(properties)
        ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else dict(ref)
        offer = ServiceOffer(
            offer_id=self.offers.new_offer_id(service_type),
            service_type=service_type,
            ref=ref_wire,
            properties=checked,
            exported_at=now,
            expires_at=None if lease_seconds is None else now + lease_seconds,
            lease_seconds=lease_seconds,
        )
        self.offers.add(offer)
        self.exports_accepted += 1
        self._gauge_live_offers()
        return offer.offer_id

    def renew(self, offer_id: str, now: float = 0.0) -> Optional[float]:
        """Refresh an offer's lease; returns the new ``expires_at``.

        Renewing a lease that lapsed but was not yet swept revives the
        offer — the grace a slow heartbeat gets before
        :meth:`expire_offers` makes the eviction final.  Renewing an
        offer exported without a lease is a no-op (returns ``None``).
        Raises :class:`~repro.trader.errors.OfferNotFound` once the offer
        is withdrawn or swept, which tells the exporter to re-export.
        """
        offer = self.offers.get(offer_id)
        expires_at = offer.renew(now)
        METRICS.inc("trader.offers.renewed", (self.trader_id,))
        return expires_at

    def expire_offers(self, now: float) -> int:
        """Sweep lease-expired offers out of the store; returns the count.

        Matching already excludes expired offers lazily — the sweep is
        about memory and index hygiene: evicted offers leave the equality
        index as well, so a dead fleet stops occupying candidate buckets.
        """
        expired = [o.offer_id for o in self.offers.all() if o.expired(now)]
        for offer_id in expired:
            self.offers.remove(offer_id)
        if expired:
            METRICS.inc(
                "trader.offers.expired", (self.trader_id, "swept"), amount=len(expired)
            )
            self._gauge_live_offers()
            if LOG.active:
                for offer_id in expired:
                    LOG.event(
                        "trader.lease_expired",
                        level="warning",
                        at=now,
                        trader=self.trader_id,
                        offer=offer_id,
                        mode="swept",
                    )
        return len(expired)

    def purge_expired(self, now: float) -> int:
        """Legacy alias for :meth:`expire_offers`."""
        return self.expire_offers(now)

    def withdraw(self, offer_id: str) -> ServiceOffer:
        offer = self.offers.remove(offer_id)
        self._gauge_live_offers()
        return offer

    def _gauge_live_offers(self) -> None:
        """Keep the live-offer gauge current for the STATS snapshot."""
        METRICS.set_gauge("trader.offers.live", len(self.offers), (self.trader_id,))

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> ServiceOffer:
        offer = self.offers.get(offer_id)
        declared = self.types.get(offer.service_type)
        checked = declared.check_properties(properties)
        return self.offers.replace_properties(offer_id, checked)

    # -- importer interface (steps 2-3 of Fig. 1) -------------------------------

    def import_(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        """Match offers; forward to linked traders within the hop budget.

        The hop budget and visited scope live on the
        :class:`~repro.context.CallContext`; the request's legacy
        ``hop_limit``/``visited`` fields are folded into the context when
        no explicit budget was set (the compatibility shim).  Without an
        explicit ``ctx`` the ambient request context — installed by the
        RPC server around the IMPORT handler — is used, so federated
        queries share one budget end to end.
        """
        ctx = self._import_context(request, ctx)
        self.imports_served += 1
        METRICS.inc("trader.imports", (self.trader_id,))
        constraint = parse_constraint(request.constraint)
        preference = parse_preference(request.preference)
        type_names = self.types.matching_types(
            request.service_type, structural=request.structural
        )
        fast = self._ordered_fast_path(request, constraint, preference, type_names, now)
        if fast is not None:
            return fast
        # Equality conjuncts pinned by the constraint pre-filter candidates
        # through the offer store's index; range conjuncts (ceilings and
        # floors) through the sorted index; no conjuncts = full type scan.
        candidates = self.offers.candidates(
            type_names, constraint.equality_conjuncts, constraint.range_conjuncts
        )
        matched = []
        for offer in candidates:
            if offer.expired(now):
                # Lazy exclusion: a lapsed lease stops matching before any
                # sweep runs, so importers never see a dead exporter.
                METRICS.inc("trader.offers.expired", (self.trader_id, "lazy"))
                if LOG.active:
                    LOG.event(
                        "trader.lease_expired",
                        level="warning",
                        at=now,
                        trader=self.trader_id,
                        offer=offer.offer_id,
                        mode="lazy",
                    )
                continue
            resolved = resolve_properties(offer.properties, self.dynamic_evaluator)
            if constraint.evaluate(resolved):
                if resolved is not offer.properties:
                    # importers see the fresh values, the store keeps markers
                    offer = ServiceOffer(
                        offer_id=offer.offer_id,
                        service_type=offer.service_type,
                        ref=offer.ref,
                        properties=resolved,
                        exported_at=offer.exported_at,
                        expires_at=offer.expires_at,
                        lease_seconds=offer.lease_seconds,
                    )
                matched.append(offer)
        # Under the default "first" preference a bounded import may stop as
        # soon as enough candidates exist — merged order puts local offers
        # ahead of remote ones, so the truncated set is unchanged.  Ranking
        # preferences still see the full federated candidate set.
        bounded_first = request.max_matches > 0 and preference.kind == "first"
        if not (bounded_first and len(matched) >= request.max_matches):
            needed = (
                max(0, request.max_matches - len(matched)) if bounded_first else 0
            )
            matched.extend(self._federated_matches(request, ctx, now, needed=needed))
        unique: Dict[str, ServiceOffer] = {}
        for offer in matched:
            unique.setdefault(offer.offer_id, offer)
        ordered = preference.apply(list(unique.values()), self.rng)
        if request.max_matches > 0:
            ordered = ordered[: request.max_matches]
        return ordered

    def _ordered_fast_path(
        self, request, constraint, preference, type_names, now
    ) -> Optional[List[ServiceOffer]]:
        """Top-k via the sorted index for ``min``/``max`` over one property.

        A bounded import ranked by a bare property reference need not
        score and sort every candidate: the store can walk offers in
        exactly preference-rank order, so matching stops as soon as
        ``max_matches`` offers satisfy the constraint.  Only taken when
        the ranking is provably identical to the general path — local
        offers only (federated merges need the full set), the sorted
        index is on, and no offer hides the property behind a dynamic
        marker (its resolved value could re-rank it).  Returns None to
        decline.
        """
        if self.links or request.max_matches <= 0:
            return None
        prop = preference.key_property
        if prop is None or not self.offers.range_index_enabled:
            return None
        if any(self.offers.has_unindexed(name, prop) for name in type_names):
            return None
        METRICS.inc("trader.ordered_scans", (self.trader_id,))
        matched: List[ServiceOffer] = []
        walk = self.offers.ordered_by(type_names, prop, reverse=preference.kind == "max")
        for offer in walk:
            if offer.expired(now):
                METRICS.inc("trader.offers.expired", (self.trader_id, "lazy"))
                continue
            resolved = resolve_properties(offer.properties, self.dynamic_evaluator)
            if constraint.evaluate(resolved):
                if resolved is not offer.properties:
                    # markers on *other* properties than the ranking key:
                    # importers still see the fresh values
                    offer = ServiceOffer(
                        offer_id=offer.offer_id,
                        service_type=offer.service_type,
                        ref=offer.ref,
                        properties=resolved,
                        exported_at=offer.exported_at,
                        expires_at=offer.expires_at,
                        lease_seconds=offer.lease_seconds,
                    )
                matched.append(offer)
                if len(matched) >= request.max_matches:
                    break
        return matched

    def select_best(
        self,
        request: ImportRequest,
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> Optional[ServiceOffer]:
        """The "best possible" single offer as of ``now``, or None."""
        narrowed = ImportRequest(**{**request.__dict__, "max_matches": 1})
        offers = self.import_(narrowed, now, ctx)
        return offers[0] if offers else None

    def import_wire(
        self,
        request_wire: Dict[str, Any],
        now: float = 0.0,
        ctx: Optional[CallContext] = None,
    ) -> List[Dict[str, Any]]:
        """Wire-dict façade used by RPC handlers and federation links."""
        try:
            offers = self.import_(ImportRequest.from_wire(request_wire), now, ctx)
        except TraderError:
            # A peer may ask about types this trader never standardised.
            return []
        return [offer.to_wire() for offer in offers]

    def _import_context(
        self, request: ImportRequest, ctx: Optional[CallContext]
    ) -> CallContext:
        """Fold the legacy wire fields into the governing context."""
        if ctx is None:
            ctx = current_context()
        if ctx is None:
            return CallContext.background(
                hops=request.hop_limit, visited=tuple(request.visited)
            )
        hops = ctx.hops if ctx.hops is not None else request.hop_limit
        merged = tuple(dict.fromkeys(tuple(request.visited) + ctx.visited))
        return ctx.derive(hops=hops, visited=merged)

    def _federated_matches(
        self, request: ImportRequest, ctx: CallContext, now: float, needed: int = 0
    ) -> List[ServiceOffer]:
        """Sweep the federation links; ``needed > 0`` allows early exit.

        Concurrent by default: with ``fanout_workers > 1`` links fan out
        with the remaining deadline split across outstanding links (see
        :mod:`repro.trader.federation`) — as coroutine tasks on
        ``fanout_loop`` when one is installed (virtual-time sim stacks),
        on a bounded worker pool otherwise (wall-clock stacks).  The
        serial sweep remains only for ``fanout_workers=1`` and for
        *nested* hops on a sim stack (the loop is already running this
        import, so a nested fan-out continues inline); its budget checks
        stay frozen at the import's ``now``, so one slow peer cannot
        spend a budget that has already run out.
        """
        if not self.links:
            return []
        if not ctx.can_hop():
            # Links exist but the budget is spent: the query stops
            # travelling here.  Counted — hop exhaustion is the federated
            # search's principal truncation signal.
            METRICS.inc("trader.hop_exhausted", (self.trader_id,))
            return []
        if ctx.seen(self.trader_id):
            return []
        child = ctx.hop(self.trader_id)
        forwarded = request.to_wire()
        if child.hops is None:
            # Unbounded budget: let each link apply its own max_hops cap.
            forwarded.pop("hop_limit", None)
        else:
            forwarded["hop_limit"] = child.hops
        forwarded["visited"] = list(child.visited)
        forwarded["preference"] = ""  # peers return raw matches; we order
        forwarded["max_matches"] = 0
        links = list(self.links.values())
        clock = self.clock or (lambda: now)
        if self.fanout_workers > 1:
            loop = self.fanout_loop
            if loop is not None and not loop.is_running():
                wire_lists = loop.run_until_complete(
                    fan_out_async(
                        links, forwarded, child, clock,
                        workers=self.fanout_workers, needed=needed,
                    )
                )
                return self._offers_from(wire_lists)
            if loop is None:
                wire_lists = fan_out(
                    links, forwarded, child, clock,
                    workers=self.fanout_workers, needed=needed,
                )
                return self._offers_from(wire_lists)
            # loop is running: this is a nested hop inside an async
            # fan-out already in flight — continue serially inline.
        gathered: List[ServiceOffer] = []
        for position, link in enumerate(links):
            if ctx.expired(now):
                # budget spent: stop fanning out, return what we have
                for skipped in links[position:]:
                    METRICS.inc("federation.link", (skipped.name, "expired"))
                break
            if needed > 0 and len(gathered) >= needed:
                break  # enough candidates for a bounded import
            try:
                with child.span("federation", f"link {link.name}", clock):
                    results = link.forward(forwarded, child)
            except ServerShedding:
                # Overloaded peer: partial merge, counted as a load signal.
                METRICS.inc("federation.link", (link.name, "shed"))
                continue
            except DeadlineExceeded:
                # Budget lapsed mid-forward: an "expired" outcome, same
                # as the pre-flight skip — not an unreachable peer.
                METRICS.inc("federation.link", (link.name, "expired"))
                continue
            except Exception:  # noqa: BLE001 - unreachable peers are skipped
                METRICS.inc("federation.link", (link.name, "unreachable"))
                continue
            METRICS.inc("federation.link", (link.name, "ok"))
            gathered.extend(ServiceOffer.from_wire(item) for item in results)
        return gathered

    @staticmethod
    def _offers_from(
        wire_lists: List[Optional[List[Dict[str, Any]]]]
    ) -> List[ServiceOffer]:
        return [
            ServiceOffer.from_wire(item)
            for wires in wire_lists
            if wires
            for item in wires
        ]

    # -- federation ------------------------------------------------------------

    def link(self, link: TraderLink) -> None:
        self.links[link.name] = link

    def link_local(self, peer: "LocalTrader", max_hops: int = 8) -> None:
        """Convenience: federate with a co-located trader instance."""
        self.link(TraderLink(peer.trader_id, peer.import_wire, max_hops))

    def unlink(self, name: str) -> bool:
        return self.links.pop(name, None) is not None


class TraderService:
    """RPC wrapper exposing a :class:`LocalTrader` (the Fig. 6 box)."""

    def __init__(
        self,
        server: RpcServer,
        trader: Optional[LocalTrader] = None,
        client: Optional[RpcClient] = None,
        now=lambda: 0.0,
    ) -> None:
        self.trader = trader or LocalTrader()
        self._client = client
        self._now = now
        if client is not None and self.trader.dynamic_evaluator is None:
            from repro.trader.dynamic import BindingEvaluator

            self.trader.dynamic_evaluator = BindingEvaluator(client)
        self._async_client = None
        if client is not None:
            if isinstance(client.transport, SimTransport):
                # Virtual-time concurrency: fan-out runs as coroutine
                # tasks on the clock's shared event loop, with federated
                # forwards issued by an async side-car client.  The
                # side-car binds to the *same simulated host*, so
                # partitions and crashes cut it exactly as they cut the
                # sync client — chaos scenarios see one node, not two.
                from repro.net.aioclock import loop_for
                from repro.rpc.aio import AsyncRpcClient

                network = client.transport.network
                self.trader.fanout_loop = loop_for(network.clock)
                self._async_client = AsyncRpcClient(
                    SimTransport(network, client.transport.local_address.host),
                    timeout=client.timeout,
                    retries=client.retries,
                )
            if self.trader.clock is None:
                self.trader.clock = client.transport.now
        program = RpcProgram(TRADER_PROGRAM, 1, "trader")
        program.register(_PROC_EXPORT, self._export, "export")
        program.register(_PROC_WITHDRAW, self._withdraw, "withdraw")
        program.register(_PROC_MODIFY, self._modify, "modify")
        program.register(_PROC_IMPORT, self._import, "import")
        program.register(_PROC_ADD_TYPE, self._add_type, "add_type")
        program.register(_PROC_REMOVE_TYPE, self._remove_type, "remove_type")
        program.register(_PROC_LIST_TYPES, self._list_types, "list_types")
        program.register(_PROC_GET_TYPE, self._get_type, "get_type")
        program.register(_PROC_LIST_OFFERS, self._list_offers, "list_offers")
        program.register(_PROC_MASK_TYPE, self._mask_type, "mask_type")
        program.register(_PROC_RENEW, self._renew, "renew")
        server.serve(program)
        self.address = server.address

    def link_to(self, peer_address: Address, name: Optional[str] = None) -> None:
        """Federate with a remote trader over RPC."""
        if self._client is None:
            raise TraderError("TraderService needs an RpcClient to federate")
        client = self._client

        def forward(
            request_wire: Dict[str, Any], ctx: Optional[CallContext] = None
        ) -> List[Dict[str, Any]]:
            # Install the (decremented) context ambiently rather than
            # passing it outright: the federation client keeps its own —
            # typically tight — retry pacing for unreachable peers, while
            # inheriting the query's deadline cap, hop budget, and trace.
            with use_context(ctx if ctx is not None else current_context()):
                return client.call(
                    peer_address, TRADER_PROGRAM, 1, _PROC_IMPORT, request_wire
                )

        aforward = None
        if self._async_client is not None:
            aclient = self._async_client

            async def aforward(
                request_wire: Dict[str, Any], ctx: Optional[CallContext] = None
            ) -> List[Dict[str, Any]]:
                with use_context(ctx if ctx is not None else current_context()):
                    return await aclient.call(
                        peer_address, TRADER_PROGRAM, 1, _PROC_IMPORT, request_wire
                    )

        link_name = name or f"link:{peer_address.host}:{peer_address.port}"
        self.trader.link(TraderLink(link_name, forward, aforwarder=aforward))

    # -- handlers ---------------------------------------------------------------

    def _export(self, args) -> str:
        return self.trader.export(
            args["service_type"],
            args["ref"],
            args["properties"],
            self._now(),
            args.get("lifetime"),
            args.get("lease_seconds"),
        )

    def _renew(self, args) -> Optional[float]:
        return self.trader.renew(args["offer_id"], self._now())

    def _withdraw(self, args) -> bool:
        self.trader.withdraw(args["offer_id"])
        return True

    def _modify(self, args) -> bool:
        self.trader.modify(args["offer_id"], args["properties"])
        return True

    def _import(self, args) -> List[Dict[str, Any]]:
        return self.trader.import_wire(args, self._now())

    def _add_type(self, args) -> bool:
        self.trader.add_type(ServiceType.from_wire(args["type"]), self._now())
        return True

    def _remove_type(self, args) -> bool:
        return self.trader.remove_type(args["name"])

    def _mask_type(self, args) -> bool:
        self.trader.mask_type(args["name"])
        return True

    def _list_types(self, args) -> List[str]:
        return self.trader.types.names()

    def _get_type(self, args) -> Dict[str, Any]:
        return self.trader.types.get(args["name"]).to_wire()

    def _list_offers(self, args) -> List[Dict[str, Any]]:
        return [offer.to_wire() for offer in self.trader.offers.all()]


class TraderClient:
    """Importer/exporter stub for a remote trader."""

    def __init__(self, client: RpcClient, address: Address) -> None:
        self._client = client
        self.address = address

    def export(
        self,
        service_type: str,
        ref: Union[ServiceRef, Dict[str, Any]],
        properties: Dict[str, Any],
        lifetime: Optional[float] = None,
        lease_seconds: Optional[float] = None,
    ) -> str:
        ref_wire = ref.to_wire() if isinstance(ref, ServiceRef) else ref
        return self._call(
            _PROC_EXPORT,
            {
                "service_type": service_type,
                "ref": ref_wire,
                "properties": properties,
                "lifetime": lifetime,
                "lease_seconds": lease_seconds,
            },
        )

    def renew(self, offer_id: str) -> Optional[float]:
        """Refresh an offer's liveness lease (the RENEW heartbeat)."""
        return self._call(_PROC_RENEW, {"offer_id": offer_id})

    def withdraw(self, offer_id: str) -> bool:
        return self._call(_PROC_WITHDRAW, {"offer_id": offer_id})

    def modify(self, offer_id: str, properties: Dict[str, Any]) -> bool:
        return self._call(_PROC_MODIFY, {"offer_id": offer_id, "properties": properties})

    def import_(
        self,
        request: Union[ImportRequest, Dict[str, Any]],
        ctx: Optional[CallContext] = None,
    ) -> List[ServiceOffer]:
        wire = request.to_wire() if isinstance(request, ImportRequest) else request
        results = self._call(_PROC_IMPORT, wire, ctx)
        return [ServiceOffer.from_wire(item) for item in results]

    def select_best(
        self, request: ImportRequest, ctx: Optional[CallContext] = None
    ) -> Optional[ServiceOffer]:
        request = ImportRequest(**{**request.__dict__, "max_matches": 1})
        offers = self.import_(request, ctx)
        return offers[0] if offers else None

    def add_type(self, service_type: ServiceType) -> bool:
        return self._call(_PROC_ADD_TYPE, {"type": service_type.to_wire()})

    def remove_type(self, name: str) -> bool:
        return self._call(_PROC_REMOVE_TYPE, {"name": name})

    def mask_type(self, name: str) -> bool:
        return self._call(_PROC_MASK_TYPE, {"name": name})

    def list_types(self) -> List[str]:
        return self._call(_PROC_LIST_TYPES, {})

    def get_type(self, name: str) -> ServiceType:
        return ServiceType.from_wire(self._call(_PROC_GET_TYPE, {"name": name}))

    def list_offers(self) -> List[ServiceOffer]:
        return [ServiceOffer.from_wire(item) for item in self._call(_PROC_LIST_OFFERS, {})]

    def _call(self, proc: int, args, ctx: Optional[CallContext] = None) -> Any:
        if ctx is not None:
            with ctx.span("trader", f"proc {proc}", self._client.transport.now):
                return self._client.call(
                    self.address, TRADER_PROGRAM, 1, proc, args, context=ctx
                )
        return self._client.call(self.address, TRADER_PROGRAM, 1, proc, args)
