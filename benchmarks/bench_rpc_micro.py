"""Substrate microbenchmarks: XDR codec, compiled codecs, raw dispatch.

Everything above (SIDs, trading, mediation) rides on these costs; the
series here make the higher-level numbers interpretable.  The
``codec_*`` series compare the tagged dynamic-marshalling path against
the compiled per-signature path on the same values — the per-call floor
the wire fast lane lowers.
"""

import pytest

from benchmarks.conftest import Stack
from repro.rpc.codec import CompiledCodec
from repro.rpc.server import RpcProgram
from repro.rpc.xdr import decode_value, encode_value
from repro.sidl import layout

PROG = 910000

#: A trader-RENEW-shaped record: the hot heartbeat signature.
SMALL_SPEC = layout.struct(offer_id=layout.string())
SMALL_VALUE = {"offer_id": "offer-0042"}

#: A wider record mixing every fixed-width leaf with string tails.
WIDE_SPEC = layout.struct(
    sequence=layout.i64(),
    price=layout.f64(),
    available=layout.boolean(),
    tier=layout.enum("gold", "silver", "bronze"),
    name=layout.string(),
    site=layout.string(),
    matches=layout.seq(layout.struct(rank=layout.i64(), score=layout.f64())),
)
WIDE_VALUE = {
    "sequence": 123456789,
    "price": 19.94,
    "available": True,
    "tier": "silver",
    "name": "CarRentalService",
    "site": "site-b.example",
    "matches": [{"rank": rank, "score": rank * 0.5} for rank in range(8)],
}


def nested_value(depth: int, width: int):
    value = {"leaf": 1}
    for level in range(depth):
        value = {
            f"k{index}": dict(value) for index in range(width)
        }
    return value


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_xdr_encode_flat_dict(benchmark, size):
    value = {f"key{i}": i for i in range(size)}
    payload = benchmark(lambda: encode_value(value))
    assert len(payload) > size


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_xdr_decode_flat_dict(benchmark, size):
    payload = encode_value({f"key{i}": i for i in range(size)})
    value = benchmark(lambda: decode_value(payload))
    assert len(value) == size


@pytest.mark.parametrize("depth", [2, 4])
def test_xdr_nested_roundtrip(benchmark, depth):
    value = nested_value(depth, width=3)

    def roundtrip():
        return decode_value(encode_value(value))

    assert benchmark(roundtrip) == value


def test_xdr_bytes_payload(benchmark):
    value = {"blob": b"\x00" * 65536}
    payload = benchmark(lambda: encode_value(value))
    assert len(payload) > 65536


@pytest.mark.parametrize(
    "shape,spec,value",
    [
        ("small", SMALL_SPEC, SMALL_VALUE),
        ("wide", WIDE_SPEC, WIDE_VALUE),
    ],
    ids=["small", "wide"],
)
def test_codec_compiled_encode(benchmark, shape, spec, value):
    codec = CompiledCodec(spec)
    payload = benchmark(lambda: codec.encode(value))
    assert len(payload) < len(encode_value(value))


@pytest.mark.parametrize(
    "shape,spec,value",
    [
        ("small", SMALL_SPEC, SMALL_VALUE),
        ("wide", WIDE_SPEC, WIDE_VALUE),
    ],
    ids=["small", "wide"],
)
def test_codec_compiled_decode(benchmark, shape, spec, value):
    codec = CompiledCodec(spec)
    payload = codec.encode(value)
    assert benchmark(lambda: codec.decode(payload)) == value


@pytest.mark.parametrize(
    "shape,value",
    [("small", SMALL_VALUE), ("wide", WIDE_VALUE)],
    ids=["small", "wide"],
)
def test_codec_tagged_decode(benchmark, shape, value):
    payload = encode_value(value)
    assert benchmark(lambda: decode_value(payload)) == value


@pytest.mark.parametrize("payload_size", [16, 4096])
def test_rpc_roundtrip_by_payload(benchmark, payload_size):
    stack = Stack()
    server = stack.server("srv")
    program = RpcProgram(PROG, 1)
    program.register(1, lambda args: len(args))
    server.serve(program)
    client = stack.client()
    argument = "x" * payload_size

    size = benchmark(lambda: client.call(server.address, PROG, 1, 1, argument))
    assert size == payload_size


def test_rpc_null_procedure(benchmark):
    stack = Stack()
    server = stack.server("srv")
    server.serve(RpcProgram(PROG, 1))
    client = stack.client()

    benchmark(lambda: client.call(server.address, PROG, 1, 0))
