"""Substrate microbenchmarks: XDR codec and raw RPC dispatch.

Everything above (SIDs, trading, mediation) rides on these costs; the
series here make the higher-level numbers interpretable.
"""

import pytest

from benchmarks.conftest import Stack
from repro.rpc.server import RpcProgram
from repro.rpc.xdr import decode_value, encode_value

PROG = 910000


def nested_value(depth: int, width: int):
    value = {"leaf": 1}
    for level in range(depth):
        value = {
            f"k{index}": dict(value) for index in range(width)
        }
    return value


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_xdr_encode_flat_dict(benchmark, size):
    value = {f"key{i}": i for i in range(size)}
    payload = benchmark(lambda: encode_value(value))
    assert len(payload) > size


@pytest.mark.parametrize("size", [10, 100, 1000])
def test_xdr_decode_flat_dict(benchmark, size):
    payload = encode_value({f"key{i}": i for i in range(size)})
    value = benchmark(lambda: decode_value(payload))
    assert len(value) == size


@pytest.mark.parametrize("depth", [2, 4])
def test_xdr_nested_roundtrip(benchmark, depth):
    value = nested_value(depth, width=3)

    def roundtrip():
        return decode_value(encode_value(value))

    assert benchmark(roundtrip) == value


def test_xdr_bytes_payload(benchmark):
    value = {"blob": b"\x00" * 65536}
    payload = benchmark(lambda: encode_value(value))
    assert len(payload) > 65536


@pytest.mark.parametrize("payload_size", [16, 4096])
def test_rpc_roundtrip_by_payload(benchmark, payload_size):
    stack = Stack()
    server = stack.server("srv")
    program = RpcProgram(PROG, 1)
    program.register(1, lambda args: len(args))
    server.serve(program)
    client = stack.client()
    argument = "x" * payload_size

    size = benchmark(lambda: client.call(server.address, PROG, 1, 1, argument))
    assert size == payload_size


def test_rpc_null_procedure(benchmark):
    stack = Stack()
    server = stack.server("srv")
    server.serve(RpcProgram(PROG, 1))
    client = stack.client()

    benchmark(lambda: client.call(server.address, PROG, 1, 0))
