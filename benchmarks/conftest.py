"""Shared benchmark fixtures: pre-built COSM stacks on a simulated network.

Benchmarks measure *this implementation's* costs, not the 1994 hardware's;
EXPERIMENTS.md maps each benchmark to the figure it regenerates and
records the qualitative shape against the paper's claims.
"""

from __future__ import annotations

import pytest

from repro.net import FixedLatency, SimNetwork
from repro.rpc.client import RpcClient
from repro.rpc.server import RpcServer
from repro.rpc.transport import SimTransport


class Stack:
    """A simulated network plus factories for servers and clients."""

    def __init__(self, latency: float = 0.0005) -> None:
        self.net = SimNetwork(latency=FixedLatency(latency), seed=1994)
        self._counter = 0

    def server(self, host: str = None, **options) -> RpcServer:
        self._counter += 1
        host = host or f"host-{self._counter}"
        return RpcServer(SimTransport(self.net, host), **options)

    def client(self, host: str = None, **options) -> RpcClient:
        self._counter += 1
        host = host or f"client-{self._counter}"
        options.setdefault("timeout", 5.0)
        options.setdefault("retries", 0)
        return RpcClient(SimTransport(self.net, host), **options)


@pytest.fixture
def stack() -> Stack:
    return Stack()


SELECTION = {"CarModel": "AUDI", "BookingDate": "1994-06-21", "Days": 2}
