"""§3.3 — which schema when: selection quality across maturation stages.

"In a pre-standardised stage ... only browser mediation is possible at
all"; after standardisation "the compatibility among services of the same
type allows to select a distinct service based on well-known quality
attributes."  The benchmark freezes the market at several points of the
maturation timeline and measures what clients pay per request under each
schema — the crossover the paper argues for.
"""

import pytest

from repro.market import ClientDemand, CostModel, MarketSimulation
from repro.market.agents import staggered_providers

PROVIDERS = staggered_providers("car-rental", 4, spacing=15.0)


def outcome_at(mode: str, horizon: float):
    demands = [ClientDemand("car-rental", rate_per_day=2.0)]
    return MarketSimulation(
        mode, PROVIDERS, demands, CostModel(), horizon=horizon, seed=1994
    ).run()


@pytest.mark.parametrize("horizon", [60.0, 200.0, 365.0])
def test_maturation_stage(benchmark, horizon):
    """At each stage, run all modes and assert the §3.3 stage logic."""

    def run():
        return {
            mode: outcome_at(mode, horizon)
            for mode in ("trading", "mediation", "integrated")
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    trading = outcomes["trading"]
    mediation = outcomes["mediation"]
    integrated = outcomes["integrated"]

    # the trading pipeline completes at: first entry + standardisation
    # (180) + type registration (5) + client development (30)
    trading_pipeline_done = 215.0
    if horizon <= trading_pipeline_done:
        # pre-standardised: ONLY mediation serves anyone at all (§3.3)
        assert trading.requests_served == 0
        assert mediation.requests_served > 0
        assert integrated.requests_served == mediation.requests_served
    else:
        # post-standardisation: the trader's best-fit gets better prices
        assert trading.requests_served > 0
        assert trading.mean_price_paid() <= mediation.mean_price_paid()
        # integrated converges toward trader-quality selection over time
        assert integrated.mean_price_paid() <= mediation.mean_price_paid()


def test_integrated_price_converges_to_trading(benchmark):
    """As the market matures, integrated selection approaches trading's."""

    def run():
        gaps = []
        for horizon in (250.0, 365.0, 720.0):
            trading = outcome_at("trading", horizon)
            integrated = outcome_at("integrated", horizon)
            gaps.append(integrated.mean_price_paid() - trading.mean_price_paid())
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gaps[0] >= gaps[-1] >= 0
