"""Sharded trader at 1M offers: 1 vs 4 shards vs the seed single store.

The ISSUE-9 perf claim: a 4-shard router whose shards keep sorted range
indexes serves selective range imports (``ChargePerDay < 12`` with a
``min`` preference) at **≥ 3× the seed's import throughput**, and its
range-query p95 beats the seed's by the same factor.  The seed arm is
the pre-sharding trader — one flat ``OfferStore``, no range index — so
every query pays a linear scan of the queried type's cohort.

Everything runs on one core, so the win is structural, not parallelism:
the range index replaces the linear scan, and partitioning keeps each
shard's store (and its indexes) to a fraction of the corpus.  The
``router1`` arm isolates the index effect from the partitioning effect.

Every arm answers the same query list and must return byte-identical
offer ids (placement-independent per-type counters make sharded ids
equal to single-store ids); metric deltas confirm which matching path
each arm actually exercised.

Run standalone to emit ``BENCH_sharding.json`` (the CI smoke step uses
``--smoke`` for a reduced corpus)::

    PYTHONPATH=src python benchmarks/bench_trader_sharding.py [--smoke]
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import time
from typing import Any, Dict, List

from repro.naming.refs import ServiceRef
from repro.net.endpoints import Address
from repro.sidl.types import DOUBLE, InterfaceType, LONG, OperationType, STRING
from repro.telemetry.metrics import METRICS
from repro.trader.service_types import ServiceType
from repro.trader.sharding import build_local_router
from repro.trader.trader import ImportRequest, LocalTrader

TYPE_NAMES = [f"RentalService{index}" for index in range(8)]
SELECTIVE = "ChargePerDay < 12"  # 2 of the 97 charge values: ~2% selectivity
PREFERENCE = "min ChargePerDay"


def service_type(name: str) -> ServiceType:
    return ServiceType(
        name,
        InterfaceType("I", [OperationType("Use", [], LONG)]),
        [("ChargePerDay", DOUBLE), ("City", STRING)],
    )


def build_arm(arm: str):
    """Every arm shares the offer prefix ``m`` so the sharded arms mint
    exactly the ids the single store would (the parity check relies on
    it); the ``offers.*`` counters are keyed by that prefix, and the
    arms run one at a time, so per-arm deltas stay isolated."""
    if arm == "seed":
        trader = LocalTrader("seed", offer_prefix="m", range_index=False)
    else:
        shard_count = int(arm.removeprefix("router"))
        shard_ids = [f"s{index}" for index in range(shard_count)]
        trader = build_local_router(
            shard_ids, router_id=arm, offer_prefix="m", fanout_workers=1
        )
    for name in TYPE_NAMES:
        trader.add_type(service_type(name))
    return trader


def populate(trader, total: int) -> float:
    """Export ``total`` offers round-robin across the types; returns
    exports/sec through the arm's own write surface."""
    started = time.perf_counter()
    for index in range(total):
        trader.export(
            TYPE_NAMES[index % len(TYPE_NAMES)],
            ServiceRef.create(f"p-{index}", Address(f"h{index % 50}", 1), 4711),
            {"ChargePerDay": 10.0 + (index % 97), "City": f"C{index % 10}"},
        )
    return total / (time.perf_counter() - started)


def query_list(queries: int) -> List[ImportRequest]:
    return [
        ImportRequest(
            TYPE_NAMES[index % len(TYPE_NAMES)],
            SELECTIVE,
            PREFERENCE,
            max_matches=10,
        )
        for index in range(queries)
    ]


def _store_counters(arm: str) -> Dict[str, float]:
    counters = {
        name: METRICS.counter(f"offers.{name}", ("m",))
        for name in ("index_hits", "range_hits", "fallback_scans")
    }
    if arm == "seed":
        store_ids = ["seed"]
    else:
        count = int(arm.removeprefix("router"))
        store_ids = [f"{arm}/s{index}" for index in range(count)]
    counters["ordered_scans"] = sum(
        METRICS.counter("trader.ordered_scans", (store_id,)) for store_id in store_ids
    )
    return counters


def measure_arm(arm: str, total_offers: int, queries: int) -> Dict[str, Any]:
    # Drop the previous arm's million-offer heap first: leftover cyclic
    # garbage would otherwise charge this arm's tail latencies with GC
    # pauses over a corpus it never built.
    gc.collect()
    trader = build_arm(arm)
    export_rate = populate(trader, total_offers)
    requests = query_list(queries)
    before = _store_counters(arm)
    latencies: List[float] = []
    answers: List[List[str]] = []
    started = time.perf_counter()
    for request in requests:
        query_start = time.perf_counter()
        offers = trader.import_(request)
        latencies.append(time.perf_counter() - query_start)
        answers.append([offer.offer_id for offer in offers])
    elapsed = time.perf_counter() - started
    after = _store_counters(arm)
    latencies.sort()
    p95 = latencies[max(0, int(len(latencies) * 0.95) - 1)]
    return {
        "arm": arm,
        "offers": total_offers,
        "queries": queries,
        "export_per_s": round(export_rate, 1),
        "import_per_s": round(queries / elapsed, 2),
        "query_p50_s": round(statistics.median(latencies), 6),
        "query_p95_s": round(p95, 6),
        "range_hits": after["range_hits"] - before["range_hits"],
        "ordered_scans": after["ordered_scans"] - before["ordered_scans"],
        "fallback_scans": after["fallback_scans"] - before["fallback_scans"],
        "answers": answers,
    }


def run_sweep(smoke: bool = False) -> Dict[str, Any]:
    total_offers, queries = (40_000, 24) if smoke else (1_000_000, 48)
    rows = [measure_arm(arm, total_offers, queries) for arm in ("seed", "router1", "router4")]
    # Parity first: every arm answered every query with the same ids, in
    # the same preference order — the speedup is not a different answer.
    baseline = rows[0].pop("answers")
    assert all(ids for ids in baseline), "selective query matched nothing"
    for row in rows[1:]:
        assert row.pop("answers") == baseline, f"{row['arm']} diverged from seed"
    seed, router4 = rows[0], rows[2]
    return {
        "benchmark": "bench_trader_sharding",
        "smoke": smoke,
        "constraint": SELECTIVE,
        "preference": PREFERENCE,
        "service_types": len(TYPE_NAMES),
        "arms": rows,
        "throughput_gain_4shard": round(
            router4["import_per_s"] / seed["import_per_s"], 2
        ),
        "p95_gain_4shard": round(seed["query_p95_s"] / router4["query_p95_s"], 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI corpus")
    parser.add_argument("--out", default="BENCH_sharding.json")
    args = parser.parse_args()
    report = run_sweep(smoke=args.smoke)
    for row in report["arms"]:
        print(
            f"{row['arm']:8s} offers={row['offers']} "
            f"export={row['export_per_s']}/s import={row['import_per_s']}/s "
            f"p50={row['query_p50_s']}s p95={row['query_p95_s']}s "
            f"range_hits={row['range_hits']} ordered={row['ordered_scans']} "
            f"fallback={row['fallback_scans']}"
        )
    print(
        f"4-shard vs seed: throughput {report['throughput_gain_4shard']}x, "
        f"p95 {report['p95_gain_4shard']}x"
    )
    # The asserted ISSUE-9 claims; loud failure keeps CI honest.
    seed, router1, router4 = report["arms"]
    assert report["throughput_gain_4shard"] >= 3.0, report["throughput_gain_4shard"]
    assert report["p95_gain_4shard"] >= 3.0, report["p95_gain_4shard"]
    # Counter deltas prove the paths: the seed linear-scans every query;
    # the sharded arms serve every query off the sorted indexes (the
    # ordered min/max fast path or the range pre-filter), never the
    # linear fallback.
    assert seed["fallback_scans"] > 0 and seed["range_hits"] == 0, seed
    assert seed["ordered_scans"] == 0, seed
    for row in (router1, router4):
        assert row["range_hits"] + row["ordered_scans"] > 0, row
        assert row["fallback_scans"] == 0, row
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
