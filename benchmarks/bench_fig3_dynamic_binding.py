"""Fig. 3 — dynamic binding to innovative services.

The figure's arrow sequence: bind → SID transfer → GUI generation →
invocation.  Each stage is timed separately, then the whole "cold bind"
a generic client pays for a service it has never seen.
"""

import pytest

from benchmarks.conftest import SELECTION, Stack
from repro.core import GenericClient
from repro.services.car_rental import start_car_rental
from repro.uims.controller import ServicePanel
from repro.uims.formgen import form_for_operation


@pytest.fixture(scope="module")
def world():
    stack = Stack()
    rental = start_car_rental(stack.server("provider"))
    generic = GenericClient(stack.client("user"))
    return stack, rental, generic


def test_fig3_bind_with_sid_transfer(benchmark, world):
    __, rental, generic = world

    def bind_unbind():
        binding = generic.bind(rental.ref)
        binding.unbind()
        return binding

    binding = benchmark(bind_unbind)
    assert binding.sid.name == "CarRentalService"


def test_fig3_gui_generation(benchmark, world):
    """GUI generation alone: SID already local, no network."""
    __, rental, generic = world
    binding = generic.bind(rental.ref)

    panel = benchmark(lambda: ServicePanel(binding))
    assert set(panel.controllers) == {"SelectCar", "BookCar"}


def test_fig3_form_for_one_operation(benchmark, world):
    __, rental, __g = world
    operation = rental.sid.interface.operation("SelectCar")

    form = benchmark(lambda: form_for_operation(rental.sid, operation))
    assert form.fields


def test_fig3_first_invocation(benchmark, world):
    __, rental, generic = world
    binding = generic.bind(rental.ref)

    def invoke():
        return binding.invoke("SelectCar", {"selection": SELECTION})

    result = benchmark(invoke)
    assert result.value["available"] is True


def test_fig3_cold_path_end_to_end(benchmark, world):
    """Everything Fig. 3 shows, as one user-visible action."""
    __, rental, generic = world

    def cold():
        binding = generic.bind(rental.ref)
        panel = ServicePanel(binding)
        controller = panel.controller("SelectCar")
        controller.form.find("SelectCar.selection").set_value(SELECTION)
        value = controller.submit()
        binding.unbind()
        return value

    value = benchmark(cold)
    assert value["available"] is True
