"""§3.1/§4.2 — FSM protocol guarding, local vs. remote rejection.

The paper: invocations that do not conform to the communication state
"can be automatically intercepted by the generic client and, therefore,
already be rejected locally."  The benchmark quantifies what that saves:
a local rejection is pure computation; a remote rejection pays the full
round trip (visible through the simulated network's latency).
"""

import pytest

from benchmarks.conftest import SELECTION, Stack
from repro.core import GenericClient
from repro.rpc.errors import RemoteFault
from repro.services.car_rental import start_car_rental
from repro.sidl.fsm import FsmViolation


@pytest.fixture(scope="module")
def world():
    stack = Stack(latency=0.002)  # 2ms one way: rejections differ visibly
    rental = start_car_rental(stack.server("provider"))
    guarded = GenericClient(stack.client("guarded-user"))
    unguarded = GenericClient(stack.client("naive-user"), enforce_fsm=False)
    return stack, rental, guarded, unguarded


def test_local_rejection(benchmark, world):
    __, rental, guarded, __u = world
    binding = guarded.bind(rental.ref)

    def reject_locally():
        try:
            binding.invoke("BookCar")
        except FsmViolation:
            return True
        return False

    assert benchmark(reject_locally) is True


def test_remote_rejection_ablation(benchmark, world):
    """The ablation: no client guard, the server rejects after a round trip."""
    __, rental, __g, unguarded = world
    binding = unguarded.bind(rental.ref)

    def reject_remotely():
        try:
            binding.invoke("BookCar")
        except RemoteFault:
            return True
        return False

    assert benchmark(reject_remotely) is True


def test_legal_invocation_with_guard(benchmark, world):
    """The guard's overhead on calls that *do* conform."""
    __, rental, guarded, __u = world
    binding = guarded.bind(rental.ref)

    def legal():
        return binding.invoke("SelectCar", {"selection": SELECTION})

    assert benchmark(legal).value["available"] is True


def test_virtual_time_saved_by_local_interception(benchmark, world):
    """Network cost comparison in *virtual* time: deterministic, exact."""
    stack, rental, guarded, unguarded = world
    net = stack.net

    def measure():
        guarded_binding = guarded.bind(rental.ref)
        start = net.clock.now
        for __ in range(100):
            try:
                guarded_binding.invoke("BookCar")
            except FsmViolation:
                pass
        local_elapsed = net.clock.now - start

        unguarded_binding = unguarded.bind(rental.ref)
        start = net.clock.now
        for __ in range(100):
            try:
                unguarded_binding.invoke("BookCar")
            except RemoteFault:
                pass
        remote_elapsed = net.clock.now - start
        return local_elapsed, remote_elapsed

    local_elapsed, remote_elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    # local interception: zero virtual network time
    assert local_elapsed == 0.0
    # remote rejection: 100 round trips at 2ms each way
    assert remote_elapsed == pytest.approx(100 * 2 * 0.002)
