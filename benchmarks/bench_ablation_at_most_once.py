"""Ablation — the at-most-once duplicate-request cache (DESIGN.md §6).

Under reply loss the client retransmits; with the cache the procedure
executes once and the recorded reply replays, without it every
retransmission re-executes.  Correctness first (execution counts), then
the cache's overhead on the fast path.
"""

import pytest

from benchmarks.conftest import Stack
from repro.rpc.server import RpcProgram

PROG = 900100


def build(at_most_once: bool, drop_replies: int):
    stack = Stack()
    server = stack.server("srv", at_most_once=at_most_once)
    executions = {"count": 0}

    def handler(args):
        executions["count"] += 1
        return executions["count"]

    program = RpcProgram(PROG, 1)
    program.register(1, handler)
    server.serve(program)
    client = stack.client(timeout=0.05, retries=10)

    budget = {"left": drop_replies}
    original = stack.net.faults.should_drop

    def dropper(datagram, rng):
        if datagram.source.host == "srv" and budget["left"] > 0:
            budget["left"] -= 1
            return True
        return original(datagram, rng)

    stack.net.faults.should_drop = dropper
    return stack, server, client, executions, budget


def test_with_cache_executes_once(benchmark):
    def scenario():
        __, server, client, executions, budget = build(True, drop_replies=3)
        client.call(server.address, PROG, 1, 1, "x")
        return executions["count"], server.duplicates_suppressed

    count, suppressed = benchmark.pedantic(scenario, rounds=5, iterations=1)
    assert count == 1
    assert suppressed == 3


def test_without_cache_reexecutes(benchmark):
    def scenario():
        __, server, client, executions, __b = build(False, drop_replies=3)
        client.call(server.address, PROG, 1, 1, "x")
        return executions["count"]

    count = benchmark.pedantic(scenario, rounds=5, iterations=1)
    assert count == 4  # one execution per (re)transmission


def test_fast_path_overhead_with_cache(benchmark):
    __, server, client, __e, __b = build(True, drop_replies=0)
    benchmark(lambda: client.call(server.address, PROG, 1, 1, "x"))


def test_fast_path_overhead_without_cache(benchmark):
    __, server, client, __e, __b = build(False, drop_replies=0)
    benchmark(lambda: client.call(server.address, PROG, 1, 1, "x"))
