"""§2.2/§2.3 — transition costs: trading-only vs. mediation vs. COSM.

The paper's quantitative-in-spirit claims, regenerated as a market sweep:

* time-to-market under trading is dominated by standardisation; under
  mediation it is days ("fast and easily accessible ... at negligible
  adaptation costs"),
* "being the first pays most" holds only when the infrastructure lets the
  first mover actually serve clients,
* total transition effort is lowest under mediation.

Each benchmark runs the full one-year market simulation; assertions pin
the orderings (the "shape"), the timing numbers are this implementation's.
"""

import pytest

from repro.market import ClientDemand, CostModel, MarketSimulation, run_all_modes
from repro.market.agents import staggered_providers

PROVIDERS = staggered_providers("car-rental", 3, spacing=30.0)
DEMANDS = [ClientDemand("car-rental", rate_per_day=2.0)]


@pytest.mark.parametrize("mode", ["trading", "mediation", "integrated"])
def test_market_year_simulation(benchmark, mode):
    """Cost of simulating one market-year per infrastructure mode."""
    simulation = MarketSimulation(mode, PROVIDERS, DEMANDS, horizon=365.0, seed=1994)
    outcome = benchmark(simulation.run)
    assert outcome.requests_total > 0


def test_transition_cost_orderings(benchmark):
    """The §2.3 orderings, asserted over the full three-mode comparison."""

    def run():
        return run_all_modes(PROVIDERS, DEMANDS, horizon=365.0, seed=1994)

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    trading, mediation, integrated = (
        outcomes["trading"],
        outcomes["mediation"],
        outcomes["integrated"],
    )
    # paper: standardisation pipeline delays trading availability by months
    assert trading.mean_time_to_market() > 100
    assert mediation.mean_time_to_market() < 5
    # paper: mediation reduces transition costs substantially
    assert mediation.provider_effort * 5 < trading.provider_effort
    # paper: clients need per-type development only under trading
    assert trading.client_effort > mediation.client_effort
    # paper: service level (requests actually served) favours mediation
    assert mediation.service_level > trading.service_level
    # first mover: pays most only when reachable early
    assert mediation.first_mover_revenue_share("car-rental") > 0.5
    assert integrated.service_level == mediation.service_level


@pytest.mark.parametrize("std_delay", [30.0, 180.0, 360.0])
def test_standardisation_delay_sweep(benchmark, std_delay):
    """Sweep the §2.2 bottleneck: the longer standardisation takes, the
    worse trading-only serves the market; mediation is invariant."""
    costs = CostModel().scaled(type_standardisation_delay=std_delay)

    def run():
        return run_all_modes(PROVIDERS, DEMANDS, costs, horizon=365.0, seed=1994)

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcomes["mediation"].requests_served == run_all_modes(
        PROVIDERS, DEMANDS, CostModel(), horizon=365.0, seed=1994
    )["mediation"].requests_served


@pytest.mark.parametrize("provider_count", [1, 3, 8])
def test_provider_count_sweep(benchmark, provider_count):
    """More followers dilute the first mover everywhere, but mediation
    keeps the pioneer ahead (position bias in browsing)."""
    providers = staggered_providers("car-rental", provider_count, spacing=20.0)

    def run():
        return run_all_modes(providers, DEMANDS, horizon=365.0, seed=1994)

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    share = outcomes["mediation"].first_mover_revenue_share("car-rental")
    assert share >= 1.0 / max(provider_count, 1) * 0.9
