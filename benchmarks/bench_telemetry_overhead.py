"""Telemetry overhead A/B: head sampling pays for always-on tracing.

Two claims, measured on the simulated stack (wall-clock CPU cost of
driving calls — virtual network latency costs nothing, so the timed
region is pure instrumentation overhead) plus a survival census:

* **overhead** — with a JSONL exporter installed and **1% head
  sampling**, instrumented RPC throughput stays within 5% of the
  telemetry-off baseline (the smoke configuration on shared CI runners
  gets a 15% allowance).  The unsampled arm (rate 1.0, every chain
  serialised and written) is reported alongside to show what sampling
  saves.
* **error survival** — at 1% sampling with ``keep_errors`` on, chains
  containing an error span survive at **100%**: every failed call's
  trace is exported regardless of its head decision, while ok chains
  export at roughly the head rate.

Run standalone to emit ``BENCH_telemetry.json`` (CI smoke shrinks the
call counts)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import tempfile
import time
from typing import Any, Dict, List

from repro.net import SimNetwork
from repro.rpc.client import RpcClient
from repro.rpc.errors import RemoteFault
from repro.rpc.server import AdmissionPolicy, RpcProgram, RpcServer
from repro.rpc.transport import SimTransport
from repro.telemetry.exporters import JsonlExporter, RingExporter
from repro.telemetry.hub import use_exporter
from repro.telemetry.sampling import SamplingPolicy, use_policy

PROG = 930000
ROUNDS = 8


def _best_of(*fns) -> List[float]:
    """Per-arm minimum elapsed seconds over ROUNDS *interleaved* rounds.

    Same noise filters as bench_wire_batching — the min discards rounds
    slowed by scheduler jitter and interleaving defeats sustained slow
    phases — plus two fixes this A/B specifically needs because the
    arms differ by single-digit percent: the arm order *rotates* every
    round (a runner that slows within a round otherwise hands whichever
    arm runs first a systematic win) and each timed region starts from a
    collected heap so one arm's garbage is not billed to the next."""
    best = [float("inf")] * len(fns)
    order = list(enumerate(fns))
    for round_index in range(ROUNDS):
        for index, fn in order:
            gc.collect()
            best[index] = min(best[index], fn())
        order.append(order.pop(0))  # rotate who runs first
    return best


def make_stack():
    net = SimNetwork(seed=1994)
    server = RpcServer(
        SimTransport(net, "bench-srv"), admission=AdmissionPolicy(shed=False)
    )
    program = RpcProgram(PROG, 1, "bench-telemetry")
    program.register(1, lambda args: args, "echo")

    def boom(args):
        raise ValueError("synthetic fault")

    program.register(2, boom, "boom")
    server.serve(program)
    client = RpcClient(SimTransport(net, "bench-cli"), timeout=5.0, retries=0)
    return server, client


def bench_throughput(calls: int) -> Dict[str, Any]:
    server, client = make_stack()
    address = server.address
    args = {"offer_id": "offer-0042"}

    def drive() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            client.call(address, PROG, 1, 1, args)
        return time.perf_counter() - start

    workdir = tempfile.mkdtemp(prefix="bench-telemetry-")

    def run_off() -> float:
        return drive()  # no exporter installed: spans are never recorded

    def run_sampled() -> float:
        exporter = JsonlExporter(os.path.join(workdir, "sampled.jsonl"))
        try:
            with use_policy(SamplingPolicy(rate=0.01)):
                with use_exporter(exporter):
                    return drive()
        finally:
            exporter.close()

    def run_full() -> float:
        exporter = JsonlExporter(os.path.join(workdir, "full.jsonl"))
        try:
            with use_exporter(exporter):
                return drive()
        finally:
            exporter.close()

    # Warm every path (codec caches, service-time estimators) once.
    for fn in (run_off, run_sampled, run_full):
        fn()
    off_elapsed, sampled_elapsed, full_elapsed = _best_of(
        run_off, run_sampled, run_full
    )
    return {
        "stack": "throughput",
        "calls": calls,
        "telemetry_off_cps": round(calls / off_elapsed, 1),
        "sampled_1pct_cps": round(calls / sampled_elapsed, 1),
        "unsampled_cps": round(calls / full_elapsed, 1),
        "sampled_over_off": round(off_elapsed / sampled_elapsed, 4),
        "unsampled_over_off": round(off_elapsed / full_elapsed, 4),
    }


def bench_error_survival(ok_calls: int, error_calls: int) -> Dict[str, Any]:
    server, client = make_stack()
    address = server.address
    ring = RingExporter(capacity=ok_calls + error_calls + 16)
    faults = 0
    with use_policy(SamplingPolicy(rate=0.01, keep_errors=True)):
        with use_exporter(ring):
            for _ in range(ok_calls):
                client.call(address, PROG, 1, 1, {"offer_id": "x"})
            for _ in range(error_calls):
                try:
                    client.call(address, PROG, 1, 2, None)
                except RemoteFault:
                    faults += 1
    error_chains = 0
    ok_chains = 0
    for chain in ring.chains():
        if any(span.outcome != "ok" for span in chain.spans):
            error_chains += 1
        else:
            ok_chains += 1
    return {
        "stack": "error-survival",
        "ok_calls": ok_calls,
        "error_calls": error_calls,
        "faults_observed": faults,
        "error_chains_exported": error_chains,
        "error_survival": round(error_chains / error_calls, 4),
        "ok_chains_exported": ok_chains,
        "ok_export_fraction": round(ok_chains / ok_calls, 4),
    }


def run_sweep(smoke: bool = False) -> Dict[str, Any]:
    calls = 400 if smoke else 2000
    return {
        "benchmark": "bench_telemetry_overhead",
        "smoke": smoke,
        "unit": "wall-clock seconds on the simulated stack",
        "rows": [
            bench_throughput(calls),
            bench_error_survival(ok_calls=calls, error_calls=100 if smoke else 400),
        ],
    }


def assert_claims(report: Dict[str, Any]) -> None:
    """The tracked claims; loud failure keeps CI honest."""
    rows = {row["stack"]: row for row in report["rows"]}
    # Claim 1: 1% head sampling holds instrumented throughput within 5%
    # of telemetry-off (15% on smoke: short timed regions, shared runner).
    floor = 0.85 if report["smoke"] else 0.95
    assert rows["throughput"]["sampled_over_off"] >= floor, rows["throughput"]
    # Claim 2: at 1% sampling, every error chain survives (tail keep).
    survival = rows["error-survival"]
    assert survival["faults_observed"] == survival["error_calls"], survival
    assert survival["error_survival"] == 1.0, survival
    # Sanity: the head rate actually thinned the ok traffic.
    assert survival["ok_export_fraction"] < 0.2, survival


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    args = parser.parse_args()
    report = run_sweep(smoke=args.smoke)
    try:
        assert_claims(report)
    except AssertionError:
        # One fresh measurement separates a noisy run from a regression
        # (same guard as the other wall-clock benches).
        print("claims failed on first measurement; re-measuring once")
        report = run_sweep(smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        if row["stack"] == "throughput":
            print(
                f"throughput: off {row['telemetry_off_cps']:.0f}/s, "
                f"1% sampled {row['sampled_1pct_cps']:.0f}/s "
                f"({row['sampled_over_off']:.3f}x), "
                f"unsampled {row['unsampled_cps']:.0f}/s "
                f"({row['unsampled_over_off']:.3f}x)"
            )
        else:
            print(
                f"error survival: {row['error_chains_exported']}/"
                f"{row['error_calls']} error chains exported "
                f"({row['error_survival']:.0%}), ok chains at "
                f"{row['ok_export_fraction']:.1%}"
            )
    assert_claims(report)
    print(f"wrote {args.out}")


# -- pytest-benchmark hooks (explicit runs only; not part of tier-1) ---------


def test_telemetry_overhead(benchmark):
    row = benchmark.pedantic(lambda: bench_throughput(200), rounds=2, iterations=1)
    assert row["sampled_over_off"] >= 0.7  # generous: micro runs are noisy


def test_error_survival(benchmark):
    row = benchmark.pedantic(
        lambda: bench_error_survival(ok_calls=200, error_calls=50),
        rounds=2, iterations=1,
    )
    assert row["error_survival"] == 1.0


if __name__ == "__main__":
    main()
