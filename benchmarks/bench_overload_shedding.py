"""Overload shedding A/B: admission control on vs. off under a burst.

A deadline-carrying burst arrives at a single-worker RPC server whose
handler costs ``service_time`` virtual seconds; the burst's arrival rate
outruns service capacity, so most calls cannot meet their deadline.  The
same seeded, virtual-time scenario runs twice:

* ``shed=False`` — the pre-admission baseline: every live-deadline call
  is queued and executed, even when its deadline lapses mid-run;
* ``shed=True`` — deadline-aware admission: calls whose remaining budget
  is below the server's service-time estimate are answered ``SHED`` at
  arrival or dequeue instead of executing.

Tracked claims (asserted at the end of a standalone run):

* shedding reduces **wasted handler-seconds**
  (``rpc.server.wasted_handler_seconds``: execution time spent on calls
  whose deadline had already lapsed when the reply was produced);
* shedding improves **p95 reply latency for admitted calls** — the
  queue stops carrying doomed work, so admitted calls wait less.

Run standalone to emit ``BENCH_overload_shedding.json`` (CI smoke uses a
reduced burst)::

    PYTHONPATH=src python benchmarks/bench_overload_shedding.py [--smoke]

Virtual time makes every number deterministic for a given seed.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List

from repro.net import SimNetwork
from repro.net.endpoints import Address
from repro.rpc.message import ReplyStatus, RpcCall, decode_message
from repro.rpc.server import AdmissionPolicy, RpcProgram, RpcServer
from repro.rpc.transport import SimTransport
from repro.rpc.xdr import encode_value
from repro.telemetry.metrics import METRICS

WORK_PROG = 88001


def quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_burst(
    shed: bool,
    burst: int,
    service_time: float = 0.3,
    spacing: float = 0.05,
    deadline_budget: float = 0.6,
    warmup: int = 3,
    seed: int = 1994,
) -> Dict[str, Any]:
    """One seeded overload scenario; returns the measured row."""
    net = SimNetwork(seed=seed)
    policy = AdmissionPolicy(
        shed=shed, defer_while_busy=True, min_samples=warmup, quantile=0.5
    )
    transport = SimTransport(net, "worker")
    server = RpcServer(transport, admission=policy)
    program = RpcProgram(WORK_PROG, name="overload-bench")
    executed: List[str] = []

    def slow(args):
        executed.append(args["id"])
        transport.wait(lambda: False, service_time)
        return {"id": args["id"]}

    program.register(1, slow, "slow")
    server.serve(program)

    probe = SimTransport(net, "probe")
    sent_at: Dict[int, float] = {}
    deadlines: Dict[int, float] = {}
    replies: Dict[int, ReplyStatus] = {}
    reply_at: Dict[int, float] = {}

    def on_payload(source: Address, payload: bytes) -> None:
        message = decode_message(payload)
        replies.setdefault(message.xid, message.status)
        reply_at.setdefault(message.xid, net.clock.now)

    probe.set_receiver(on_payload)

    def send(xid: int, call_id: str, deadline: float) -> None:
        sent_at[xid] = net.clock.now
        deadlines[xid] = deadline
        call = RpcCall(
            xid, WORK_PROG, 1, 1, encode_value({"id": call_id}), deadline=deadline
        )
        probe.send(server.address, call.encode())

    for index in range(warmup):  # teach the server its service time
        send(index + 1, f"warm{index}", net.clock.now + 10 * service_time)
        net.clock.drain()

    wasted_before = METRICS.counter_total("rpc.server.wasted_handler_seconds")
    missed_before = METRICS.counter_total("rpc.server.missed_deadline_executions")
    shed_before = METRICS.counter_total("rpc.server.shed")
    depth_label = (f"{server.address.host}:{server.address.port}",)
    peak_depth = [0.0]

    t0 = net.clock.now
    burst_xids = []
    for index in range(burst):
        xid = 1000 + index
        burst_xids.append(xid)
        offset = index * spacing
        net.clock.schedule(
            offset,
            lambda x=xid, c=f"b{index:03d}", d=t0 + offset + deadline_budget: send(x, c, d),
        )
        net.clock.schedule(
            offset + spacing / 2,
            lambda: peak_depth.__setitem__(
                0, max(peak_depth[0], METRICS.gauge("rpc.server.queue_depth", depth_label))
            ),
        )
    net.clock.drain()

    statuses = [replies.get(xid) for xid in burst_xids]
    success = [x for x in burst_xids if replies.get(x) is ReplyStatus.SUCCESS]
    latencies = [reply_at[x] - sent_at[x] for x in success]
    useful = [x for x in success if reply_at[x] <= deadlines[x]]
    return {
        "shed": shed,
        "burst": burst,
        "service_time_s": service_time,
        "spacing_s": spacing,
        "deadline_budget_s": deadline_budget,
        "successes": len(success),
        "useful_successes": len(useful),
        "shed_replies": sum(1 for s in statuses if s is ReplyStatus.SHED),
        "deadline_replies": sum(
            1 for s in statuses if s is ReplyStatus.DEADLINE_EXCEEDED
        ),
        "executed": len([c for c in executed if c.startswith("b")]),
        "peak_queue_depth": peak_depth[0],
        "p50_admitted_latency_s": round(quantile(latencies, 0.50), 6),
        "p95_admitted_latency_s": round(quantile(latencies, 0.95), 6),
        "wasted_handler_s": round(
            METRICS.counter_total("rpc.server.wasted_handler_seconds") - wasted_before, 6
        ),
        "missed_deadline_executions": METRICS.counter_total(
            "rpc.server.missed_deadline_executions"
        )
        - missed_before,
        "shed_counter_delta": METRICS.counter_total("rpc.server.shed") - shed_before,
    }


def run_sweep(smoke: bool = False) -> Dict[str, Any]:
    bursts = [12] if smoke else [12, 48]
    rows = []
    for burst in bursts:
        rows.append(run_burst(shed=False, burst=burst))
        rows.append(run_burst(shed=True, burst=burst))
    return {
        "benchmark": "bench_overload_shedding",
        "smoke": smoke,
        "rows": rows,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI configuration")
    parser.add_argument("--out", default="BENCH_overload_shedding.json")
    args = parser.parse_args()
    report = run_sweep(smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    for row in report["rows"]:
        print(
            f"burst={row['burst']} shed={row['shed']}: "
            f"useful={row['useful_successes']}/{row['burst']} "
            f"shed={row['shed_replies']} late-exec={row['missed_deadline_executions']} "
            f"wasted={row['wasted_handler_s']}s "
            f"p95={row['p95_admitted_latency_s']}s "
            f"peak-queue={row['peak_queue_depth']:.0f}"
        )
    # The claims this bench tracks; loud failure keeps CI honest.
    by_burst: Dict[int, Dict[bool, Dict[str, Any]]] = {}
    for row in report["rows"]:
        by_burst.setdefault(row["burst"], {})[row["shed"]] = row
    for burst, pair in by_burst.items():
        on, off = pair[True], pair[False]
        assert on["shed_replies"] > 0, on  # the overload actually shed
        assert off["shed_replies"] == 0, off  # the baseline never sheds
        # Claim 1: shedding stops burning handler time on doomed work.
        assert on["wasted_handler_s"] < off["wasted_handler_s"], (on, off)
        # Claim 2: admitted calls clear the pruned queue faster.
        assert on["p95_admitted_latency_s"] < off["p95_admitted_latency_s"], (on, off)
        # Wire outcomes reconcile with the exported counters.
        assert on["shed_counter_delta"] == on["shed_replies"], on
    print(f"wrote {args.out}")


# -- pytest-benchmark hooks (explicit runs only; not part of tier-1) ---------


def test_overload_with_shedding(benchmark):
    row = benchmark.pedantic(lambda: run_burst(shed=True, burst=12), rounds=3, iterations=1)
    assert row["shed_replies"] > 0


def test_overload_without_shedding(benchmark):
    row = benchmark.pedantic(lambda: run_burst(shed=False, burst=12), rounds=3, iterations=1)
    assert row["shed_replies"] == 0


if __name__ == "__main__":
    main()
