"""Extension benchmark — activities (TP-monitor / activity manager).

Not a paper figure: Fig. 6 names the boxes and defers them.  Measures the
cost of atomic multi-service interactions relative to plain invocations,
and how commit latency grows with the participant count.
"""

import pytest

from benchmarks.conftest import Stack
from repro.activity import ActivityManager, ActivityOutcome
from repro.core import GenericClient
from repro.services.hotel import start_hotel

STAY = {"room": "DOUBLE", "arrival": "1994-09-01", "nights": 2}


def build(participants: int):
    stack = Stack()
    hotels = [start_hotel(stack.server(f"hotel-{i}")) for i in range(participants)]
    for hotel in hotels:
        hotel.implementation.rooms = {"DOUBLE": 10**9}
    manager = ActivityManager(stack.client("coordinator"), timeout=5.0)
    return stack, hotels, manager


def test_plain_invocation_baseline(benchmark):
    """The non-transactional baseline: one direct booking."""
    stack, hotels, __ = build(1)
    generic = GenericClient(stack.client())
    binding = generic.bind(hotels[0].ref)

    result = benchmark(lambda: binding.invoke("BookRoom", {"stay": STAY}))
    assert result.value["confirmation"] > 0


@pytest.mark.parametrize("participants", [1, 2, 4])
def test_activity_commit_by_participants(benchmark, participants):
    """2PC over n participants: prepare+commit rounds grow linearly."""
    __, hotels, manager = build(participants)

    def trip():
        activity = manager.begin("bench")
        for hotel in hotels:
            activity.add_step(hotel.ref, "BookRoom", {"stay": STAY})
        return activity.execute()

    assert benchmark(trip) is ActivityOutcome.COMMITTED


def test_activity_abort_cost(benchmark):
    """Aborts are cheaper than commits: no second successful round."""
    __, hotels, manager = build(2)
    hotels[1].implementation.rooms = {"DOUBLE": 0}
    hotels[1].implementation.reserve = lambda op, args: False

    def doomed():
        activity = manager.begin("doomed")
        activity.add_step(hotels[0].ref, "BookRoom", {"stay": STAY})
        activity.add_step(hotels[1].ref, "BookRoom", {"stay": STAY})
        return activity.execute()

    assert benchmark(doomed) is ActivityOutcome.ABORTED
